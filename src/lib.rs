//! # goalspotter
//!
//! A Rust reproduction of *"Automatic Detail Extraction from Sustainability
//! Objectives Using Weak Supervision"* (Mahdavi & Debus, EDBT 2026).
//!
//! The umbrella crate re-exports every subsystem:
//!
//! - [`core`]: Algorithm 1 (weak supervision token labeling) and decoding.
//! - [`text`]: normalization, tokenizers (BPE/WordPiece), IOB labels.
//! - [`tensor`]: the autograd engine the transformers train on.
//! - [`models`]: transformer encoders, CRF/HMM baselines, prompting
//!   simulators, detection.
//! - [`data`]: synthetic Sustainability Goals / NetZeroFacts / deployment
//!   corpora.
//! - [`eval`]: the paper's P/R/F1 protocol, timing, table rendering.
//! - [`ingest`]: full-report parsing — section trees with stable ids,
//!   pipe-table cell extraction, offset-preserving sentence units.
//! - [`store`]: the structured objective database.
//! - [`pipeline`]: the end-to-end GoalSpotter system.
//! - [`serve`]: the std-only HTTP extraction service with micro-batching.
//! - [`obs`]: structured tracing, metrics, and training telemetry.
//! - [`check`]: static graph analysis — symbolic shape inference, autograd
//!   lints, and tape-growth monitoring, all before a forward pass runs.
//! - [`par`]: the std-only fork-join thread pool behind the parallel
//!   tensor kernels, data-parallel training, and batched serving
//!   (`GS_NUM_THREADS` selects the pool size).
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for
//! the experiment-by-experiment reproduction map.

#![warn(missing_docs)]

pub use gs_check as check;
pub use gs_core as core;
pub use gs_data as data;
pub use gs_eval as eval;
pub use gs_ingest as ingest;
pub use gs_models as models;
pub use gs_obs as obs;
pub use gs_par as par;
pub use gs_pipeline as pipeline;
pub use gs_serve as serve;
pub use gs_store as store;
pub use gs_tensor as tensor;
pub use gs_text as text;
