//! Property-based tests for the text substrate: tokenizers must be
//! lossless where promised, offsets must always be valid, and the
//! normalizer must be idempotent.

use goalspotter::text::{pretokenize, Normalizer, NormalizerConfig, Tokenizer};
use proptest::prelude::*;

fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9 .,%()-]{0,80}").expect("regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pre-token offsets always slice back to the token text, tokens are
    /// in order, and no token is empty.
    #[test]
    fn pretokenize_offsets_are_valid(text in text_strategy()) {
        let tokens = pretokenize(&text);
        let mut last_end = 0usize;
        for t in &tokens {
            prop_assert!(!t.text.is_empty());
            prop_assert!(t.span.start >= last_end);
            prop_assert_eq!(t.span.slice(&text), t.text.as_str());
            last_end = t.span.end;
        }
    }

    /// Normalization is idempotent.
    #[test]
    fn normalizer_is_idempotent(text in "\\PC{0,60}") {
        let n = Normalizer::default();
        let once = n.normalize(&text);
        prop_assert_eq!(n.normalize(&once), once.clone());
        let lower = Normalizer::new(NormalizerConfig { lowercase: true, ..Default::default() });
        let lonce = lower.normalize(&text);
        prop_assert_eq!(lower.normalize(&lonce), lonce);
    }

    /// BPE subword pieces always concatenate back to the source words
    /// (modulo the end-of-word marker), even for unseen words.
    #[test]
    fn bpe_is_lossless(corpus_extra in text_strategy(), probe in "[a-zA-Z]{1,12}") {
        let corpus = vec![
            "Reduce energy consumption by 20% by 2025.",
            "Reach net-zero carbon emissions by 2040.",
            corpus_extra.as_str(),
        ];
        let tok = Tokenizer::train_bpe(&corpus, Normalizer::default(), 80);
        let enc = tok.encode(&probe);
        let rebuilt: String = enc
            .pieces
            .iter()
            .map(|p| p.trim_end_matches("</w>"))
            .collect();
        let normalized = tok.normalizer().normalize(&probe);
        let expected: String = pretokenize(&normalized).iter().map(|t| t.text.clone()).collect();
        prop_assert_eq!(rebuilt, expected);
    }

    /// Every encoding keeps ids/pieces/word-index parallel and word indices
    /// non-decreasing and in range.
    #[test]
    fn encodings_are_internally_consistent(text in text_strategy()) {
        let corpus = vec!["Reduce energy consumption by 20% by 2025."];
        let tok = Tokenizer::train_bpe(&corpus, Normalizer::default(), 50);
        let enc = tok.encode(&text);
        prop_assert_eq!(enc.ids.len(), enc.pieces.len());
        prop_assert_eq!(enc.ids.len(), enc.word_index.len());
        let mut prev = 0usize;
        for &w in &enc.word_index {
            prop_assert!(w < enc.pretokens.len());
            prop_assert!(w >= prev);
            prop_assert!(w <= prev + 1, "word indices may only step by one");
            prev = w;
        }
        if !enc.pretokens.is_empty() && !enc.word_index.is_empty() {
            prop_assert_eq!(*enc.word_index.last().expect("nonempty"), enc.pretokens.len() - 1);
        }
    }
}
