//! Golden regression test: a frozen fixed-seed checkpoint plus its
//! training corpus pin the exact spans the extractor produces, so any
//! unintended change to the tokenizer, encoder forward, decoding, or the
//! parallel kernels shows up as a span-level diff.
//!
//! The fixture is entirely plain text (see `crates/bench/src/bin/goldengen.rs`
//! for regeneration): the tokenizer is rebuilt deterministically from
//! `corpus.txt` and the weights load from hex `f32` bits in `params.txt`,
//! so this test touches no RNG and no serde — its behavior is fully
//! determined by the committed files. Every assertion runs under a
//! 1-thread and a 4-thread gs-par pool: the golden spans must be
//! identical at every pool size.

use goalspotter::core::MultiSpanPolicy;
use goalspotter::models::transformer::{ModelFamily, TransformerConfig, TransformerExtractor};
use goalspotter::models::{DetailExtractor, LinearDetector};
use goalspotter::pipeline::{ingest_report_text, ingest_snapshot, GoalSpotter};
use goalspotter::store::ObjectiveStore;
use goalspotter::text::labels::LabelSet;
use goalspotter::text::{Normalizer, Tokenizer};
use std::path::{Path, PathBuf};

/// Mirrors `golden_config()` in goldengen — the architecture the frozen
/// weights in `params.txt` were trained with.
fn golden_config() -> TransformerConfig {
    TransformerConfig {
        name: "golden-roberta".into(),
        family: ModelFamily::Roberta,
        d_model: 32,
        n_heads: 2,
        n_layers: 1,
        d_ff: 64,
        max_len: 48,
        dropout: 0.05,
        subword_budget: 300,
    }
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

/// Parses `expected.txt`: `>>> text` lines introduce a case, each followed
/// by its `field<TAB>value` lines.
fn parse_expected(raw: &str) -> Vec<(String, Vec<(String, String)>)> {
    let mut cases: Vec<(String, Vec<(String, String)>)> = Vec::new();
    for line in raw.lines() {
        if let Some(text) = line.strip_prefix(">>> ") {
            cases.push((text.to_string(), Vec::new()));
        } else if !line.trim().is_empty() {
            let (kind, value) = line.split_once('\t').expect("field lines are kind<TAB>value");
            let case = cases.last_mut().expect("field line before any >>> line");
            case.1.push((kind.to_string(), value.to_string()));
        }
    }
    cases
}

fn load_golden_extractor() -> TransformerExtractor {
    let dir = fixture_dir();
    let corpus = std::fs::read_to_string(dir.join("corpus.txt")).expect("read corpus.txt");
    let texts: Vec<&str> = corpus.lines().collect();
    assert!(!texts.is_empty(), "empty golden corpus");
    let config = golden_config();
    // Must match `build_tokenizer` for the Roberta family exactly.
    let tokenizer = Tokenizer::train_bpe(&texts, Normalizer::default(), config.subword_budget);
    let params = goalspotter::tensor::serialize::load_params_text_file(&dir.join("params.txt"))
        .expect("read params.txt");
    let labels = LabelSet::sustainability_goals();
    let num_classes = labels.num_classes();
    TransformerExtractor::from_parts(
        labels,
        tokenizer,
        config,
        num_classes,
        params,
        MultiSpanPolicy::First,
    )
}

fn extracted_fields(ex: &TransformerExtractor, text: &str) -> Vec<(String, String)> {
    ex.extract(text).fields.into_iter().filter(|(_, v)| !v.is_empty()).collect()
}

#[test]
fn frozen_checkpoint_extracts_the_golden_spans() {
    let ex = load_golden_extractor();
    let raw = std::fs::read_to_string(fixture_dir().join("expected.txt")).expect("read expected");
    let cases = parse_expected(&raw);
    assert!(!cases.is_empty(), "empty expected.txt");

    for threads in [1usize, 4] {
        gs_par::with_threads(threads, || {
            for (text, want) in &cases {
                let got = extracted_fields(&ex, text);
                assert_eq!(&got, want, "spans drifted for {text:?} at {threads} threads");
            }
        });
    }
}

/// The frozen full system: detector from `detector.txt` (never retrained
/// — training shuffles with an RNG; loading is RNG-free), extractor from
/// the shared extraction fixture.
fn load_golden_spotter() -> GoalSpotter {
    let text = std::fs::read_to_string(fixture_dir().join("detector.txt")).expect("detector.txt");
    let detector = LinearDetector::load_text(&text).expect("parse frozen detector");
    GoalSpotter::from_parts(detector, load_golden_extractor(), 0.5)
}

/// Full-report golden ingest: `report.txt` flows through
/// parse → detect → extract → store, and the run's snapshot (section
/// tree, stats, every objective with score bits and provenance) must be
/// byte-identical to `ingest_expected.txt` — at 1 and at 4 pool threads,
/// and the store contents must also be bit-identical across pool sizes
/// and idempotent under re-ingestion.
#[test]
fn frozen_ingest_pipeline_reproduces_the_golden_snapshot() {
    let gs = load_golden_spotter();
    let report = std::fs::read_to_string(fixture_dir().join("report.txt")).expect("report.txt");
    let want =
        std::fs::read_to_string(fixture_dir().join("ingest_expected.txt")).expect("expected");

    let mut exports = Vec::new();
    for threads in [1usize, 4] {
        gs_par::with_threads(threads, || {
            let store = ObjectiveStore::new();
            let (stats, objectives) =
                ingest_report_text(&gs, "Golden Corp", "golden-report", &report, &store);
            let doc = goalspotter::ingest::parse(&report);
            let got = ingest_snapshot(&doc, &stats, &objectives);
            assert_eq!(got, want, "golden ingest snapshot drifted at {threads} threads");
            assert!(stats.detected > 0, "frozen system must detect something");

            let before = store.export_json();
            let (again, _) =
                ingest_report_text(&gs, "Golden Corp", "golden-report", &report, &store);
            assert_eq!(again.inserted, 0, "re-ingest must not insert");
            assert_eq!(again.unchanged, again.detected);
            assert_eq!(store.export_json(), before, "re-ingest must leave the store untouched");
            exports.push(before);
        });
    }
    assert_eq!(exports[0], exports[1], "store contents must not depend on pool size");
    assert!(exports[0].contains("section_path"), "stored records carry provenance");
}

#[test]
fn golden_batch_path_matches_the_per_text_path() {
    let ex = load_golden_extractor();
    let raw = std::fs::read_to_string(fixture_dir().join("expected.txt")).expect("read expected");
    let cases = parse_expected(&raw);
    let texts: Vec<&str> = cases.iter().map(|(t, _)| t.as_str()).collect();

    let batched = gs_par::with_threads(4, || ex.extract_batch(&texts));
    assert_eq!(batched.len(), cases.len());
    for (details, (text, want)) in batched.into_iter().zip(&cases) {
        let got: Vec<(String, String)> =
            details.fields.into_iter().filter(|(_, v)| !v.is_empty()).collect();
        assert_eq!(&got, want, "batched spans drifted for {text:?}");
    }
}
