//! Golden regression test: a frozen fixed-seed checkpoint plus its
//! training corpus pin the exact spans the extractor produces, so any
//! unintended change to the tokenizer, encoder forward, decoding, or the
//! parallel kernels shows up as a span-level diff.
//!
//! The fixture is entirely plain text (see `crates/bench/src/bin/goldengen.rs`
//! for regeneration): the tokenizer is rebuilt deterministically from
//! `corpus.txt` and the weights load from hex `f32` bits in `params.txt`,
//! so this test touches no RNG and no serde — its behavior is fully
//! determined by the committed files. Every assertion runs under a
//! 1-thread and a 4-thread gs-par pool: the golden spans must be
//! identical at every pool size.

use goalspotter::core::MultiSpanPolicy;
use goalspotter::models::transformer::{ModelFamily, TransformerConfig, TransformerExtractor};
use goalspotter::models::DetailExtractor;
use goalspotter::text::labels::LabelSet;
use goalspotter::text::{Normalizer, Tokenizer};
use std::path::{Path, PathBuf};

/// Mirrors `golden_config()` in goldengen — the architecture the frozen
/// weights in `params.txt` were trained with.
fn golden_config() -> TransformerConfig {
    TransformerConfig {
        name: "golden-roberta".into(),
        family: ModelFamily::Roberta,
        d_model: 32,
        n_heads: 2,
        n_layers: 1,
        d_ff: 64,
        max_len: 48,
        dropout: 0.05,
        subword_budget: 300,
    }
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

/// Parses `expected.txt`: `>>> text` lines introduce a case, each followed
/// by its `field<TAB>value` lines.
fn parse_expected(raw: &str) -> Vec<(String, Vec<(String, String)>)> {
    let mut cases: Vec<(String, Vec<(String, String)>)> = Vec::new();
    for line in raw.lines() {
        if let Some(text) = line.strip_prefix(">>> ") {
            cases.push((text.to_string(), Vec::new()));
        } else if !line.trim().is_empty() {
            let (kind, value) = line.split_once('\t').expect("field lines are kind<TAB>value");
            let case = cases.last_mut().expect("field line before any >>> line");
            case.1.push((kind.to_string(), value.to_string()));
        }
    }
    cases
}

fn load_golden_extractor() -> TransformerExtractor {
    let dir = fixture_dir();
    let corpus = std::fs::read_to_string(dir.join("corpus.txt")).expect("read corpus.txt");
    let texts: Vec<&str> = corpus.lines().collect();
    assert!(!texts.is_empty(), "empty golden corpus");
    let config = golden_config();
    // Must match `build_tokenizer` for the Roberta family exactly.
    let tokenizer = Tokenizer::train_bpe(&texts, Normalizer::default(), config.subword_budget);
    let params = goalspotter::tensor::serialize::load_params_text_file(&dir.join("params.txt"))
        .expect("read params.txt");
    let labels = LabelSet::sustainability_goals();
    let num_classes = labels.num_classes();
    TransformerExtractor::from_parts(
        labels,
        tokenizer,
        config,
        num_classes,
        params,
        MultiSpanPolicy::First,
    )
}

fn extracted_fields(ex: &TransformerExtractor, text: &str) -> Vec<(String, String)> {
    ex.extract(text).fields.into_iter().filter(|(_, v)| !v.is_empty()).collect()
}

#[test]
fn frozen_checkpoint_extracts_the_golden_spans() {
    let ex = load_golden_extractor();
    let raw = std::fs::read_to_string(fixture_dir().join("expected.txt")).expect("read expected");
    let cases = parse_expected(&raw);
    assert!(!cases.is_empty(), "empty expected.txt");

    for threads in [1usize, 4] {
        gs_par::with_threads(threads, || {
            for (text, want) in &cases {
                let got = extracted_fields(&ex, text);
                assert_eq!(&got, want, "spans drifted for {text:?} at {threads} threads");
            }
        });
    }
}

#[test]
fn golden_batch_path_matches_the_per_text_path() {
    let ex = load_golden_extractor();
    let raw = std::fs::read_to_string(fixture_dir().join("expected.txt")).expect("read expected");
    let cases = parse_expected(&raw);
    let texts: Vec<&str> = cases.iter().map(|(t, _)| t.as_str()).collect();

    let batched = gs_par::with_threads(4, || ex.extract_batch(&texts));
    assert_eq!(batched.len(), cases.len());
    for (details, (text, want)) in batched.into_iter().zip(&cases) {
        let got: Vec<(String, String)> =
            details.fields.into_iter().filter(|(_, v)| !v.is_empty()).collect();
        assert_eq!(&got, want, "batched spans drifted for {text:?}");
    }
}
