//! Crash-safety and concurrency integration for the log-structured store:
//! a writer process killed mid-stream (plus a deliberately torn frame) must
//! recover to a clean prefix that converges bit-identically once the stream
//! is replayed; lock-free readers must see consistent views under write
//! load; and the golden extraction fixture must round-trip through the
//! persistent store with identical spans.

use goalspotter::core::{ExtractedDetails, MultiSpanPolicy};
use goalspotter::models::transformer::{ModelFamily, TransformerConfig, TransformerExtractor};
use goalspotter::models::DetailExtractor;
use goalspotter::store::{
    ObjectiveDb, ObjectiveRecord, ObjectiveSink, ObjectiveStore, StoreConfig,
};
use goalspotter::text::labels::LabelSet;
use goalspotter::text::{Normalizer, Tokenizer};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Env var that flips the `crash_writer_child` test into its writer role.
const CRASH_ENV: &str = "GS_STORE_CRASH_DIR";
const STREAM_LEN: usize = 400;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gs-store-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic record stream both the child writer and the reference
/// store ingest. Exercises escaping (tabs/newlines), missing fields, and
/// varied scores; keys are distinct so the full stream is `STREAM_LEN`
/// records.
fn stream_record(i: usize) -> ObjectiveRecord {
    let company = format!("Company-{:02}", i % 7);
    let mut details = ExtractedDetails::new();
    details.set("Action", "Reduce");
    details.set("Amount", format!("{}%", 5 + i % 60));
    if !i.is_multiple_of(3) {
        details.set("Qualifier", "emissions\tscope 1");
    }
    if i.is_multiple_of(4) {
        details.set("Baseline", "vs.\n2019 levels");
    }
    if i.is_multiple_of(2) {
        details.set("Deadline", (2026 + i % 12).to_string());
    }
    ObjectiveRecord::from_details(
        &company,
        &format!("report-{}", i % 5),
        &format!("Objective #{i}: reduce emissions by {}% company-wide.", 5 + i % 60),
        &details,
        (i % 100) as f64 / 99.0,
    )
}

fn store_config() -> StoreConfig {
    StoreConfig { shards: 4, fold_threshold: 16, ..StoreConfig::default() }
}

/// Not a test of its own: when `GS_STORE_CRASH_DIR` is set, this process is
/// a writer child that upserts the stream until its parent kills it. With
/// the env unset (every normal test run) it does nothing.
#[test]
fn crash_writer_child() {
    let Ok(dir) = std::env::var(CRASH_ENV) else { return };
    let (db, _) = ObjectiveDb::open(Path::new(&dir), store_config()).expect("child open");
    for i in 0..STREAM_LEN {
        db.upsert(&stream_record(i)).expect("child upsert");
    }
    // Finished before the kill arrived: park so the parent's SIGKILL still
    // terminates a live process (recovery of a complete log is also valid).
    loop {
        std::thread::sleep(Duration::from_secs(1));
    }
}

#[test]
fn killed_writer_recovers_to_a_clean_prefix_and_converges_bit_identically() {
    let dir = tmp_dir("crash");
    let exe = std::env::current_exe().expect("current_exe");

    // Run the writer in a separate process and SIGKILL it mid-stream.
    let mut child = std::process::Command::new(&exe)
        .args(["--exact", "crash_writer_child", "--nocapture", "--test-threads", "1"])
        .env(CRASH_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn writer child");
    std::thread::sleep(Duration::from_millis(400));
    child.kill().expect("kill writer");
    let _ = child.wait();

    // Whatever the kill left behind, make one tail unambiguously torn: a
    // length-prefixed frame whose payload never arrived.
    let torn_log = dir.join("shard-0.log");
    let mut contents = std::fs::read(&torn_log)
        .unwrap_or_else(|_| format!("{}\n", goalspotter::store::WAL_MAGIC).into_bytes());
    contents.extend_from_slice(b"r 9999 00000000\npartial");
    std::fs::create_dir_all(&dir).expect("dir");
    std::fs::write(&torn_log, contents).expect("append torn frame");

    // Recovery never errors, drops the torn tail, and keeps only records
    // that are bitwise-equal to the reference stream.
    let (db, recovery) = ObjectiveDb::open(&dir, store_config()).expect("recover");
    assert!(recovery.torn_tails() >= 1, "planted torn frame not detected: {recovery:?}");
    assert!(db.len() <= STREAM_LEN);
    let reference: Vec<ObjectiveRecord> = (0..STREAM_LEN).map(stream_record).collect();
    for record in db.reader().records() {
        assert!(reference.contains(&record), "recovered record not in the stream: {record:?}");
    }

    // Replaying the full stream over the survivor converges to exactly the
    // state of an uninterrupted run — same records, same export bytes.
    for record in &reference {
        db.upsert(record).expect("complete stream");
    }
    assert_eq!(db.len(), STREAM_LEN);
    let fresh_dir = tmp_dir("crash-ref");
    let (fresh, _) = ObjectiveDb::open(&fresh_dir, store_config()).expect("reference open");
    for record in &reference {
        fresh.upsert(record).expect("reference upsert");
    }
    assert_eq!(db.reader().export_json(), fresh.reader().export_json());

    // Compaction and another reopen preserve the converged state bit for bit.
    db.compact_all().expect("compact");
    let snapshot = db.reader().export_json();
    drop(db);
    let (reopened, report) = ObjectiveDb::open(&dir, store_config()).expect("reopen");
    assert_eq!(report.torn_tails(), 0, "compacted logs must be clean: {report:?}");
    assert_eq!(reopened.reader().export_json(), snapshot);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh_dir);
}

#[test]
fn concurrent_readers_see_consistent_views_under_write_load() {
    let db = Arc::new(ObjectiveDb::ephemeral(store_config()));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Four readers spin over cloned readers while the writer ingests.
        for _ in 0..4 {
            let db = db.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                let mut reader = db.reader();
                let mut last_len = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let len = reader.len();
                    assert!(len >= last_len, "published view went backwards: {len} < {last_len}");
                    last_len = len;
                    for record in reader.by_company("Company-03") {
                        assert_eq!(record.company, "Company-03");
                        assert!(!record.objective.is_empty());
                    }
                    for record in reader.deadlines_between(2000, 2100) {
                        assert!(record.deadline.is_some());
                    }
                }
            });
        }
        for i in 0..STREAM_LEN {
            db.upsert(&stream_record(i)).expect("upsert under read load");
        }
        stop.store(true, Ordering::Relaxed);
    });

    let mut reader = db.reader();
    assert_eq!(reader.len(), STREAM_LEN);
    let by_company: usize = reader.counts_by_company().iter().map(|(_, n)| n).sum();
    assert_eq!(by_company, STREAM_LEN);
}

#[test]
fn db_and_in_memory_store_agree_on_the_same_stream() {
    // Both sinks ingest the same stream (with duplicates) through the
    // `ObjectiveSink` trait; per-company contents must be identical.
    let db = ObjectiveDb::ephemeral(store_config());
    let store = ObjectiveStore::new();
    for sink in [&db as &dyn ObjectiveSink, &store as &dyn ObjectiveSink] {
        for i in 0..120 {
            sink.upsert_record(&stream_record(i % 80)).expect("upsert");
        }
    }
    assert_eq!(db.len(), store.len());
    let mut reader = db.reader();
    for company in (0..7).map(|c| format!("Company-{c:02}")) {
        let from_db = reader.by_company(&company);
        let from_store = store.by_company(&company);
        assert_eq!(from_db.len(), from_store.len(), "for {company}");
        for (a, b) in from_db.into_iter().zip(from_store) {
            // The table-backed store quantizes scores to milli precision;
            // the log-structured store keeps exact bits. Everything else
            // must be byte-identical.
            let quantized = ObjectiveRecord { score: (a.score * 1000.0).round() / 1000.0, ..a };
            assert_eq!(quantized, b, "for {company}");
        }
    }
}

/// Mirrors `golden_config()` in `tests/golden_extraction.rs` — the frozen
/// checkpoint architecture.
fn golden_config() -> TransformerConfig {
    TransformerConfig {
        name: "golden-roberta".into(),
        family: ModelFamily::Roberta,
        d_model: 32,
        n_heads: 2,
        n_layers: 1,
        d_ff: 64,
        max_len: 48,
        dropout: 0.05,
        subword_budget: 300,
    }
}

#[test]
fn golden_extractions_round_trip_through_the_persistent_store() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden");
    let corpus = std::fs::read_to_string(dir.join("corpus.txt")).expect("read corpus.txt");
    let texts: Vec<&str> = corpus.lines().collect();
    let config = golden_config();
    let tokenizer = Tokenizer::train_bpe(&texts, Normalizer::default(), config.subword_budget);
    let params = goalspotter::tensor::serialize::load_params_text_file(&dir.join("params.txt"))
        .expect("read params.txt");
    let labels = LabelSet::sustainability_goals();
    let num_classes = labels.num_classes();
    let ex = TransformerExtractor::from_parts(
        labels,
        tokenizer,
        config,
        num_classes,
        params,
        MultiSpanPolicy::First,
    );

    // Extract every golden case, persist it, reopen, and compare the
    // stored spans against the live extraction — byte-identical fields.
    let raw = std::fs::read_to_string(dir.join("expected.txt")).expect("read expected.txt");
    let cases: Vec<&str> = raw.lines().filter_map(|line| line.strip_prefix(">>> ")).collect();
    assert!(!cases.is_empty(), "empty expected.txt");

    let store_dir = tmp_dir("golden");
    let (db, _) = ObjectiveDb::open(&store_dir, store_config()).expect("open");
    for text in &cases {
        let details = ex.extract(text);
        let record =
            ObjectiveRecord::from_details("GoldenCo", "golden-fixture", text, &details, 1.0);
        db.upsert(&record).expect("persist golden extraction");
    }
    db.sync_all().expect("sync");
    drop(db);

    let (reopened, report) = ObjectiveDb::open(&store_dir, store_config()).expect("reopen");
    assert_eq!(report.torn_tails(), 0);
    let stored = reopened.reader().by_company("GoldenCo");
    assert_eq!(stored.len(), cases.len());
    for text in &cases {
        let record = stored
            .iter()
            .find(|r| r.objective == *text)
            .unwrap_or_else(|| panic!("golden case not persisted: {text:?}"));
        let live = ex.extract(text);
        let spans = [
            ("Action", &record.action),
            ("Amount", &record.amount),
            ("Qualifier", &record.qualifier),
            ("Baseline", &record.baseline),
            ("Deadline", &record.deadline),
        ];
        for (kind, got) in spans {
            let want = live.get(kind).filter(|v| !v.is_empty());
            assert_eq!(got.as_deref(), want, "span {kind} drifted through the store for {text:?}");
        }
    }
    let _ = std::fs::remove_dir_all(&store_dir);
}
