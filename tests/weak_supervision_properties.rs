//! Property-based tests for the weak supervision core: Algorithm 1's
//! invariants, IOB span algebra, and the word/subword label projection.

use goalspotter::core::{
    collapse_to_words, levenshtein, project_to_subwords, weak_label_tokens, MatchPolicy,
    OccurrencePolicy, WeakLabelConfig,
};
use goalspotter::text::labels::{decode_spans, encode_spans, repair_iob, LabelSet, Tag, TagSpan};
use goalspotter::text::pretokenize;
use proptest::prelude::*;

fn labels() -> LabelSet {
    LabelSet::sustainability_goals()
}

/// Arbitrary word-ish token text.
fn word_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9]{1,8}").expect("regex")
}

/// A sentence of 1..20 words.
fn sentence_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(word_strategy(), 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1 always emits exactly one tag per token, and every value
    /// window it locates carries a `B-` followed only by `I-` of the same
    /// kind.
    #[test]
    fn weak_label_output_is_well_formed(words in sentence_strategy(), start in 0usize..15, len in 1usize..4) {
        let text = words.join(" ");
        let tokens = pretokenize(&text);
        prop_assume!(!tokens.is_empty());
        let start = start % tokens.len();
        let end = (start + len).min(tokens.len());
        let value: String = tokens[start..end]
            .iter()
            .map(|t| t.text.clone())
            .collect::<Vec<_>>()
            .join(" ");

        let ls = labels();
        let result = weak_label_tokens(
            &tokens,
            &[(0, value)],
            &ls,
            WeakLabelConfig::default(),
        );
        prop_assert_eq!(result.tags.len(), tokens.len());

        // Well-formed IOB: I-k only ever follows B-k or I-k.
        for i in 0..result.tags.len() {
            if let Tag::I(k) = result.tags[i] {
                prop_assert!(i > 0);
                match result.tags[i - 1] {
                    Tag::B(p) | Tag::I(p) => prop_assert_eq!(p, k),
                    Tag::O => prop_assert!(false, "orphan I tag"),
                }
            }
        }
        // The value was constructed from the text, so exact matching must
        // find it.
        prop_assert!(result.unmatched.is_empty());
    }

    /// First-occurrence policy labels at most one span per annotation;
    /// All-occurrences labels at least as many tokens.
    #[test]
    fn occurrence_policies_are_ordered(word in word_strategy(), reps in 1usize..5) {
        let text = vec![word.clone(); reps].join(" and ");
        let tokens = pretokenize(&text);
        let ls = labels();
        let first = weak_label_tokens(
            &tokens,
            &[(1, word.clone())],
            &ls,
            WeakLabelConfig { occurrence: OccurrencePolicy::First, ..Default::default() },
        );
        let all = weak_label_tokens(
            &tokens,
            &[(1, word.clone())],
            &ls,
            WeakLabelConfig { occurrence: OccurrencePolicy::All, ..Default::default() },
        );
        let count = |tags: &[Tag]| tags.iter().filter(|&&t| t != Tag::O).count();
        prop_assert!(count(&first.tags) <= count(&all.tags));
        prop_assert!(count(&first.tags) >= 1);
    }

    /// Fuzzy matching with budget 0 agrees with... exact matching on
    /// case-identical inputs, and a larger budget never matches less.
    #[test]
    fn fuzzy_budget_is_monotone(words in sentence_strategy()) {
        let text = words.join(" ");
        let tokens = pretokenize(&text);
        prop_assume!(!tokens.is_empty());
        let value = tokens[0].text.clone();
        let ls = labels();
        let matched = |max_edits: usize| {
            weak_label_tokens(
                &tokens,
                &[(2, value.clone())],
                &ls,
                WeakLabelConfig {
                    match_policy: MatchPolicy::Fuzzy { max_edits },
                    ..Default::default()
                },
            )
            .unmatched
            .is_empty()
        };
        if matched(0) {
            prop_assert!(matched(2), "a larger budget lost a match");
        }
    }

    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(a in word_strategy(), b in word_strategy(), c in word_strategy()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// encode_spans -> decode_spans is the identity on non-overlapping,
    /// sorted span sets.
    #[test]
    fn span_roundtrip(len in 1usize..30, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut spans: Vec<TagSpan> = Vec::new();
        let mut pos = 0usize;
        while pos + 1 < len && spans.len() < 4 {
            let start = pos + rng.random_range(0..3);
            if start >= len { break; }
            let end = (start + 1 + rng.random_range(0..3)).min(len);
            spans.push(TagSpan { kind: rng.random_range(0..5), start, end });
            pos = end + 1; // gap so adjacent same-kind spans cannot merge
        }
        let tags = encode_spans(len, &spans);
        prop_assert_eq!(decode_spans(&tags), spans);
    }

    /// repair_iob produces sequences that decode without orphan-I repair.
    #[test]
    fn repair_makes_sequences_valid(raw in proptest::collection::vec(0usize..11, 1..40)) {
        let ls = labels();
        let mut tags: Vec<Tag> = raw.iter().map(|&c| ls.tag_of(c)).collect();
        repair_iob(&mut tags);
        for i in 0..tags.len() {
            if let Tag::I(k) = tags[i] {
                prop_assert!(i > 0);
                match tags[i - 1] {
                    Tag::B(p) | Tag::I(p) => prop_assert_eq!(p, k),
                    Tag::O => prop_assert!(false, "repair left an orphan I"),
                }
            }
        }
    }

    /// Word -> subword projection and collapse are inverse for any
    /// alignment in which each word has at least one subword.
    #[test]
    fn projection_roundtrip(word_classes in proptest::collection::vec(0usize..11, 1..25), fanout in proptest::collection::vec(1usize..4, 1..25)) {
        let ls = labels();
        let n = word_classes.len().min(fanout.len());
        let mut word_tags: Vec<Tag> = word_classes[..n].iter().map(|&c| ls.tag_of(c)).collect();
        repair_iob(&mut word_tags);
        let mut word_index = Vec::new();
        for (w, &f) in fanout[..n].iter().enumerate() {
            for _ in 0..f {
                word_index.push(w);
            }
        }
        let sub = project_to_subwords(&word_tags, &word_index);
        let back = collapse_to_words(&sub, &word_index, n);
        prop_assert_eq!(back, word_tags);
    }
}
