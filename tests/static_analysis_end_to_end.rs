//! End-to-end static analysis through the umbrella crate: every paper
//! configuration validates clean in milliseconds, store corruption is
//! caught with full provenance before any forward pass, the numeric
//! sanitizer pinpoints the first bad value at runtime, and the growth
//! monitor flags tapes retained across steps.

use goalspotter::check::{FindingKind, GrowthMonitor};
use goalspotter::models::transformer::{validate_classifier, TokenClassifier, TransformerConfig};
use goalspotter::tensor::{Binder, Tape, Tensor};
use goalspotter::text::labels::LabelSet;
use std::time::Instant;

const SEED: u64 = 7;

fn small(config: &TransformerConfig) -> TransformerConfig {
    // The paper geometry with a reduced budget so four models instantiate
    // quickly in a test.
    TransformerConfig { max_len: 24, ..config.clone() }
}

#[test]
fn every_paper_configuration_validates_clean_in_milliseconds() {
    let num_classes = LabelSet::sustainability_goals().num_classes();
    for config in TransformerConfig::figure4_variants() {
        let model = TokenClassifier::new(small(&config), 200, num_classes, SEED);
        let start = Instant::now();
        let analysis = validate_classifier(&model);
        let elapsed = start.elapsed();
        assert!(analysis.is_clean(), "{}: {:#?}", config.name, analysis.findings);
        assert!(analysis.params > 0 && analysis.nodes > analysis.params);
        assert!(
            elapsed.as_millis() < 1_000,
            "{} static check took {elapsed:?}; it must never approach forward-pass cost",
            config.name
        );
    }
}

#[test]
fn corrupted_store_is_caught_before_any_forward_pass() {
    let mut model =
        TokenClassifier::new(small(&TransformerConfig::figure4_variants()[0]), 200, 11, SEED);
    let id = model.store().id("l0.ffn.w1").expect("ffn weight");
    let shape = model.store().value(id).shape().to_vec();
    // Transpose the first FFN weight, the classic checkpoint-surgery slip.
    model.store_mut().replace(id, Tensor::zeros(&[shape[1], shape[0]]));
    let analysis = validate_classifier(&model);
    let f = analysis
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::ShapeViolation)
        .expect("transposed weight must be flagged");
    assert_eq!(f.op, "matmul");
    assert_eq!(f.scope, "l0.ffn");
}

#[test]
fn sanitizer_pinpoints_first_bad_value_with_provenance() {
    let mut model =
        TokenClassifier::new(small(&TransformerConfig::figure4_variants()[1]), 200, 11, SEED);
    let id = model.store().id("emb.tok").expect("emb.tok");
    let shape = model.store().value(id).shape().to_vec();
    let mut data = model.store().value(id).data().to_vec();
    data[3] = f32::NAN;
    model.store_mut().replace(id, Tensor::from_vec(shape, data));

    // `Tape::sanitized` forces scanning on without touching the global flag.
    let tape = Tape::sanitized();
    let mut binder = Binder::new(&tape);
    let ids: Vec<usize> = (0..8).collect();
    let _logits = model.forward(&tape, &mut binder, &ids, None);
    let issue = tape.first_numeric_issue().expect("NaN must be caught in the forward");
    assert_eq!(issue.label.as_deref(), Some("emb.tok"));
    assert_eq!(issue.scope, "emb");
}

#[test]
fn growth_monitor_flags_a_tape_retained_across_steps() {
    let mut monitor = GrowthMonitor::new(4);
    // Correct usage — a fresh tape per step — never alerts.
    for _ in 0..16 {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::vector(&[1.0, 2.0]));
        let _ = tape.sum_all(tape.scale(x, 0.5));
        assert!(monitor.observe(tape.len()).is_none());
    }
    // The leak: one tape reused across steps grows monotonically.
    let leaked = Tape::new();
    let mut report = None;
    for _ in 0..16 {
        let x = leaked.leaf(Tensor::vector(&[1.0, 2.0]));
        let _ = leaked.sum_all(leaked.scale(x, 0.5));
        if let Some(r) = monitor.observe(leaked.len()) {
            report = Some(r);
            break;
        }
    }
    let report = report.expect("retained tape must trip the monitor");
    assert!(report.to_string().contains("retained"), "{report}");
}
