//! gs-obs under the gs-par pool: spans, counters, histograms, and op
//! profiler records emitted concurrently from `for_each_index` workers
//! must land in one consistent snapshot — no lost updates, no torn
//! aggregates.
//!
//! The collector and the profiler store are process-global, so the tests
//! here serialize on one lock and install/uninstall their own collector.

use goalspotter::obs::{self, prof};
use goalspotter::par;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Serializes tests that own the process-global collector/profiler.
static GLOBAL_OBS_LOCK: Mutex<()> = Mutex::new(());

fn with_collector<R>(f: impl FnOnce() -> R) -> (R, goalspotter::obs::MetricsSnapshot) {
    let _guard = GLOBAL_OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = obs::uninstall();
    obs::install(obs::Collector::new());
    let out = f();
    let collector = obs::uninstall().expect("collector installed");
    let snapshot = collector.registry().snapshot();
    (out, snapshot)
}

#[test]
fn counters_from_pool_workers_never_lose_updates() {
    const N: usize = 4096;
    let ((), snapshot) = with_collector(|| {
        par::for_each_index(N, |i| {
            obs::counter("par_obs.hits", 1);
            obs::counter("par_obs.weighted", i as u64 % 7);
            obs::observe("par_obs.value", i as f64);
        });
    });
    assert_eq!(snapshot.counter("par_obs.hits"), N as u64);
    let expected: u64 = (0..N as u64).map(|i| i % 7).sum();
    assert_eq!(snapshot.counter("par_obs.weighted"), expected);
    let hist = snapshot.histogram("par_obs.value").expect("histogram recorded");
    assert_eq!(hist.total, N as u64);
    // The sum sees every observation exactly once.
    let expected_sum: f64 = (0..N).map(|i| i as f64).sum();
    assert!((hist.sum - expected_sum).abs() < 1e-6 * expected_sum.max(1.0));
}

#[test]
fn spans_closed_on_worker_threads_all_record() {
    const N: usize = 512;
    let ((), snapshot) = with_collector(|| {
        par::for_each_index(N, |i| {
            let mut span = obs::span("par_obs.unit");
            span.add("index", i as u64);
            drop(span);
        });
    });
    let hist = snapshot.histogram("span.par_obs.unit").expect("span durations recorded");
    assert_eq!(hist.total, N as u64, "every worker-side span must record exactly once");
}

#[test]
fn profiler_records_from_pool_workers_aggregate_consistently() {
    let _guard = GLOBAL_OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    prof::set_enabled(false);
    prof::reset();
    prof::set_enabled(true);
    const N: usize = 2048;
    let flops_seen = AtomicU64::new(0);
    par::for_each_index(N, |i| {
        // Two distinct (path, op) keys hit from every worker, plus an
        // explicit-path record — the same shapes the tape, the packed
        // forward, and the trainer use.
        let mut timer = prof::op_at(format!("blk{}", i % 4), "kernel_a");
        timer.set_cost(prof::Cost::new(10, 2));
        drop(timer);
        prof::record_at("shared", "kernel_b", 1_000, prof::Cost::new(3, 1));
        flops_seen.fetch_add(13, Ordering::Relaxed);
    });
    prof::set_enabled(false);
    let snapshot = prof::snapshot();
    prof::reset();

    let a_rows: Vec<_> = snapshot.rows.iter().filter(|r| r.op == "kernel_a").collect();
    assert_eq!(a_rows.len(), 4, "one row per distinct path");
    assert_eq!(a_rows.iter().map(|r| r.calls).sum::<u64>(), N as u64);
    assert_eq!(a_rows.iter().map(|r| r.flops).sum::<u64>(), 10 * N as u64);

    let b_row = snapshot
        .rows
        .iter()
        .find(|r| r.op == "kernel_b" && r.path == "shared")
        .expect("kernel_b row");
    assert_eq!(b_row.calls, N as u64);
    assert_eq!(b_row.flops, 3 * N as u64);
    // Explicit nanos: 2048 calls x 1us each.
    assert!((b_row.seconds - N as f64 * 1e-6).abs() < 1e-9);

    // The per-op aggregation sees exactly the same totals as the rows.
    let by_op = snapshot.by_op();
    let a_total = by_op.iter().find(|t| t.op == "kernel_a").expect("kernel_a total");
    assert_eq!(a_total.calls, N as u64);
    assert_eq!(a_total.flops, 10 * N as u64);
    assert_eq!(flops_seen.load(Ordering::Relaxed), 13 * N as u64);
}

#[test]
fn parallel_training_profile_is_complete_under_the_pool() {
    use goalspotter::models::transformer::{
        train_token_classifier, TokenClassifier, TrainConfig, TransformerConfig,
    };
    let _guard = GLOBAL_OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    prof::set_enabled(false);
    prof::reset();
    let config = TransformerConfig {
        name: "obs-par-tiny".into(),
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        max_len: 16,
        subword_budget: 40,
        ..TransformerConfig::roberta_sim()
    };
    let mut model = TokenClassifier::new(config, 40, 3, 7);
    let examples: Vec<_> = (0..8)
        .map(|s| {
            let ids: Vec<usize> = (0..8).map(|i| 2 + (s * 5 + i * 3) % 30).collect();
            let targets: Vec<i64> = ids.iter().map(|&id| (id % 2) as i64 + 1).collect();
            goalspotter::models::transformer::TrainExample { ids, targets }
        })
        .collect();
    prof::set_enabled(true);
    train_token_classifier(
        &mut model,
        &examples,
        &TrainConfig { epochs: 1, lr: 1e-3, batch_size: 4, ..Default::default() },
    );
    prof::set_enabled(false);
    let snapshot = prof::snapshot();
    prof::reset();

    // Forward kernels run on pool workers inside per-sequence tapes;
    // backward kernels and the optimizer run afterwards. All of them must
    // land in the same global profile.
    for op in ["matmul", "matmul.bwd", "cross_entropy", "adam_step", "accum_grad"] {
        assert!(
            snapshot.rows.iter().any(|r| r.op == op && r.calls > 0),
            "missing op {op} in parallel training profile; have {:?}",
            snapshot.rows.iter().map(|r| r.op).collect::<Vec<_>>()
        );
    }
}
