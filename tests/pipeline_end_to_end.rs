//! End-to-end integration: develop GoalSpotter on synthetic data, run the
//! production phase over generated reports, and verify the structured store
//! plus model persistence.

use goalspotter::core::Objective;
use goalspotter::data::documents::{generate_report, ReportConfig};
use goalspotter::models::transformer::{
    ExtractorOptions, TrainConfig, TransformerConfig, TransformerExtractor,
};
use goalspotter::models::DetailExtractor;
use goalspotter::pipeline::{evaluate_extractor, process_report, GoalSpotter, GoalSpotterConfig};
use goalspotter::store::ObjectiveStore;
use goalspotter::text::labels::LabelSet;
use rand::SeedableRng;

fn tiny_extractor_options() -> ExtractorOptions {
    ExtractorOptions {
        model: TransformerConfig {
            d_model: 32,
            n_heads: 2,
            n_layers: 1,
            d_ff: 64,
            subword_budget: 300,
            ..TransformerConfig::roberta_sim()
        },
        train: TrainConfig { epochs: 8, lr: 2e-3, batch_size: 8, ..Default::default() },
        ..Default::default()
    }
}

fn tiny_system() -> GoalSpotter {
    let dataset = goalspotter::data::sustaingoals::generate(120, 21);
    let refs: Vec<&Objective> = dataset.objectives.iter().collect();
    let noise: Vec<&str> = goalspotter::data::banks::NOISE_BLOCKS.to_vec();
    GoalSpotter::develop(
        &refs,
        &noise,
        &LabelSet::sustainability_goals(),
        GoalSpotterConfig { extractor: tiny_extractor_options(), ..Default::default() },
    )
}

#[test]
fn full_pipeline_fills_the_store_with_consistent_records() {
    let gs = tiny_system();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let report =
        generate_report("AcmeCorp", "Acme ESG 2025", 10, 9, &ReportConfig::default(), &mut rng);
    let store = ObjectiveStore::new();
    let stats = process_report(&gs, &report, &store);

    assert_eq!(stats.pages, 10);
    assert_eq!(store.len(), stats.inserted);
    assert_eq!(
        stats.inserted + stats.updated + stats.unchanged + stats.store_errors,
        stats.detected
    );
    // Detection on clean synthetic data is near-perfect.
    assert!(stats.false_positives + stats.false_negatives <= 2, "{stats:?}");

    // Every stored record belongs to this report's company and keeps the
    // full objective text.
    for record in store.by_company("AcmeCorp") {
        assert_eq!(record.company, "AcmeCorp");
        assert!(!record.objective.is_empty());
        assert!(record.score >= 0.5, "only detected blocks are stored");
    }

    // Monitoring query never returns records without a parsed deadline.
    for record in store.deadlines_between(2000, 2100) {
        assert!(record.deadline.is_some());
    }
}

#[test]
fn extractor_save_load_roundtrip_preserves_predictions() {
    let dataset = goalspotter::data::sustaingoals::generate(100, 31);
    let refs: Vec<&Objective> = dataset.objectives.iter().collect();
    let labels = LabelSet::sustainability_goals();
    let extractor = TransformerExtractor::train(&refs, &labels, tiny_extractor_options());

    let json = extractor.save_json();
    let loaded = TransformerExtractor::load_json(&json).expect("load");

    let probes = [
        "Reduce energy consumption by 24% by 2031.",
        "Moving beyond our previous target to reduce waste by 10% by 2030, Cut emissions by 40%.",
        "",
    ];
    for probe in probes {
        assert_eq!(
            extractor.extract(probe),
            loaded.extract(probe),
            "prediction mismatch after reload on {probe:?}"
        );
    }
}

#[test]
fn load_rejects_corrupt_json() {
    assert!(TransformerExtractor::load_json("{").is_err());
    assert!(TransformerExtractor::load_json("{}").is_err());
}

#[test]
fn evaluation_driver_scores_the_trained_extractor_sanely() {
    let dataset = goalspotter::data::sustaingoals::generate(150, 41);
    let (train, test) = dataset.split(0.2, 1);
    let extractor = TransformerExtractor::train(&train, &dataset.labels, tiny_extractor_options());
    let result = evaluate_extractor(&extractor, &test, &dataset.labels);
    // A tiny 1-layer model without pretraining still beats trivial levels.
    assert!(result.f1() > 0.3, "f1 {}", result.f1());
    assert!(result.precision() <= 1.0 && result.recall() <= 1.0);
    assert!(result.inference_total >= result.inference_real);
}

#[test]
fn checkpoint_callback_sees_improving_model() {
    let dataset = goalspotter::data::sustaingoals::generate(100, 51);
    let (train, test) = dataset.split(0.2, 1);
    let labels = dataset.labels.clone();
    let mut checkpoint_f1 = Vec::new();
    let _ = TransformerExtractor::train_with_checkpoints(
        &train,
        &labels,
        tiny_extractor_options(),
        &mut |epoch, view| {
            if epoch == 1 || epoch == 8 {
                let r = evaluate_extractor(view, &test, &labels);
                checkpoint_f1.push((epoch, r.f1()));
            }
        },
    );
    assert_eq!(checkpoint_f1.len(), 2);
    let (first, last) = (checkpoint_f1[0].1, checkpoint_f1[1].1);
    assert!(last >= first, "F1 regressed across epochs: {first} -> {last}");
}

#[test]
fn detection_scores_are_calibrated_probabilities() {
    let gs = tiny_system();
    for text in
        ["Reduce water use by 30% by 2030.", "The glossary defines key terms used in this report."]
    {
        let score = gs.detection_score(text);
        assert!((0.0..=1.0).contains(&score), "score {score} for {text:?}");
    }
    assert!(gs.detect("Cut scope 1 emissions by half by 2035."));
    assert!(!gs.detect("Forward-looking statements involve risks and uncertainties."));
}
