//! Cross-crate integration of the baselines with the evaluation protocol:
//! every approach runs on the same synthetic datasets through the same
//! driver, and the metric definitions behave per the paper.

use goalspotter::core::{Objective, WeakLabelConfig};
use goalspotter::eval::{run_stats, values_match, Counts};
use goalspotter::models::{
    canonical_examples, CrfConfig, CrfExtractor, DetailExtractor, FewShotExtractor, HmmConfig,
    HmmExtractor, ZeroShotExtractor,
};
use goalspotter::pipeline::evaluate_extractor;
use proptest::prelude::*;
use std::time::Duration;

#[test]
fn all_baselines_run_on_both_datasets() {
    for dataset in [
        goalspotter::data::sustaingoals::generate(120, 3),
        goalspotter::data::netzerofacts::generate(120, 3),
    ] {
        let (train, test) = dataset.split(0.2, 1);
        let labels = &dataset.labels;

        let crf =
            CrfExtractor::train(&train, labels, CrfConfig::default(), WeakLabelConfig::default());
        let hmm =
            HmmExtractor::train(&train, labels, HmmConfig::default(), WeakLabelConfig::default());
        let zero = ZeroShotExtractor::with_latency(labels, Duration::ZERO);
        let examples: Vec<&Objective> = train.iter().copied().take(3).collect();
        let few = FewShotExtractor::with_latency(labels, &examples, Duration::ZERO);

        // The HMM may legitimately collapse to all-O on tiny, hard data; it
        // only has to produce well-formed output.
        let hmm_result = evaluate_extractor(&hmm, &test, labels);
        assert!(hmm_result.precision() <= 1.0 && hmm_result.recall() <= 1.0);

        let extractors: Vec<&dyn DetailExtractor> = vec![&crf, &zero, &few];
        for ex in extractors {
            let result = evaluate_extractor(ex, &test, labels);
            assert!(
                result.f1() > 0.05,
                "{} scored implausibly low ({}) on {}",
                ex.name(),
                result.f1(),
                dataset.name
            );
            assert!(result.precision() <= 1.0 && result.recall() <= 1.0);
        }
    }
}

#[test]
fn crf_beats_hmm_on_the_extraction_task() {
    // The CRF's discriminative features should dominate the generative HMM
    // (why the paper's baseline is a CRF, not an HMM).
    let dataset = goalspotter::data::sustaingoals::generate(400, 13);
    let (train, test) = dataset.split(0.2, 2);
    let crf = CrfExtractor::train(
        &train,
        &dataset.labels,
        CrfConfig::default(),
        WeakLabelConfig::default(),
    );
    let hmm = HmmExtractor::train(
        &train,
        &dataset.labels,
        HmmConfig::default(),
        WeakLabelConfig::default(),
    );
    let crf_f1 = evaluate_extractor(&crf, &test, &dataset.labels).f1();
    let hmm_f1 = evaluate_extractor(&hmm, &test, &dataset.labels).f1();
    assert!(crf_f1 > hmm_f1, "CRF {crf_f1} vs HMM {hmm_f1}");
}

#[test]
fn few_shot_beats_zero_shot() {
    // Paper Table 4: in-context examples help on both datasets.
    let dataset = goalspotter::data::sustaingoals::generate(300, 17);
    let (train, test) = dataset.split(0.2, 3);
    let zero = ZeroShotExtractor::with_latency(&dataset.labels, Duration::ZERO);
    let examples: Vec<&Objective> = train.iter().copied().take(3).collect();
    let few = FewShotExtractor::with_latency(&dataset.labels, &examples, Duration::ZERO);
    let zero_f1 = evaluate_extractor(&zero, &test, &dataset.labels).f1();
    let few_f1 = evaluate_extractor(&few, &test, &dataset.labels).f1();
    assert!(few_f1 > zero_f1, "few-shot {few_f1} vs zero-shot {zero_f1}");
}

#[test]
fn prompting_simulators_charge_latency_through_the_driver() {
    let dataset = goalspotter::data::sustaingoals::generate(30, 23);
    let (_, test) = dataset.split(0.5, 1);
    let zero = ZeroShotExtractor::with_latency(&dataset.labels, Duration::from_millis(100));
    let result = evaluate_extractor(&zero, &test, &dataset.labels);
    let expected = Duration::from_millis(100) * test.len() as u32;
    assert!(result.inference_total >= expected);
    assert!(result.inference_real < expected, "real time must exclude simulated latency");
}

#[test]
fn canonical_examples_extract_perfectly_with_few_shot() {
    // The few-shot simulator must at least handle the paper's own Table 1
    // examples, which it saw in context.
    let examples = canonical_examples();
    let refs: Vec<&Objective> = examples.iter().collect();
    let labels = goalspotter::text::labels::LabelSet::sustainability_goals();
    let few = FewShotExtractor::with_latency(&labels, &refs, Duration::ZERO);
    let result = evaluate_extractor(&few, &refs, &labels);
    assert!(result.f1() >= 0.9, "f1 {} on in-context examples", result.f1());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// P/R/F1 are always within [0,1] and F1 is between min and max of P,R.
    #[test]
    fn prf_bounds(tp in 0usize..500, fp in 0usize..500, fn_ in 0usize..500) {
        let c = Counts { tp, fp, fn_ };
        let (p, r, f) = (c.precision(), c.recall(), c.f1());
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!((0.0..=1.0).contains(&f));
        if p > 0.0 && r > 0.0 {
            prop_assert!(f <= p.max(r) + 1e-12);
            prop_assert!(f >= p.min(r) - 1e-12);
        }
    }

    /// values_match is reflexive and symmetric.
    #[test]
    fn values_match_is_an_equivalence_on_inputs(a in "[a-zA-Z0-9 %-]{0,12}", b in "[a-zA-Z0-9 %-]{0,12}") {
        prop_assert!(values_match(&a, &a));
        prop_assert_eq!(values_match(&a, &b), values_match(&b, &a));
    }

    /// run_stats mean is within the observed range.
    #[test]
    fn run_stats_mean_in_range(values in proptest::collection::vec(0.0f64..1.0, 1..10)) {
        let s = run_stats(&values);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.mean >= lo - 1e-12 && s.mean <= hi + 1e-12);
        prop_assert!(s.stderr >= 0.0);
    }
}
