//! End-to-end observability check (the PR's acceptance test): install a
//! JSONL sink, run a small develop + extract + store-write pass, and verify
//! the emitted event stream covers every instrumented subsystem —
//! tokenization, weak labeling, a training step carrying loss/lr/grad-norm,
//! an extraction-latency span, and a store write.
//!
//! This lives in its own integration-test binary so the process-global
//! collector cannot race with other tests.

use goalspotter::core::Objective;
use goalspotter::models::transformer::{ExtractorOptions, TrainConfig, TransformerConfig};
use goalspotter::obs::{Collector, JsonlSink};
use goalspotter::pipeline::{GoalSpotter, GoalSpotterConfig};
use goalspotter::store::{ObjectiveRecord, ObjectiveStore};
use goalspotter::text::labels::LabelSet;

fn tiny_config() -> GoalSpotterConfig {
    GoalSpotterConfig {
        extractor: ExtractorOptions {
            model: TransformerConfig {
                d_model: 32,
                n_heads: 2,
                n_layers: 1,
                d_ff: 64,
                subword_budget: 250,
                ..TransformerConfig::roberta_sim()
            },
            train: TrainConfig { epochs: 3, lr: 2e-3, batch_size: 8, ..Default::default() },
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn jsonl_sink_captures_every_instrumented_subsystem() {
    let path = std::env::temp_dir().join(format!("gs_obs_e2e_{}.jsonl", std::process::id()));
    let sink = JsonlSink::create(&path).expect("create jsonl sink");
    let handle = goalspotter::obs::install(Collector::with_sink(Box::new(sink)));

    // Develop on a small corpus (tokenization, weak labeling, pretraining is
    // off by default here, fine-tuning), then run the production phase.
    let dataset = goalspotter::data::sustaingoals::generate(60, 7);
    let refs: Vec<&Objective> = dataset.objectives.iter().collect();
    let noise: Vec<&str> = goalspotter::data::banks::NOISE_BLOCKS.to_vec();
    let gs = GoalSpotter::develop(&refs, &noise, &LabelSet::sustainability_goals(), tiny_config());

    let text = "Reduce water use by 30% by 2030.";
    assert!(gs.detection_score(text).is_finite());
    let details = gs.extract(text);

    let store = ObjectiveStore::new();
    store.insert(&ObjectiveRecord::from_details("AcmeCorp", "ESG 2026", text, &details, 0.9));

    // Metrics side: the registry saw the same traffic the sink did.
    let snapshot = goalspotter::obs::snapshot().expect("collector installed");
    assert!(snapshot.counter("text.tokenize.calls") > 0);
    assert!(snapshot.counter("core.weak_label.objectives") >= 1);
    assert!(snapshot.counter("train.steps") > 0);
    assert_eq!(snapshot.counter("store.writes"), 1);
    let extract_latency = snapshot.histogram("span.pipeline.extract").expect("extract histogram");
    assert!(extract_latency.total >= 1);

    // Uninstall flushes the sink; from here on telemetry is disabled.
    let _ = goalspotter::obs::uninstall();
    drop(handle);

    let raw = std::fs::read_to_string(&path).expect("read jsonl");
    let _ = std::fs::remove_file(&path);
    assert!(!raw.is_empty(), "sink wrote no events");

    let mut kinds = std::collections::HashSet::new();
    let mut train_step_ok = false;
    let mut extract_span_ok = false;
    for line in raw.lines() {
        let event: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        let obj = event.as_object().expect("event is an object");
        assert!(obj.contains_key("at_us"), "missing timestamp in {line:?}");
        let kind = obj["kind"].as_str().expect("kind is a string").to_string();
        let name = obj["name"].as_str().expect("name is a string");
        if kind == "train_step" {
            for field in ["loss", "lr", "grad_norm"] {
                assert!(
                    obj.get(field).and_then(serde_json::Value::as_f64).is_some(),
                    "train_step missing numeric {field}: {line:?}"
                );
            }
            train_step_ok = true;
        }
        if kind == "span" && name.contains("pipeline.extract") {
            extract_span_ok = true;
        }
        kinds.insert(kind);
    }

    for kind in ["tokenize", "weak_label", "train_step", "train_epoch", "span", "store_write"] {
        assert!(kinds.contains(kind), "no {kind:?} events; saw kinds {kinds:?}");
    }
    assert!(train_step_ok, "no train_step event carried loss/lr/grad_norm");
    assert!(extract_span_ok, "no span event for pipeline.extract");
}

#[test]
fn telemetry_is_inert_without_a_collector() {
    // This test runs in the same binary as the one above; Rust runs tests
    // in parallel threads, so rather than assert global disabled state we
    // check the cheap contract directly: the free functions are safe no-ops
    // when no collector is installed (see gs-obs's own overhead test for
    // the timing bound).
    goalspotter::obs::counter("nobody.listening", 1);
    goalspotter::obs::observe("nobody.listening.hist", 1.0);
    let span = goalspotter::obs::span("nobody.listening.span");
    drop(span);
}
