//! End-to-end service integration: a trained extractor served over HTTP
//! with micro-batching must return exactly the same extractions as calling
//! the model directly, shed load under a tiny queue instead of queueing
//! without bound, and keep serving after the overload drains.

use goalspotter::core::Objective;
use goalspotter::models::transformer::{
    ExtractorOptions, TrainConfig, TransformerConfig, TransformerExtractor,
};
use goalspotter::models::DetailExtractor;
use goalspotter::pipeline::{DbStoreHook, ExtractorEngine};
use goalspotter::serve::{
    json, BatchConfig, Client, Json, ObjectiveStoreHook, Server, ServerConfig,
};
use goalspotter::store::{ObjectiveDb, StoreConfig};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One tiny trained extractor shared by every test in this file (training
/// dominates test runtime; serving itself is cheap).
fn engine() -> Arc<ExtractorEngine> {
    static ENGINE: OnceLock<Arc<ExtractorEngine>> = OnceLock::new();
    ENGINE
        .get_or_init(|| {
            let dataset = goalspotter::data::sustaingoals::generate(64, 42);
            let refs: Vec<&Objective> = dataset.objectives.iter().collect();
            let options = ExtractorOptions {
                model: TransformerConfig {
                    d_model: 32,
                    n_heads: 2,
                    n_layers: 1,
                    d_ff: 64,
                    max_len: 48,
                    subword_budget: 250,
                    ..TransformerConfig::roberta_sim()
                },
                train: TrainConfig { epochs: 8, lr: 3e-3, batch_size: 8, ..Default::default() },
                ..Default::default()
            };
            Arc::new(ExtractorEngine(TransformerExtractor::train(&refs, &dataset.labels, options)))
        })
        .clone()
}

fn sample_texts(n: usize) -> Vec<String> {
    let dataset = goalspotter::data::sustaingoals::generate(64, 42);
    dataset.texts().into_iter().take(n).map(str::to_string).collect()
}

/// What the service should answer for `text`: the direct model extraction,
/// minus empty fields (the service omits them).
fn expected_fields(extractor: &TransformerExtractor, text: &str) -> BTreeMap<String, String> {
    extractor.extract(text).fields.into_iter().filter(|(_, v)| !v.is_empty()).collect()
}

fn fields_of(value: &Json) -> BTreeMap<String, String> {
    let Some(Json::Obj(map)) = value.get("fields") else {
        panic!("no fields object in {value:?}");
    };
    map.iter().map(|(k, v)| (k.clone(), v.as_str().expect("string field").to_string())).collect()
}

fn single_body(text: &str) -> String {
    Json::obj(vec![("text", Json::from(text))]).to_string()
}

#[test]
fn concurrent_clients_receive_exact_model_outputs() {
    let engine = engine();
    let server = Server::start(
        engine.clone(),
        ServerConfig {
            batch: BatchConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(2),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    let texts = sample_texts(24);

    // Six concurrent clients hammer /v1/extract; micro-batched inference
    // must be bitwise-faithful to the direct single-text path.
    std::thread::scope(|scope| {
        for chunk in texts.chunks(4) {
            let engine = &engine;
            scope.spawn(move || {
                let mut client = Client::connect(addr, Duration::from_secs(10)).expect("connect");
                for text in chunk {
                    let resp =
                        client.post_json("/v1/extract", &single_body(text)).expect("request");
                    assert_eq!(resp.status, 200, "body: {}", resp.body);
                    let value = json::parse(&resp.body).expect("response json");
                    assert_eq!(fields_of(&value), expected_fields(&engine.0, text), "for {text:?}");
                    let batch_size = value.get("batch_size").and_then(Json::as_u64);
                    assert!(batch_size >= Some(1), "bad batch_size in {}", resp.body);
                }
            });
        }
    });

    // The batch endpoint returns per-text results in order, each equal to
    // the direct prediction.
    let mut client = Client::connect(addr, Duration::from_secs(10)).expect("connect");
    let array = Json::Arr(texts.iter().take(8).map(|t| Json::from(t.as_str())).collect());
    let body = Json::obj(vec![("texts", array)]).to_string();
    let resp = client.post_json("/v1/extract_batch", &body).expect("batch request");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let value = json::parse(&resp.body).expect("response json");
    let results = value.get("results").and_then(Json::as_arr).expect("results array");
    assert_eq!(results.len(), 8);
    for (result, text) in results.iter().zip(&texts) {
        assert_eq!(fields_of(result), expected_fields(&engine.0, text), "for {text:?}");
    }

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    server.shutdown();
}

#[test]
fn tiny_queue_sheds_excess_load_and_recovers() {
    let engine = engine();
    let server = Server::start(
        engine.clone(),
        ServerConfig {
            batch: BatchConfig {
                max_batch: 1,
                max_delay: Duration::ZERO,
                queue_capacity: 2,
                workers: 1,
            },
            ..Default::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    let texts = sample_texts(4);

    // Admission is all-or-none: a batch larger than the whole queue can
    // never be admitted and must be shed immediately with Retry-After.
    let mut client = Client::connect(addr, Duration::from_secs(10)).expect("connect");
    let array = Json::Arr(texts.iter().map(|t| Json::from(t.as_str())).collect());
    let body = Json::obj(vec![("texts", array)]).to_string();
    let resp = client.post_json("/v1/extract_batch", &body).expect("oversized batch");
    assert_eq!(resp.status, 503, "body: {}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"));

    // A concurrent flood gets a mix of successes and fast 503s — never
    // hangs, never errors at the transport level.
    let per_client = 10usize;
    let mut ok = 0usize;
    let mut shed = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|c| {
                let texts = &texts;
                scope.spawn(move || {
                    let mut client =
                        Client::connect(addr, Duration::from_secs(10)).expect("connect");
                    let (mut ok, mut shed) = (0usize, 0usize);
                    for i in 0..per_client {
                        let text = &texts[(c + i) % texts.len()];
                        let resp =
                            client.post_json("/v1/extract", &single_body(text)).expect("request");
                        match resp.status {
                            200 => ok += 1,
                            503 => shed += 1,
                            other => panic!("unexpected status {other}: {}", resp.body),
                        }
                    }
                    (ok, shed)
                })
            })
            .collect();
        for handle in handles {
            let (o, s) = handle.join().expect("client thread");
            ok += o;
            shed += s;
        }
    });
    assert_eq!(ok + shed, 6 * per_client);
    assert!(ok > 0, "flood starved every request");

    // Once the flood drains, the same server keeps serving correct answers.
    let resp = client.post_json("/v1/extract", &single_body(&texts[0])).expect("post-flood");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let value = json::parse(&resp.body).expect("response json");
    assert_eq!(fields_of(&value), expected_fields(&engine.0, &texts[0]));

    server.shutdown();
    let after =
        Client::connect(addr, Duration::from_millis(250)).and_then(|mut c| c.get("/healthz"));
    assert!(after.is_err(), "server accepted connections after shutdown");
}

#[test]
fn every_response_carries_a_resolvable_trace_id() {
    let engine = engine();
    // A collector so SLO gauges reach /metrics (telemetry is otherwise a
    // no-op); other tests in this binary don't inspect metrics, so the
    // shared global is safe here.
    let _collector = goalspotter::obs::install(goalspotter::obs::Collector::new());
    let server = Server::start(engine.clone(), ServerConfig::default()).expect("start server");
    let addr = server.addr();
    let texts = sample_texts(3);

    let mut client = Client::connect(addr, Duration::from_secs(10)).expect("connect");
    let mut ids = Vec::new();
    for text in &texts {
        let resp = client.post_json("/v1/extract", &single_body(text)).expect("request");
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let value = json::parse(&resp.body).expect("response json");
        let body_id = value
            .get("trace_id")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("no trace_id in {}", resp.body))
            .to_string();
        // Header and body agree.
        assert_eq!(resp.header("x-trace-id"), Some(body_id.as_str()), "header/body mismatch");
        assert_eq!(body_id.len(), 16);
        ids.push(body_id);
    }
    // Batch responses carry one too.
    let array = Json::Arr(texts.iter().map(|t| Json::from(t.as_str())).collect());
    let body = Json::obj(vec![("texts", array)]).to_string();
    let resp = client.post_json("/v1/extract_batch", &body).expect("batch request");
    assert_eq!(resp.status, 200);
    let batch_id = json::parse(&resp.body)
        .expect("json")
        .get("trace_id")
        .and_then(Json::as_str)
        .expect("batch trace_id")
        .to_string();
    ids.push(batch_id);

    // Every id resolves through the flight recorder, with the request's
    // timing attached.
    for id in &ids {
        let resp = client.get(&format!("/debug/traces?id={id}")).expect("trace lookup");
        assert_eq!(resp.status, 200, "trace {id} not resolvable: {}", resp.body);
        let value = json::parse(&resp.body).expect("traces json");
        let traces = value.get("traces").and_then(Json::as_arr).expect("traces array");
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        assert_eq!(trace.get("trace_id").and_then(Json::as_str), Some(id.as_str()));
        assert_eq!(trace.get("status").and_then(Json::as_u64), Some(200));
        assert!(trace.get("total_us").and_then(Json::as_u64) > Some(0), "no total in {trace:?}");
        assert!(trace.get("batch_size").and_then(Json::as_u64) >= Some(1));
    }
    // The full dump lists all of them; unknown ids 404.
    let resp = client.get("/debug/traces").expect("trace dump");
    let value = json::parse(&resp.body).expect("traces json");
    assert!(value.get("count").and_then(Json::as_u64) >= Some(ids.len() as u64));
    let missing = client.get("/debug/traces?id=ffffffffffffffff").expect("missing trace");
    assert_eq!(missing.status, 404);

    // /debug/prof serves the live op table; with the profiler enabled it
    // attributes the forward's kernels, and the collapsed form nests
    // path;op lines.
    let resp = client.get("/debug/prof").expect("prof");
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("profiler enabled: false"), "body: {}", resp.body);
    goalspotter::obs::prof::reset();
    goalspotter::obs::prof::set_enabled(true);
    let resp = client.post_json("/v1/extract", &single_body(&texts[0])).expect("profiled request");
    assert_eq!(resp.status, 200);
    goalspotter::obs::prof::set_enabled(false);
    let table = client.get("/debug/prof").expect("prof table");
    assert!(table.body.contains("matmul"), "no ops in profile: {}", table.body);
    let collapsed = client.get("/debug/prof?format=collapsed").expect("collapsed");
    assert!(collapsed.body.contains(";matmul"), "bad collapsed: {}", collapsed.body);
    goalspotter::obs::prof::reset();

    // The SLO gauges from this healthy traffic surface in /metrics.
    let metrics = client.get("/metrics").expect("metrics");
    assert!(metrics.body.contains("slo_burn_rate_errors_short"), "body: {}", metrics.body);
    server.shutdown();
    let _ = goalspotter::obs::uninstall();
}

#[test]
fn objectives_endpoint_persists_extractions_across_server_restarts() {
    let engine = engine();
    let dir = std::env::temp_dir().join(format!("gs-serve-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Without a store attached, the endpoint is absent.
    {
        let server = Server::start(engine.clone(), ServerConfig::default()).expect("start");
        let mut client = Client::connect(server.addr(), Duration::from_secs(10)).expect("connect");
        let resp = client.get("/v1/objectives?company=Acme").expect("request");
        assert_eq!(resp.status, 404, "body: {}", resp.body);
        server.shutdown();
    }

    let open_hook = |dir: &std::path::Path| -> Arc<dyn ObjectiveStoreHook> {
        let (db, _) = ObjectiveDb::open(dir, StoreConfig::default()).expect("open db");
        Arc::new(DbStoreHook::new(Arc::new(db)))
    };
    let text = "Cut waste by 27% by 2029.";
    let body = Json::obj(vec![
        ("text", Json::from(text)),
        ("company", Json::from("Acme Corp")),
        ("document", Json::from("esg-2029")),
    ])
    .to_string();

    let count_after_first_run;
    {
        let server = Server::start_with_store(
            engine.clone(),
            ServerConfig::default(),
            Some(open_hook(&dir)),
        )
        .expect("start with store");
        let mut client = Client::connect(server.addr(), Duration::from_secs(10)).expect("connect");

        // First extraction with a company is stored; the identical repeat
        // is recognised as unchanged (idempotent re-ingestion).
        let resp = client.post_json("/v1/extract", &body).expect("request");
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let value = json::parse(&resp.body).expect("json");
        assert_eq!(value.get("stored").and_then(Json::as_str), Some("inserted"), "{}", resp.body);
        let resp = client.post_json("/v1/extract", &body).expect("repeat");
        let value = json::parse(&resp.body).expect("json");
        assert_eq!(value.get("stored").and_then(Json::as_str), Some("unchanged"), "{}", resp.body);

        // A company-less request is served but not stored.
        let resp = client.post_json("/v1/extract", &single_body(text)).expect("no company");
        assert_eq!(resp.status, 200);
        assert!(json::parse(&resp.body).expect("json").get("stored").is_none());

        // Query back via the read path; the space survives percent-encoding.
        let resp = client.get("/v1/objectives?company=Acme%20Corp").expect("query");
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let value = json::parse(&resp.body).expect("json");
        assert_eq!(value.get("company").and_then(Json::as_str), Some("Acme Corp"));
        let records = value.get("records").and_then(Json::as_arr).expect("records");
        assert_eq!(value.get("count").and_then(Json::as_u64), Some(records.len() as u64));
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].get("objective").and_then(Json::as_str), Some(text));
        assert_eq!(records[0].get("document").and_then(Json::as_str), Some("esg-2029"));
        let trace_id = value.get("trace_id").and_then(Json::as_str).expect("trace_id").to_string();
        assert_eq!(resp.header("x-trace-id"), Some(trace_id.as_str()));

        // `+` decodes to a space too; unknown companies yield empty lists.
        let resp = client.get("/v1/objectives?company=Acme+Corp").expect("plus form");
        assert_eq!(resp.status, 200);
        let resp = client.get("/v1/objectives?company=Nobody").expect("unknown");
        assert_eq!(
            json::parse(&resp.body).expect("json").get("count").and_then(Json::as_u64),
            Some(0)
        );

        // Malformed queries are client errors; writes are rejected.
        for query in ["", "?company=", "?company=%zz", "?other=x"] {
            let resp = client.get(&format!("/v1/objectives{query}")).expect("bad query");
            assert_eq!(resp.status, 400, "query {query:?}: {}", resp.body);
        }
        let resp = client.post_json("/v1/objectives", "{}").expect("write attempt");
        assert_eq!(resp.status, 405, "body: {}", resp.body);

        count_after_first_run = records.len();
        server.shutdown();
    }

    // A fresh server over the same directory replays the logs and serves
    // the same records.
    let server =
        Server::start_with_store(engine.clone(), ServerConfig::default(), Some(open_hook(&dir)))
            .expect("restart with store");
    let mut client = Client::connect(server.addr(), Duration::from_secs(10)).expect("connect");
    let resp = client.get("/v1/objectives?company=Acme%20Corp").expect("query after restart");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let value = json::parse(&resp.body).expect("json");
    assert_eq!(value.get("count").and_then(Json::as_u64), Some(count_after_first_run as u64));
    // Re-ingestion after restart is still recognised as a duplicate.
    let resp = client.post_json("/v1/extract", &body).expect("repeat after restart");
    let value = json::parse(&resp.body).expect("json");
    assert_eq!(value.get("stored").and_then(Json::as_str), Some("unchanged"), "{}", resp.body);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn threaded_pool_serving_matches_the_serial_path_exactly() {
    let engine = engine();
    let texts = sample_texts(12);

    // Ground truth computed with the pool pinned to one thread: the
    // serial per-text extraction path.
    let serial: Vec<BTreeMap<String, String>> =
        gs_par::with_threads(1, || texts.iter().map(|t| expected_fields(&engine.0, t)).collect());

    // Serve the same texts with a 4-thread pool active. The batch worker
    // thread fans per-sequence encoding out across gs-par workers
    // (`predict_tags_batch`), so this exercises the threaded service path
    // end to end; responses must stay bitwise-faithful to the serial run.
    let _scope = gs_par::ParScope::new(4);
    let server = Server::start(
        engine.clone(),
        ServerConfig {
            batch: BatchConfig {
                max_batch: 6,
                max_delay: Duration::from_millis(2),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("start server");
    let addr = server.addr();

    let mut client = Client::connect(addr, Duration::from_secs(10)).expect("connect");
    let array = Json::Arr(texts.iter().map(|t| Json::from(t.as_str())).collect());
    let body = Json::obj(vec![("texts", array)]).to_string();
    let resp = client.post_json("/v1/extract_batch", &body).expect("batch request");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let value = json::parse(&resp.body).expect("response json");
    let results = value.get("results").and_then(Json::as_arr).expect("results array");
    assert_eq!(results.len(), texts.len());
    for ((result, text), want) in results.iter().zip(&texts).zip(&serial) {
        assert_eq!(&fields_of(result), want, "threaded serving diverged for {text:?}");
    }

    // Single-text requests through the micro-batcher agree too.
    for (text, want) in texts.iter().take(4).zip(&serial) {
        let resp = client.post_json("/v1/extract", &single_body(text)).expect("request");
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let value = json::parse(&resp.body).expect("response json");
        assert_eq!(&fields_of(&value), want, "threaded serving diverged for {text:?}");
    }
    server.shutdown();
}
