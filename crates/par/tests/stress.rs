//! Concurrency stress tests for the gs-par pool: panic propagation out of
//! (nested) scopes without deadlock or poisoning, oversubscription, and
//! repeated reuse. CI runs this suite at `GS_NUM_THREADS={1,4}` and under
//! `--test-threads` variation, so every test must be correct no matter how
//! many sibling tests share the pool.

use gs_par::{for_each_chunk_mut, for_each_index, map_collect, with_threads};
use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A panicking task surfaces its payload on the caller and leaves the pool
/// usable: the very next scope on the same pool must run to completion.
#[test]
fn panic_propagates_and_pool_survives() {
    for round in 0..3 {
        let result = panic::catch_unwind(|| {
            with_threads(4, || {
                for_each_index(64, |i| {
                    if i == 13 {
                        panic!("task failure in round {round}");
                    }
                });
            });
        });
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("task failure"), "unexpected payload {msg}");

        // Pool not poisoned: a full scope still completes.
        let done = AtomicUsize::new(0);
        with_threads(4, || {
            for_each_index(64, |_| {
                done.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(done.load(Ordering::Relaxed), 64);
    }
}

/// Panics raised inside a *nested* scope unwind through the outer scope
/// without deadlocking (nested scopes run inline on their worker).
#[test]
fn nested_scope_panic_does_not_deadlock() {
    let result = panic::catch_unwind(|| {
        with_threads(4, || {
            for_each_index(8, |outer| {
                for_each_index(8, |inner| {
                    if outer == 3 && inner == 5 {
                        panic!("nested failure");
                    }
                });
            });
        });
    });
    assert!(result.is_err(), "nested panic must reach the caller");

    // And the pool still works.
    assert_eq!(with_threads(4, || map_collect(32, |i| i + 1)).len(), 32);
}

/// Nested scopes compute the same thing as flat iteration.
#[test]
fn nested_scopes_cover_the_product_range() {
    let cells: Vec<AtomicUsize> = (0..144).map(|_| AtomicUsize::new(0)).collect();
    with_threads(4, || {
        for_each_index(12, |i| {
            for_each_index(12, |j| {
                cells[i * 12 + j].fetch_add(1, Ordering::Relaxed);
            });
        });
    });
    assert!(cells.iter().all(|c| c.load(Ordering::Relaxed) == 1));
}

/// Far more tasks than workers: everything still runs exactly once, and
/// with a degree far above the physical core count nothing wedges.
#[test]
fn oversubscription_completes() {
    let n = 10_000;
    let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    with_threads(16, || {
        for_each_index(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

/// Repeated reuse: many small scopes back to back, interleaving thread
/// counts, with results checked every round. Guards against leaked scope
/// state (stuck claims, stale panics, lost wakeups) across reuse.
#[test]
fn repeated_reuse_is_stable() {
    for round in 0..200 {
        let threads = [1, 2, 4][round % 3];
        let out = with_threads(threads, || map_collect(33, move |i| i * round));
        assert_eq!(out, (0..33).map(|i| i * round).collect::<Vec<_>>());
    }
}

/// Disjoint chunk writes race-free under load: every element written by
/// exactly the task owning its chunk.
#[test]
fn chunked_writes_are_disjoint_under_load() {
    let mut data = vec![0usize; 4096];
    with_threads(8, || {
        for_each_chunk_mut(&mut data, 100, |ci, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = ci * 100 + j + 1;
            }
        });
    });
    assert!(data.iter().enumerate().all(|(i, &x)| x == i + 1));
}

/// Concurrent callers from independent OS threads share the pool safely.
#[test]
fn concurrent_external_callers() {
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let out = map_collect(257, move |i| i + t);
                assert_eq!(out, (0..257).map(|i| i + t).collect::<Vec<_>>());
            })
        })
        .collect();
    for h in handles {
        h.join().expect("caller thread");
    }
}
