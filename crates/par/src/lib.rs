//! # gs-par
//!
//! A dependency-free, std-only persistent thread pool with scoped fork-join
//! over index ranges — the parallel substrate under `gs-tensor`'s hot
//! kernels, `gs-models`' data-parallel training, and `gs-serve`'s
//! micro-batch encoding.
//!
//! ## Determinism contract
//!
//! Parallel execution here never changes results, only wall-clock time:
//!
//! - work is split over *index ranges*; every index writes a disjoint slice
//!   of the output, so there is no cross-thread accumulation;
//! - floating-point reductions are never performed atomically or in thread
//!   arrival order — callers that need a reduction collect per-index
//!   results (see [`map_collect`]) and fold them on the calling thread in
//!   index order;
//! - therefore every computation is bit-identical at 1, 2, 4, … threads,
//!   which the equivalence suites in `gs-tensor` and `gs-models` pin down.
//!
//! ## Sizing
//!
//! The pool size defaults to [`std::thread::available_parallelism`] and can
//! be fixed with the `GS_NUM_THREADS` environment variable (read once, at
//! first use). Tests and benchmarks override it in-process with a
//! [`ParScope`] guard (or the [`with_threads`] closure form), which takes
//! precedence over the environment. Workers are spawned lazily up to the
//! requested degree and park on a condition variable when idle, so an
//! oversized pool costs nothing while serial code runs.
//!
//! ## Panics
//!
//! A panicking task never deadlocks or poisons the pool: the panic payload
//! is captured, remaining indices are abandoned, helpers drain, and the
//! payload is re-thrown on the calling thread once the scope has fully
//! quiesced. Subsequent scopes reuse the pool normally.
//!
//! Nested scopes (a task that itself calls into gs-par) run inline on the
//! worker executing them rather than re-entering the queue, which keeps
//! fork-join free of worker-starvation deadlocks.

#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::OnceLock;

use gs_race::sync::{AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, Ordering};

/// A queued unit of pool work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Cumulative pool counters since process start (monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fork-join scopes dispatched to the pool (serial-inline runs not
    /// counted).
    pub dispatches: u64,
    /// Helper jobs pushed onto the pool queue.
    pub jobs: u64,
    /// Indices executed by pool workers rather than the scope's caller
    /// (work "stolen" from the calling thread).
    pub steals: u64,
    /// Times a worker parked on the idle condition variable.
    pub parks: u64,
    /// High-water mark of the job queue length.
    pub peak_queue: u64,
}

static DISPATCHES: AtomicU64 = AtomicU64::new(0);
static JOBS: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);
static PARKS: AtomicU64 = AtomicU64::new(0);
static PEAK_QUEUE: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the global pool counters.
pub fn stats() -> PoolStats {
    PoolStats {
        // ordering: Relaxed — monotonic statistics with no associated
        // payload; a snapshot may mix slightly stale counters, which the
        // PoolStats contract allows.
        dispatches: DISPATCHES.load(Ordering::Relaxed),
        jobs: JOBS.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
        parks: PARKS.load(Ordering::Relaxed),
        peak_queue: PEAK_QUEUE.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Degree selection: ParScope override > GS_NUM_THREADS > available cores.
// ---------------------------------------------------------------------------

/// Process-wide degree override installed by [`ParScope`]; 0 means "none".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        match std::env::var("GS_NUM_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            // Unset, unparsable, or 0: use what the machine offers.
            _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    })
}

/// The effective parallelism degree: the innermost [`ParScope`] override if
/// one is active, else `GS_NUM_THREADS`, else the machine's core count.
/// Always at least 1.
pub fn max_threads() -> usize {
    // ordering: Relaxed — the override is a plain configuration value with
    // no payload published alongside it; readers only need an atomic usize.
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => configured_threads(),
        n => n,
    }
}

/// RAII guard fixing the parallelism degree for the duration of its scope
/// (process-wide, so the degree also applies to pool workers and to other
/// threads such as a serving worker). Intended for tests and benchmarks;
/// the override only changes how work is scheduled, never its result, so a
/// race between overlapping scopes in concurrent tests can at worst change
/// timing.
pub struct ParScope {
    prev: usize,
}

impl ParScope {
    /// Installs a degree override of `threads` (clamped to at least 1),
    /// restored to the previous value on drop.
    pub fn new(threads: usize) -> ParScope {
        // ordering: Relaxed — see max_threads(); the override carries no
        // payload, so install/restore need no release edges.
        let prev = OVERRIDE.swap(threads.max(1), Ordering::Relaxed);
        ParScope { prev }
    }
}

impl Drop for ParScope {
    fn drop(&mut self) {
        // ordering: Relaxed — restore of a payload-free configuration value.
        OVERRIDE.store(self.prev, Ordering::Relaxed);
    }
}

/// Runs `f` under a [`ParScope`] of `threads`.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _scope = ParScope::new(threads);
    f()
}

// ---------------------------------------------------------------------------
// The pool: lazily spawned parked workers pulling from one queue.
// ---------------------------------------------------------------------------

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

struct Pool {
    shared: &'static PoolShared,
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let shared: &'static PoolShared = Box::leak(Box::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        Pool { shared, spawned: Mutex::new(0) }
    })
}

fn worker_loop(shared: &'static PoolShared) {
    loop {
        let job = {
            // The gs_race::sync mutex recovers from poisoning internally;
            // jobs run under catch_unwind anyway, so one bad scope can
            // never wedge the pool.
            let mut queue = shared.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                // ordering: Relaxed — park count is a statistic only.
                PARKS.fetch_add(1, Ordering::Relaxed);
                queue = shared.available.wait(queue);
            }
        };
        job();
    }
}

/// Ensures at least `want` workers exist, spawning parked ones as needed.
fn ensure_workers(want: usize) {
    let p = pool();
    let mut spawned = p.spawned.lock();
    while *spawned < want {
        let shared = p.shared;
        std::thread::Builder::new()
            .name(format!("gs-par-{}", *spawned))
            .spawn(move || worker_loop(shared))
            .expect("spawn gs-par worker");
        *spawned += 1;
    }
}

fn push_jobs(jobs: Vec<Job>) {
    let p = pool();
    let mut queue = p.shared.queue.lock();
    // ordering: Relaxed — job/peak counters are statistics; the jobs
    // themselves are published by the queue mutex, not by these atomics.
    JOBS.fetch_add(jobs.len() as u64, Ordering::Relaxed);
    for job in jobs {
        queue.push_back(job);
    }
    let depth = queue.len() as u64;
    PEAK_QUEUE.fetch_max(depth, Ordering::Relaxed);
    drop(queue);
    p.shared.available.notify_all();
}

// ---------------------------------------------------------------------------
// Fork-join scopes.
// ---------------------------------------------------------------------------

thread_local! {
    /// Set while this thread executes inside a fork-join scope; nested
    /// scopes run inline to avoid worker-starvation deadlocks.
    static IN_SCOPE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Shared state of one fork-join scope. Lives on the caller's stack; the
/// caller blocks until every helper has signed off, which is what makes
/// handing borrowed references to pool threads sound.
struct Scope<'a> {
    f: &'a (dyn Fn(usize) + Sync),
    n: usize,
    next: AtomicUsize,
    abandoned: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    pending: Mutex<usize>,
    done: Condvar,
}

impl Scope<'_> {
    /// Claims and runs indices until the range is exhausted or the scope is
    /// abandoned by a panic elsewhere.
    fn run_claims(&self, helper: bool) {
        IN_SCOPE.with(|flag| {
            let was = flag.replace(true);
            // ordering: Relaxed — `abandoned` is advisory: it only trims
            // wasted work after a panic. Correctness never depends on when
            // a claimant observes it; the payload travels via `self.panic`.
            while !self.abandoned.load(Ordering::Relaxed) {
                // ordering: Relaxed — index claims need only RMW atomicity
                // for disjointness. The writes each task performs at index
                // `i` are published to the caller by the scope-join edge
                // (pending mutex + condvar), not by this counter.
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                if i >= self.n {
                    break;
                }
                if helper {
                    // ordering: Relaxed — statistic only.
                    STEALS.fetch_add(1, Ordering::Relaxed);
                }
                if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| (self.f)(i))) {
                    // ordering: Relaxed — see the loop condition above.
                    self.abandoned.store(true, Ordering::Relaxed);
                    let mut slot = self.panic.lock();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            flag.set(was);
        });
    }

    fn helper_done(&self) {
        let mut pending = self.pending.lock();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait_helpers(&self) {
        let mut pending = self.pending.lock();
        while *pending > 0 {
            pending = self.done.wait(pending);
        }
    }
}

/// Runs `f(i)` for every `i in 0..n`, splitting the range across the pool.
///
/// Each index must only write state disjoint from every other index; under
/// that contract results are identical at any thread count. The calling
/// thread participates, so the scope makes progress even when all workers
/// are busy. Serial fallback (degree 1, `n <= 1`, or a nested scope) runs
/// `f` inline in ascending index order.
///
/// # Panics
/// Re-throws the first panic raised by any `f(i)` after the scope drains.
pub fn for_each_index(n: usize, f: impl Fn(usize) + Sync) {
    let threads = max_threads();
    if n <= 1 || threads <= 1 || IN_SCOPE.with(|flag| flag.get()) {
        for i in 0..n {
            f(i);
        }
        return;
    }

    let helpers = threads.min(n) - 1;
    let scope = Scope {
        f: &f,
        n,
        next: AtomicUsize::new(0),
        abandoned: AtomicBool::new(false),
        panic: Mutex::new(None),
        pending: Mutex::new(helpers),
        done: Condvar::new(),
    };
    // ordering: Relaxed — statistic only.
    DISPATCHES.fetch_add(1, Ordering::Relaxed);
    if gs_obs::enabled() {
        gs_obs::counter("par.dispatches", 1);
        gs_obs::counter("par.indices", n as u64);
    }

    if helpers > 0 {
        ensure_workers(helpers);
        // SAFETY: `scope` (and the closure it borrows) outlives every
        // helper job because `wait_helpers` below blocks until each job has
        // called `helper_done`, even when a task panics.
        let scope_ref: &'static Scope<'static> =
            unsafe { std::mem::transmute::<&Scope<'_>, &'static Scope<'static>>(&scope) };
        let jobs: Vec<Job> = (0..helpers)
            .map(|_| {
                Box::new(move || {
                    scope_ref.run_claims(true);
                    scope_ref.helper_done();
                }) as Job
            })
            .collect();
        push_jobs(jobs);
    }

    scope.run_claims(false);
    scope.wait_helpers();

    let payload = scope.panic.lock().take();
    if let Some(payload) = payload {
        panic::resume_unwind(payload);
    }
}

/// Runs `f(chunk_index, chunk)` over `data` split into contiguous chunks of
/// `chunk_len` elements (the last chunk may be shorter), in parallel.
///
/// This is the disjoint-write workhorse for row-blocked kernels: callers
/// pick `chunk_len` as a multiple of their row stride and compute absolute
/// offsets from `chunk_index * chunk_len`.
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = data.len();
    let chunks = len.div_ceil(chunk_len);
    let base = data.as_mut_ptr() as usize;
    for_each_index(chunks, |ci| {
        let start = ci * chunk_len;
        let end = (start + chunk_len).min(len);
        // SAFETY: chunks `[start, end)` are pairwise disjoint subranges of
        // `data`, which outlives the scope (for_each_index joins before
        // returning), so each task gets exclusive access to its slice.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start) };
        f(ci, chunk);
    });
}

/// Computes `f(i)` for `i in 0..n` in parallel and returns the results in
/// index order — the deterministic-reduction building block: fold the
/// returned vector on the calling thread instead of accumulating across
/// threads.
pub fn map_collect<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    struct Slots<T>(*mut Option<T>);
    impl<T> Clone for Slots<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Slots<T> {}
    // SAFETY: each index writes only its own slot, and for_each_index joins
    // before `slots` is read or dropped.
    unsafe impl<T: Send> Send for Slots<T> {}
    unsafe impl<T: Send> Sync for Slots<T> {}
    impl<T> Slots<T> {
        /// # Safety
        /// Slot `i` must be in bounds and owned exclusively by the caller.
        unsafe fn set(self, i: usize, value: T) {
            *self.0.add(i) = Some(value);
        }
    }

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let base = Slots(slots.as_mut_ptr());
    for_each_index(n, |i| {
        let value = f(i);
        // SAFETY: slot `i` is in bounds and owned exclusively by this task.
        unsafe { base.set(i, value) };
    });
    slots.into_iter().map(|slot| slot.expect("every index sets its slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn for_each_index_covers_every_index_once() {
        let hits: Vec<AtomicU32> = (0..257).map(|_| AtomicU32::new(0)).collect();
        with_threads(4, || {
            for_each_index(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunk_mut_partitions_exactly() {
        let mut data = vec![0u32; 1000];
        with_threads(4, || {
            for_each_chunk_mut(&mut data, 64, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = (ci * 64 + j) as u32;
                }
            });
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn map_collect_preserves_index_order() {
        let out = with_threads(4, || map_collect(100, |i| i * i));
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn degree_override_nests_and_restores() {
        let outer = max_threads();
        with_threads(3, || {
            assert_eq!(max_threads(), 3);
            with_threads(1, || assert_eq!(max_threads(), 1));
            assert_eq!(max_threads(), 3);
        });
        assert_eq!(max_threads(), outer);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        with_threads(0, || assert_eq!(max_threads(), 1));
    }

    #[test]
    fn empty_and_single_ranges_run_inline() {
        let count = AtomicU32::new(0);
        with_threads(4, || {
            for_each_index(0, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            for_each_index(1, |i| {
                assert_eq!(i, 0);
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
