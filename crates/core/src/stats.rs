//! Weak-label quality statistics: how much of the coarse supervision
//! Algorithm 1 actually converts into token labels. The paper's §5.3
//! discusses the exact-match limitation; these counters quantify it per
//! field and per matching policy.

use crate::weak_label::WeakLabeling;
use gs_text::labels::{LabelSet, Tag};
use serde::{Deserialize, Serialize};

/// Per-kind match statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindStats {
    /// Objectives where the field was annotated with a non-empty value.
    pub annotated: usize,
    /// Of those, how many values Algorithm 1 located in the text.
    pub matched: usize,
    /// Total tokens labeled `B-`/`I-` of this kind.
    pub labeled_tokens: usize,
}

impl KindStats {
    /// Fraction of annotated values that were located (1.0 when none were
    /// annotated).
    pub fn match_rate(&self) -> f64 {
        if self.annotated == 0 {
            1.0
        } else {
            self.matched as f64 / self.annotated as f64
        }
    }
}

/// Aggregated statistics over a weakly labeled dataset.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeakLabelStats {
    /// Per kind, in label-set order.
    pub kinds: Vec<KindStats>,
    /// Total objectives processed.
    pub objectives: usize,
    /// Total tokens processed.
    pub tokens: usize,
    /// Tokens labeled `O`.
    pub outside_tokens: usize,
}

impl WeakLabelStats {
    /// Creates empty statistics for a label set.
    pub fn new(labels: &LabelSet) -> Self {
        WeakLabelStats {
            kinds: vec![KindStats::default(); labels.num_kinds()],
            objectives: 0,
            tokens: 0,
            outside_tokens: 0,
        }
    }

    /// Folds one labeling result in. `annotated_kinds` lists the kinds that
    /// had non-empty annotation values for this objective.
    pub fn record(&mut self, labeling: &WeakLabeling, annotated_kinds: &[usize]) {
        self.objectives += 1;
        self.tokens += labeling.tags.len();
        for tag in &labeling.tags {
            match tag {
                Tag::O => self.outside_tokens += 1,
                Tag::B(k) | Tag::I(k) => self.kinds[*k].labeled_tokens += 1,
            }
        }
        for &k in annotated_kinds {
            self.kinds[k].annotated += 1;
            if !labeling.unmatched.contains(&k) {
                self.kinds[k].matched += 1;
            }
        }
    }

    /// Overall fraction of annotated values located across kinds.
    pub fn overall_match_rate(&self) -> f64 {
        let annotated: usize = self.kinds.iter().map(|k| k.annotated).sum();
        let matched: usize = self.kinds.iter().map(|k| k.matched).sum();
        if annotated == 0 {
            1.0
        } else {
            matched as f64 / annotated as f64
        }
    }

    /// Fraction of tokens labeled `O` (class imbalance indicator).
    pub fn outside_fraction(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else {
            self.outside_tokens as f64 / self.tokens as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Annotations;
    use crate::weak_label::{weak_label, WeakLabelConfig};

    #[test]
    fn records_matches_and_misses() {
        let ls = LabelSet::sustainability_goals();
        let mut stats = WeakLabelStats::new(&ls);

        let ann = Annotations::new().with("Action", "Reduce").with("Deadline", "2030");
        let labeling = weak_label("Reduce waste by 2025", &ann, &ls, WeakLabelConfig::default());
        let kinds: Vec<usize> = ann.present().filter_map(|(k, _)| ls.kind_index(k)).collect();
        stats.record(&labeling, &kinds);

        let action = ls.kind_index("Action").expect("kind");
        let deadline = ls.kind_index("Deadline").expect("kind");
        assert_eq!(stats.kinds[action].annotated, 1);
        assert_eq!(stats.kinds[action].matched, 1);
        assert_eq!(stats.kinds[deadline].annotated, 1);
        assert_eq!(stats.kinds[deadline].matched, 0, "2030 does not occur");
        assert_eq!(stats.overall_match_rate(), 0.5);
        assert!(stats.outside_fraction() > 0.5);
    }

    #[test]
    fn match_rate_defaults_to_one_when_unannotated() {
        let stats = KindStats::default();
        assert_eq!(stats.match_rate(), 1.0);
    }
}
