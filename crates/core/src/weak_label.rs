//! Algorithm 1: `WeakSupervisionTokenLabeling(o, A)`.
//!
//! Converts coarse objective-level annotations into token-level IOB labels
//! by locating each annotation value's token sequence inside the objective's
//! token sequence (paper §3.2). The paper's default is exact token matching;
//! the `Normalized` and `Fuzzy` policies implement the future-work
//! extensions discussed in §5.3/§7 and are ablated in the benchmarks.

use crate::types::Annotations;
use gs_text::labels::{LabelSet, Tag};
use gs_text::{pretokenize, PreToken};
use serde::{Deserialize, Serialize};

/// How annotation-value tokens are compared to objective tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchPolicy {
    /// Byte-exact token equality — the paper's implementation ("our current
    /// implementation relies on exact token-level matching", §5.3).
    Exact,
    /// Case-insensitive comparison after punctuation-trimming.
    Normalized,
    /// Allows up to `max_edits` total character edits across the window
    /// (Levenshtein), capturing lexically close but non-identical mentions.
    Fuzzy {
        /// Total edit budget over the whole matched window.
        max_edits: usize,
    },
}

/// What to do when a value occurs several times in the objective.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccurrencePolicy {
    /// Label only the first occurrence (Algorithm 1 line 5 finds one index).
    #[default]
    First,
    /// Label every non-overlapping occurrence.
    All,
}

/// Configuration of the weak labeling algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeakLabelConfig {
    /// Token comparison policy.
    pub match_policy: MatchPolicy,
    /// Multi-occurrence handling.
    pub occurrence: OccurrencePolicy,
}

impl Default for WeakLabelConfig {
    fn default() -> Self {
        WeakLabelConfig { match_policy: MatchPolicy::Exact, occurrence: OccurrencePolicy::First }
    }
}

/// Result of weakly labeling one objective.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeakLabeling {
    /// The objective's word-level tokens.
    pub tokens: Vec<PreToken>,
    /// One IOB tag per token.
    pub tags: Vec<Tag>,
    /// Field kinds whose annotation value could not be located.
    pub unmatched: Vec<usize>,
}

impl WeakLabeling {
    /// Human-readable (token, tag) rows, as in the paper's Table 3.
    pub fn rows(&self, labels: &LabelSet) -> Vec<(String, String)> {
        self.tokens
            .iter()
            .zip(&self.tags)
            .map(|(t, tag)| (t.text.clone(), labels.tag_string(*tag)))
            .collect()
    }
}

/// Runs Algorithm 1 over already pre-tokenized text.
///
/// `annotations` pairs a kind index (into `labels`) with the annotated value
/// string. Values are tokenized with the same pre-tokenizer as the
/// objective; the first token of a located window receives `B-k`, the rest
/// `I-k` (Algorithm 1 lines 6-9). Later annotations overwrite earlier ones
/// on overlap, mirroring the paper's in-place label writes.
pub fn weak_label_tokens(
    tokens: &[PreToken],
    annotations: &[(usize, String)],
    labels: &LabelSet,
    config: WeakLabelConfig,
) -> WeakLabeling {
    let mut tags = vec![Tag::O; tokens.len()];
    let mut unmatched = Vec::new();
    let telemetry = gs_obs::enabled();

    for (kind, value) in annotations {
        assert!(*kind < labels.num_kinds(), "kind {} out of label set", kind);
        let value_tokens = pretokenize(value);
        if value_tokens.is_empty() {
            continue;
        }
        let matches = find_matches(tokens, &value_tokens, config.match_policy);
        if telemetry {
            let outcome = if matches.is_empty() { "miss" } else { "match" };
            gs_obs::counter(&format!("core.weak_label.{outcome}.{}", labels.kind_name(*kind)), 1);
        }
        if matches.is_empty() {
            unmatched.push(*kind);
            continue;
        }
        let starts: &[usize] = match config.occurrence {
            OccurrencePolicy::First => &matches[..1],
            OccurrencePolicy::All => &matches,
        };
        for &s in starts {
            tags[s] = Tag::B(*kind);
            for t in tags.iter_mut().take(s + value_tokens.len()).skip(s + 1) {
                *t = Tag::I(*kind);
            }
        }
    }

    if telemetry {
        gs_obs::counter("core.weak_label.objectives", 1);
        gs_obs::emit(
            "weak_label",
            "core.weak_label",
            vec![
                ("tokens", tokens.len().into()),
                ("annotations", annotations.len().into()),
                ("missed", unmatched.len().into()),
                ("labeled", tags.iter().filter(|t| **t != Tag::O).count().into()),
            ],
        );
    }

    WeakLabeling { tokens: tokens.to_vec(), tags, unmatched }
}

/// Runs Algorithm 1 on raw objective text and an [`Annotations`] set whose
/// keys name kinds in `labels`. Unknown keys are ignored (heterogeneous
/// real-world annotations may carry extra fields).
pub fn weak_label(
    text: &str,
    annotations: &Annotations,
    labels: &LabelSet,
    config: WeakLabelConfig,
) -> WeakLabeling {
    let tokens = pretokenize(text);
    let pairs: Vec<(usize, String)> = annotations
        .present()
        .filter_map(|(k, v)| labels.kind_index(k).map(|ki| (ki, v.to_string())))
        .collect();
    weak_label_tokens(&tokens, &pairs, labels, config)
}

/// Finds all non-overlapping window start indices where `needle` matches.
fn find_matches(haystack: &[PreToken], needle: &[PreToken], policy: MatchPolicy) -> Vec<usize> {
    let n = needle.len();
    if n == 0 || haystack.len() < n {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut i = 0;
    while i + n <= haystack.len() {
        if window_matches(&haystack[i..i + n], needle, policy) {
            out.push(i);
            i += n; // non-overlapping
        } else {
            i += 1;
        }
    }
    out
}

fn window_matches(window: &[PreToken], needle: &[PreToken], policy: MatchPolicy) -> bool {
    match policy {
        MatchPolicy::Exact => window.iter().zip(needle).all(|(a, b)| a.text == b.text),
        MatchPolicy::Normalized => window
            .iter()
            .zip(needle)
            .all(|(a, b)| gs_text::match_key(&a.text) == gs_text::match_key(&b.text)),
        MatchPolicy::Fuzzy { max_edits } => {
            let mut budget = max_edits;
            for (a, b) in window.iter().zip(needle) {
                let al = a.text.to_lowercase();
                let bl = b.text.to_lowercase();
                let d = levenshtein(&al, &bl);
                if d > budget {
                    return false;
                }
                budget -= d;
            }
            true
        }
    }
}

/// Levenshtein edit distance over characters.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> LabelSet {
        LabelSet::sustainability_goals()
    }

    fn climate_pledge_annotations() -> Annotations {
        Annotations::new()
            .with("Action", "reach")
            .with("Amount", "net-zero")
            .with("Qualifier", "carbon")
            .with("Baseline", "")
            .with("Deadline", "2040")
    }

    /// The paper's Table 3 golden example, end to end.
    #[test]
    fn table3_golden_output() {
        let text =
            "We co-founded The Climate Pledge, a commitment to reach net-zero carbon by 2040.";
        let ls = labels();
        let result =
            weak_label(text, &climate_pledge_annotations(), &ls, WeakLabelConfig::default());
        let rows = result.rows(&ls);
        let expected = [
            ("We", "O"),
            ("co", "O"),
            ("-", "O"),
            ("founded", "O"),
            ("The", "O"),
            ("Climate", "O"),
            ("Pledge", "O"),
            (",", "O"),
            ("a", "O"),
            ("commitment", "O"),
            ("to", "O"),
            ("reach", "B-Action"),
            ("net", "B-Amount"),
            ("-", "I-Amount"),
            ("zero", "I-Amount"),
            ("carbon", "B-Qualifier"),
            ("by", "O"),
            ("2040", "B-Deadline"),
            (".", "O"),
        ];
        assert_eq!(rows.len(), expected.len());
        for ((tok, tag), (etok, etag)) in rows.iter().zip(expected.iter()) {
            assert_eq!(tok, etok);
            assert_eq!(tag, etag, "token {tok}");
        }
        assert!(result.unmatched.is_empty());
    }

    #[test]
    fn unmatched_values_are_reported() {
        let ls = labels();
        let ann = Annotations::new().with("Action", "eliminate");
        let result = weak_label("Reduce all emissions.", &ann, &ls, WeakLabelConfig::default());
        assert_eq!(result.unmatched, vec![ls.kind_index("Action").expect("kind")]);
        assert!(result.tags.iter().all(|t| *t == Tag::O));
    }

    #[test]
    fn exact_matching_is_case_sensitive() {
        let ls = labels();
        let ann = Annotations::new().with("Action", "reduce");
        let exact = weak_label("Reduce emissions", &ann, &ls, WeakLabelConfig::default());
        assert_eq!(exact.unmatched.len(), 1, "paper's exact matcher misses case variants");

        let normalized = weak_label(
            "Reduce emissions",
            &ann,
            &ls,
            WeakLabelConfig { match_policy: MatchPolicy::Normalized, ..Default::default() },
        );
        assert!(normalized.unmatched.is_empty());
        assert_eq!(normalized.tags[0], Tag::B(0));
    }

    #[test]
    fn fuzzy_matching_tolerates_typos() {
        let ls = labels();
        let ann = Annotations::new().with("Qualifier", "energy consumptions");
        let cfg = WeakLabelConfig {
            match_policy: MatchPolicy::Fuzzy { max_edits: 2 },
            ..Default::default()
        };
        let result = weak_label("Reduce energy consumption by 20%", &ann, &ls, cfg);
        assert!(result.unmatched.is_empty());
        let q = ls.kind_index("Qualifier").expect("kind");
        assert_eq!(result.tags[1], Tag::B(q));
        assert_eq!(result.tags[2], Tag::I(q));
    }

    #[test]
    fn fuzzy_budget_is_shared_across_window() {
        let ls = labels();
        let ann = Annotations::new().with("Qualifier", "enerby consumptionX");
        // 1 edit in first token + 1 in second = 2 total; budget 1 must fail.
        let fail = weak_label(
            "Reduce energy consumption now",
            &ann,
            &ls,
            WeakLabelConfig {
                match_policy: MatchPolicy::Fuzzy { max_edits: 1 },
                ..Default::default()
            },
        );
        assert_eq!(fail.unmatched.len(), 1);
        let pass = weak_label(
            "Reduce energy consumption now",
            &ann,
            &ls,
            WeakLabelConfig {
                match_policy: MatchPolicy::Fuzzy { max_edits: 2 },
                ..Default::default()
            },
        );
        assert!(pass.unmatched.is_empty());
    }

    #[test]
    fn first_vs_all_occurrences() {
        let ls = labels();
        let ann = Annotations::new().with("Deadline", "2025");
        let text = "By 2025 we act, and by 2025 we report.";
        let first = weak_label(text, &ann, &ls, WeakLabelConfig::default());
        let all = weak_label(
            text,
            &ann,
            &ls,
            WeakLabelConfig { occurrence: OccurrencePolicy::All, ..Default::default() },
        );
        let count = |w: &WeakLabeling| w.tags.iter().filter(|&&t| t != Tag::O).count();
        assert_eq!(count(&first), 1);
        assert_eq!(count(&all), 2);
    }

    #[test]
    fn later_annotations_overwrite_overlaps() {
        let ls = labels();
        // "Qualifier" sorts after "Amount" in BTreeMap order; both cover
        // the token "zero" — the later write wins, as in Algorithm 1.
        let ann = Annotations::new().with("Amount", "zero waste").with("Qualifier", "waste");
        let result =
            weak_label("Achieve zero waste by 2030", &ann, &ls, WeakLabelConfig::default());
        let amount = ls.kind_index("Amount").expect("kind");
        let qualifier = ls.kind_index("Qualifier").expect("kind");
        assert_eq!(result.tags[1], Tag::B(amount));
        assert_eq!(result.tags[2], Tag::B(qualifier), "overwritten by later annotation");
    }

    #[test]
    fn empty_annotation_values_are_skipped() {
        let ls = labels();
        let ann = Annotations::new().with("Baseline", "");
        let result = weak_label("Reduce by 2025", &ann, &ls, WeakLabelConfig::default());
        assert!(result.unmatched.is_empty());
        assert!(result.tags.iter().all(|t| *t == Tag::O));
    }

    #[test]
    fn unknown_annotation_keys_are_ignored() {
        let ls = labels();
        let ann = Annotations::new().with("Sector", "transport");
        let result = weak_label("Decarbonize transport", &ann, &ls, WeakLabelConfig::default());
        assert!(result.unmatched.is_empty());
        assert!(result.tags.iter().all(|t| *t == Tag::O));
    }

    #[test]
    fn multiword_value_spans_punctuation_tokens() {
        let ls = labels();
        let ann = Annotations::new().with("Amount", "net-zero");
        let result = weak_label("Commit to net-zero now", &ann, &ls, WeakLabelConfig::default());
        let amount = ls.kind_index("Amount").expect("kind");
        assert_eq!(result.tags[2], Tag::B(amount)); // net
        assert_eq!(result.tags[3], Tag::I(amount)); // -
        assert_eq!(result.tags[4], Tag::I(amount)); // zero
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "xy"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("carbon", "carbon"), 0);
    }

    #[test]
    fn value_longer_than_text_never_matches() {
        let ls = labels();
        let ann = Annotations::new().with("Qualifier", "a very long qualifier phrase indeed");
        let result = weak_label("short text", &ann, &ls, WeakLabelConfig::default());
        assert_eq!(result.unmatched.len(), 1);
    }
}
