//! Production-phase decoding: turning predicted token tags back into the
//! structured key-value details stored in the database (Figure 2, blue
//! phase).

use crate::types::ExtractedDetails;
use gs_text::labels::{decode_spans, LabelSet, Tag, TagSpan};
use gs_text::{PreToken, Span};
use serde::{Deserialize, Serialize};

/// How multiple predicted spans of the same kind are reduced to one field
/// value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MultiSpanPolicy {
    /// Keep the first span (the paper's tables show one value per field).
    #[default]
    First,
    /// Keep the longest span (most informative mention).
    Longest,
    /// Join all spans with `"; "`.
    JoinAll,
}

/// Reconstructs the source text covered by a token-index span, using
/// original offsets so inner punctuation/spacing is preserved exactly.
pub fn span_text(text: &str, tokens: &[PreToken], span: &TagSpan) -> String {
    if span.start >= span.end || span.end > tokens.len() {
        return String::new();
    }
    let byte_span = Span::new(tokens[span.start].span.start, tokens[span.end - 1].span.end);
    byte_span.slice(text).to_string()
}

/// Decodes predicted tags into [`ExtractedDetails`].
///
/// `text` and `tokens` must be the objective the tags were predicted for.
pub fn decode_details(
    text: &str,
    tokens: &[PreToken],
    tags: &[Tag],
    labels: &LabelSet,
    policy: MultiSpanPolicy,
) -> ExtractedDetails {
    assert_eq!(tokens.len(), tags.len(), "token/tag length mismatch");
    let spans = decode_spans(tags);
    let mut details = ExtractedDetails::new();
    for kind in 0..labels.num_kinds() {
        let kind_spans: Vec<&TagSpan> = spans.iter().filter(|s| s.kind == kind).collect();
        if kind_spans.is_empty() {
            continue;
        }
        let value = match policy {
            MultiSpanPolicy::First => span_text(text, tokens, kind_spans[0]),
            MultiSpanPolicy::Longest => {
                let longest = kind_spans.iter().max_by_key(|s| s.end - s.start).expect("non-empty");
                span_text(text, tokens, longest)
            }
            MultiSpanPolicy::JoinAll => {
                kind_spans.iter().map(|s| span_text(text, tokens, s)).collect::<Vec<_>>().join("; ")
            }
        };
        // Values with no alphanumeric content (a lone "%" or stray
        // punctuation from a boundary slip) carry no information.
        if value.chars().any(char::is_alphanumeric) {
            details.set(labels.kind_name(kind), value);
        }
    }
    details
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_text::pretokenize;

    fn setup() -> (String, Vec<PreToken>, LabelSet) {
        let text = "Reduce energy consumption by 20% by 2025.".to_string();
        let tokens = pretokenize(&text);
        (text, tokens, LabelSet::sustainability_goals())
    }

    #[test]
    fn decodes_fields_with_original_spacing() {
        let (text, tokens, ls) = setup();
        let action = ls.kind_index("Action").expect("kind");
        let amount = ls.kind_index("Amount").expect("kind");
        let qualifier = ls.kind_index("Qualifier").expect("kind");
        let deadline = ls.kind_index("Deadline").expect("kind");
        // tokens: Reduce energy consumption by 20 % by 2025 .
        let tags = vec![
            Tag::B(action),
            Tag::B(qualifier),
            Tag::I(qualifier),
            Tag::O,
            Tag::B(amount),
            Tag::I(amount),
            Tag::O,
            Tag::B(deadline),
            Tag::O,
        ];
        let details = decode_details(&text, &tokens, &tags, &ls, MultiSpanPolicy::First);
        assert_eq!(details.get("Action"), Some("Reduce"));
        assert_eq!(details.get("Qualifier"), Some("energy consumption"));
        assert_eq!(details.get("Amount"), Some("20%"), "no space before % — original text");
        assert_eq!(details.get("Deadline"), Some("2025"));
        assert_eq!(details.get("Baseline"), None);
    }

    #[test]
    fn first_policy_takes_first_span() {
        let (text, tokens, ls) = setup();
        let deadline = ls.kind_index("Deadline").expect("kind");
        let mut tags = vec![Tag::O; tokens.len()];
        tags[4] = Tag::B(deadline); // "20"
        tags[7] = Tag::B(deadline); // "2025"
        let details = decode_details(&text, &tokens, &tags, &ls, MultiSpanPolicy::First);
        assert_eq!(details.get("Deadline"), Some("20"));
    }

    #[test]
    fn longest_policy_takes_longest_span() {
        let (text, tokens, ls) = setup();
        let q = ls.kind_index("Qualifier").expect("kind");
        let mut tags = vec![Tag::O; tokens.len()];
        tags[0] = Tag::B(q);
        tags[1] = Tag::B(q);
        tags[2] = Tag::I(q);
        let details = decode_details(&text, &tokens, &tags, &ls, MultiSpanPolicy::Longest);
        assert_eq!(details.get("Qualifier"), Some("energy consumption"));
    }

    #[test]
    fn join_all_policy_concatenates() {
        let (text, tokens, ls) = setup();
        let d = ls.kind_index("Deadline").expect("kind");
        let mut tags = vec![Tag::O; tokens.len()];
        tags[4] = Tag::B(d);
        tags[7] = Tag::B(d);
        let details = decode_details(&text, &tokens, &tags, &ls, MultiSpanPolicy::JoinAll);
        assert_eq!(details.get("Deadline"), Some("20; 2025"));
    }

    #[test]
    fn punctuation_only_values_are_dropped() {
        let (text, tokens, ls) = setup();
        let amount = ls.kind_index("Amount").expect("kind");
        let mut tags = vec![Tag::O; tokens.len()];
        tags[5] = Tag::B(amount); // the lone "%" token
        let details = decode_details(&text, &tokens, &tags, &ls, MultiSpanPolicy::First);
        assert_eq!(details.get("Amount"), None, "a bare % carries no information");
    }

    #[test]
    fn all_o_tags_extract_nothing() {
        let (text, tokens, ls) = setup();
        let tags = vec![Tag::O; tokens.len()];
        let details = decode_details(&text, &tokens, &tags, &ls, MultiSpanPolicy::First);
        assert!(details.is_empty());
    }
}
