//! # gs-core
//!
//! The paper's primary contribution: **weakly supervised token labeling**
//! (Algorithm 1) that converts coarse, objective-level annotations into
//! token-level IOB labels, plus the production-phase decoding that turns
//! predicted tags back into structured key-value details.
//!
//! - [`weak_label`] / [`weak_label_tokens`]: Algorithm 1, with the paper's
//!   exact matching plus the future-work `Normalized`/`Fuzzy` policies.
//! - [`decode_details`]: predicted tags -> [`ExtractedDetails`].
//! - [`project_to_subwords`] / [`collapse_to_words`]: moving labels between
//!   Algorithm 1's word level and a transformer's subword level.
//! - [`WeakLabelStats`]: supervision-quality accounting.

#![warn(missing_docs)]

mod decode;
mod project;
mod segment;
mod stats;
mod types;
mod weak_label;

pub use decode::{decode_details, span_text, MultiSpanPolicy};
pub use project::{collapse_to_words, project_to_subwords};
pub use segment::{is_multi_target, segment_objective, Segment};
pub use stats::{KindStats, WeakLabelStats};
pub use types::{Annotations, ExtractedDetails, Objective};
pub use weak_label::{
    levenshtein, weak_label, weak_label_tokens, MatchPolicy, OccurrencePolicy, WeakLabelConfig,
    WeakLabeling,
};
