//! Objective segmentation — the first future-work direction the paper
//! names (§5.3/§7): objectives "that contain multiple actions or targets
//! within a single sentence may partially confuse the extraction model",
//! so splitting a sentence into per-target segments before extraction can
//! recover the fragments.
//!
//! The segmenter is rule-based and conservative: it only splits at
//! coordinating connectives that are followed by target-like material (a
//! percent, a year, or a quantity word), never inside parentheses, and it
//! keeps the original character offsets so downstream decoding still maps
//! into the source text.

use gs_text::{pretokenize, Span};
use serde::{Deserialize, Serialize};

/// One segment of an objective: a candidate single-target clause.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Byte span into the original text.
    pub span: Span,
    /// The segment text.
    pub text: String,
}

/// Connectives that may introduce a second target.
const SPLIT_CONNECTIVES: &[&str] = &["and", "while", "alongside", "plus"];

/// Words that indicate the clause after a connective states its own target.
fn is_targetish(token: &str) -> bool {
    let lower = token.to_lowercase();
    lower.chars().all(|c| c.is_ascii_digit())
        || lower == "%"
        || ["lowering", "reducing", "cutting", "a", "increasing", "raising"]
            .contains(&lower.as_str())
}

/// Splits an objective into candidate single-target segments.
///
/// A split happens at a connective token when (a) some target-like token
/// (digit/percent/gerund) appears within the next 6 tokens, and (b) at
/// least one target-like token was already seen before the connective —
/// otherwise the sentence has only one target and stays whole.
pub fn segment_objective(text: &str) -> Vec<Segment> {
    let tokens = pretokenize(text);
    if tokens.is_empty() {
        return Vec::new();
    }
    let mut depth = 0i32; // parenthesis nesting
    let mut seen_target = false;
    let mut cut_points: Vec<usize> = Vec::new(); // token indices where a new segment starts
    for (i, tok) in tokens.iter().enumerate() {
        match tok.text.as_str() {
            "(" => depth += 1,
            ")" => depth = (depth - 1).max(0),
            _ => {}
        }
        if is_targetish(&tok.text) {
            seen_target = true;
        }
        if depth == 0
            && seen_target
            && i > 0
            && SPLIT_CONNECTIVES.contains(&tok.text.to_lowercase().as_str())
        {
            let lookahead = tokens.iter().skip(i + 1).take(6).any(|t| is_targetish(&t.text));
            if lookahead {
                cut_points.push(i);
            }
        }
    }

    let mut segments = Vec::with_capacity(cut_points.len() + 1);
    let mut start_byte = tokens[0].span.start;
    for &cut in &cut_points {
        let end_byte = tokens[cut].span.start;
        if end_byte > start_byte {
            let span = Span::new(start_byte, end_byte);
            segments.push(Segment { span, text: span.slice(text).trim().to_string() });
        }
        start_byte = tokens[cut].span.start;
    }
    let last = Span::new(start_byte, tokens.last().expect("non-empty").span.end);
    segments.push(Segment { span: last, text: last.slice(text).trim().to_string() });
    segments.retain(|s| !s.text.is_empty());
    segments
}

/// Whether segmentation would split this objective (a cheap multi-target
/// detector).
pub fn is_multi_target(text: &str) -> bool {
    segment_objective(text).len() > 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_target_objectives_stay_whole() {
        let text = "Reduce energy consumption by 20% by 2025.";
        let segments = segment_objective(text);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].text, text);
        assert!(!is_multi_target(text));
    }

    #[test]
    fn second_target_is_split_off() {
        let text = "Reduce energy consumption by 20% and water use by 10% by 2030.";
        let segments = segment_objective(text);
        assert_eq!(segments.len(), 2, "{segments:?}");
        assert!(segments[0].text.contains("20%"));
        assert!(segments[1].text.starts_with("and water use"));
        assert!(segments[1].text.contains("10%"));
    }

    #[test]
    fn while_lowering_clause_is_split() {
        let text = "Cut emissions by 40% by 2030 while lowering water use by 12%.";
        let segments = segment_objective(text);
        assert_eq!(segments.len(), 2, "{segments:?}");
        assert!(segments[1].text.starts_with("while lowering"));
    }

    #[test]
    fn coordinated_noun_phrases_without_second_target_stay_whole() {
        // "energy, water and waste" is one qualifier, not two targets.
        let text = "Commitments to double environmental efficiency with new energy, water and waste targets.";
        let segments = segment_objective(text);
        assert_eq!(segments.len(), 1, "{segments:?}");
    }

    #[test]
    fn no_split_before_the_first_target() {
        // The "and" precedes any target-like token.
        let text = "Define sustainability strategies and goals in consultation with stakeholders.";
        assert_eq!(segment_objective(text).len(), 1);
    }

    #[test]
    fn parenthesized_connectives_do_not_split() {
        let text = "Reduce waste by 10% (and audit results) by 2030.";
        let segments = segment_objective(text);
        assert_eq!(segments.len(), 1, "{segments:?}");
    }

    #[test]
    fn segments_cover_offsets_into_source() {
        let text = "Cut A by 5% and B by 9%.";
        for s in segment_objective(text) {
            assert_eq!(s.span.slice(text).trim(), s.text);
        }
    }

    #[test]
    fn empty_text_has_no_segments() {
        assert!(segment_objective("").is_empty());
        assert!(segment_objective("   ").is_empty());
    }
}
