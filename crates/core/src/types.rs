//! Core domain types: sustainability objectives and their coarse,
//! objective-level annotations (paper §2.4).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A coarse, objective-level annotation set: field name -> annotated value.
///
/// This is the only supervision the paper's pipeline needs (Figure 3):
/// `{"Action": "reach", "Amount": "net-zero", "Qualifier": "carbon",
/// "Baseline": "", "Deadline": "2040"}`. Empty values mean the field is not
/// present in the objective.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Annotations {
    fields: BTreeMap<String, String>,
}

impl Annotations {
    /// Creates an empty annotation set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion. Empty values are stored (they carry the
    /// signal "this field is absent") but skipped by the labeling algorithm.
    pub fn with(mut self, key: &str, value: &str) -> Self {
        self.fields.insert(key.to_string(), value.to_string());
        self
    }

    /// Sets a field value.
    pub fn set(&mut self, key: &str, value: &str) {
        self.fields.insert(key.to_string(), value.to_string());
    }

    /// The value of a field, if annotated (may be empty).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// Non-empty (key, value) pairs in deterministic key order.
    pub fn present(&self) -> impl Iterator<Item = (&str, &str)> {
        self.fields.iter().filter(|(_, v)| !v.is_empty()).map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// All (key, value) pairs including empty values.
    pub fn all(&self) -> impl Iterator<Item = (&str, &str)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of non-empty fields.
    pub fn num_present(&self) -> usize {
        self.fields.values().filter(|v| !v.is_empty()).count()
    }

    /// Whether no field has a value.
    pub fn is_empty(&self) -> bool {
        self.num_present() == 0
    }
}

/// A sustainability objective, optionally annotated.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Objective {
    /// Stable identifier within its dataset.
    pub id: u64,
    /// The objective text (one detected text block / sentence).
    pub text: String,
    /// Coarse annotations from domain experts; `None` for unlabeled
    /// production data.
    pub annotations: Option<Annotations>,
    /// Originating company, when known (deployment scenarios).
    pub company: Option<String>,
    /// Originating document, when known.
    pub document: Option<String>,
}

impl Objective {
    /// Creates an unannotated objective.
    pub fn new(id: u64, text: impl Into<String>) -> Self {
        Objective { id, text: text.into(), annotations: None, company: None, document: None }
    }

    /// Creates an annotated training objective.
    pub fn annotated(id: u64, text: impl Into<String>, annotations: Annotations) -> Self {
        Objective {
            id,
            text: text.into(),
            annotations: Some(annotations),
            company: None,
            document: None,
        }
    }

    /// Attaches a company name.
    pub fn with_company(mut self, company: &str) -> Self {
        self.company = Some(company.to_string());
        self
    }

    /// Attaches a document name.
    pub fn with_document(mut self, document: &str) -> Self {
        self.document = Some(document.to_string());
        self
    }
}

/// Details extracted from one objective in production: field name -> text.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractedDetails {
    /// Extracted field values (absent fields are simply missing keys).
    pub fields: BTreeMap<String, String>,
}

impl ExtractedDetails {
    /// Creates an empty extraction result.
    pub fn new() -> Self {
        Self::default()
    }

    /// The extracted value for a field, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// Inserts a field value.
    pub fn set(&mut self, key: &str, value: impl Into<String>) {
        self.fields.insert(key.to_string(), value.into());
    }

    /// Number of extracted fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether nothing was extracted.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Renders as the JSON object format the paper's Figure 3 uses.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.fields).expect("string map serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotations_skip_empty_values_in_present() {
        let a = Annotations::new()
            .with("Action", "reach")
            .with("Baseline", "")
            .with("Deadline", "2040");
        let present: Vec<(&str, &str)> = a.present().collect();
        assert_eq!(present, vec![("Action", "reach"), ("Deadline", "2040")]);
        assert_eq!(a.num_present(), 2);
        assert_eq!(a.get("Baseline"), Some(""));
    }

    #[test]
    fn present_iterates_in_key_order() {
        let a = Annotations::new().with("Deadline", "2040").with("Action", "reach");
        let keys: Vec<&str> = a.present().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["Action", "Deadline"]);
    }

    #[test]
    fn objective_builders() {
        let o = Objective::new(7, "Reduce waste").with_company("C3").with_document("report.pdf");
        assert_eq!(o.company.as_deref(), Some("C3"));
        assert_eq!(o.document.as_deref(), Some("report.pdf"));
        assert!(o.annotations.is_none());
    }

    #[test]
    fn extracted_details_json_shape() {
        let mut d = ExtractedDetails::new();
        d.set("Action", "reach");
        d.set("Deadline", "2040");
        assert_eq!(d.to_json(), r#"{"Action":"reach","Deadline":"2040"}"#);
    }
}
