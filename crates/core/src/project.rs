//! Projection of IOB tags between the word level (where Algorithm 1
//! assigns them) and the subword level (where transformer encoders predict
//! them).
//!
//! Standard fine-tuning convention: the first subword of a word carries the
//! word's tag (a `B-` stays `B-`), remaining subwords of the same word get
//! the `I-` continuation of the same kind (or `O` for `O` words). When
//! collapsing predictions back, the first subword of each word decides.

use gs_text::labels::Tag;

/// Projects word-level tags onto subwords via the `word_index` alignment
/// from an encoding (one entry per subword naming its source word).
///
/// # Panics
/// Panics if `word_index` references a word without a tag.
pub fn project_to_subwords(word_tags: &[Tag], word_index: &[usize]) -> Vec<Tag> {
    let mut out = Vec::with_capacity(word_index.len());
    let mut prev_word: Option<usize> = None;
    for &w in word_index {
        let tag = word_tags[w];
        let first_subword = prev_word != Some(w);
        let projected = if first_subword {
            tag
        } else {
            match tag {
                Tag::O => Tag::O,
                Tag::B(k) | Tag::I(k) => Tag::I(k),
            }
        };
        out.push(projected);
        prev_word = Some(w);
    }
    out
}

/// Collapses subword-level predictions back to word level: the tag of each
/// word is the tag predicted for its first subword.
///
/// `num_words` is the word count of the original token sequence (words that
/// produced no subwords — impossible with our tokenizers, but tolerated —
/// default to `O`).
pub fn collapse_to_words(subword_tags: &[Tag], word_index: &[usize], num_words: usize) -> Vec<Tag> {
    assert_eq!(subword_tags.len(), word_index.len(), "tag/alignment length mismatch");
    let mut out = vec![Tag::O; num_words];
    let mut seen = vec![false; num_words];
    for (tag, &w) in subword_tags.iter().zip(word_index) {
        if !seen[w] {
            seen[w] = true;
            out[w] = *tag;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_continues_entities_over_subwords() {
        // words:  reach  net-zero(as one word "netzero")  carbon
        // tags:   B(0)   B(1)                              O
        // subwords: reach -> [re, ach]; netzero -> [net, zero]; carbon -> [carbon]
        let word_tags = vec![Tag::B(0), Tag::B(1), Tag::O];
        let word_index = vec![0, 0, 1, 1, 2];
        let sub = project_to_subwords(&word_tags, &word_index);
        assert_eq!(sub, vec![Tag::B(0), Tag::I(0), Tag::B(1), Tag::I(1), Tag::O]);
    }

    #[test]
    fn projection_keeps_i_tags_inside() {
        let word_tags = vec![Tag::B(2), Tag::I(2)];
        let word_index = vec![0, 1, 1];
        let sub = project_to_subwords(&word_tags, &word_index);
        assert_eq!(sub, vec![Tag::B(2), Tag::I(2), Tag::I(2)]);
    }

    #[test]
    fn collapse_takes_first_subword_tag() {
        let sub = vec![Tag::B(0), Tag::I(0), Tag::B(1), Tag::I(1), Tag::O];
        let word_index = vec![0, 0, 1, 1, 2];
        let words = collapse_to_words(&sub, &word_index, 3);
        assert_eq!(words, vec![Tag::B(0), Tag::B(1), Tag::O]);
    }

    #[test]
    fn roundtrip_preserves_word_tags() {
        let word_tags = vec![Tag::O, Tag::B(3), Tag::I(3), Tag::O, Tag::B(1)];
        let word_index = vec![0, 1, 1, 1, 2, 3, 3, 4];
        let sub = project_to_subwords(&word_tags, &word_index);
        let back = collapse_to_words(&sub, &word_index, word_tags.len());
        assert_eq!(back, word_tags);
    }

    #[test]
    fn missing_words_default_to_o() {
        let words = collapse_to_words(&[Tag::B(0)], &[0], 3);
        assert_eq!(words, vec![Tag::B(0), Tag::O, Tag::O]);
    }
}
