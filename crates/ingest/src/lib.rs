//! # gs-ingest
//!
//! Report ingestion front-end: parses semi-structured sustainability
//! report text (markdown-ish plain text with `#`/underline headings,
//! bullet/numbered lists, and pipe tables) into a [`Document`] — a flat
//! block list that tiles the source byte-for-byte, plus a section tree
//! with stable ids and human-readable paths like
//! `"Report > Climate > Targets"`.
//!
//! The crate is the first stage of the full-report pipeline: parse →
//! [`Document::sentence_units`] (block-level sentence segmentation with
//! byte offsets back to the source, one unit per table body cell keyed by
//! its column header) → detection → extraction → store, with
//! [`SectionProvenance`] threaded through every stage.
//!
//! Guarantees (pinned by the crate's property and fuzz suites):
//!
//! - [`parse`] never panics, on any byte sequence.
//! - Block spans partition `[0, source_len)` exactly.
//! - Section ids depend only on the ancestor title chain and occurrence
//!   index, never on offsets, syntax, or body content.
//! - [`render`] ∘ [`parse`] is a fixed point on rendered text.

#![warn(missing_docs)]

mod model;
mod parse;
mod render;

pub use model::{
    Block, BlockKind, Document, Section, SectionProvenance, SentenceUnit, TableBlock, TableCell,
    TableRow,
};
pub use parse::parse;
pub use render::render;

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = "\
# Annual Report

Intro paragraph. Second sentence.

## Climate

### Targets

- Reduce emissions 50%
- Improve recycling rates.

| Indicator | Target |
| --- | --- |
| Scope 1 | Cut 40% by 2030. |
| Scope 2 | 100% renewables |

Social
------

More text here.
";

    #[test]
    fn builds_expected_section_tree_with_paths() {
        let doc = parse(REPORT);
        let paths: Vec<&str> = doc.sections.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "Report",
                "Report > Annual Report",
                "Report > Annual Report > Climate",
                "Report > Annual Report > Climate > Targets",
                "Report > Annual Report > Social",
            ]
        );
        let social = &doc.sections[4];
        assert_eq!(social.level, 2, "setext dashes underline a level-2 heading");
        assert_eq!(social.parent, Some(1), "level 2 pops back to Annual Report");
        assert_eq!(doc.sections[3].parent, Some(2), "Targets nests under Climate");
    }

    #[test]
    fn blocks_tile_the_source_exactly() {
        let doc = parse(REPORT);
        let mut cursor = 0;
        for block in &doc.blocks {
            assert_eq!(block.span.start, cursor, "gap or overlap before {:?}", block.kind);
            cursor = block.span.end;
        }
        assert_eq!(cursor, REPORT.len());
    }

    #[test]
    fn section_ids_are_stable_across_syntax_and_content_edits() {
        let doc = parse(REPORT);
        let original = doc.section_by_id(&doc.sections[3].id).expect("targets").id.clone();
        // Same heading chain, different syntax (Climate as a setext
        // heading), different body, different offsets: id must not move.
        let edited =
            "# Annual Report\n\nnew intro\n\nClimate\n-------\n\n### Targets\n\nother body\n";
        let doc2 = parse(edited);
        let targets2 =
            doc2.sections.iter().find(|s| s.title == "Targets").expect("targets section");
        assert_eq!(targets2.id, original);
        assert_eq!(targets2.path, "Report > Annual Report > Climate > Targets");
    }

    #[test]
    fn repeated_titles_get_distinct_ids() {
        let doc = parse("# A\n\n## Sub\n\ntext\n\n## Sub\n\nmore\n");
        let subs: Vec<&Section> = doc.sections.iter().filter(|s| s.title == "Sub").collect();
        assert_eq!(subs.len(), 2);
        assert_ne!(subs[0].id, subs[1].id);
    }

    #[test]
    fn table_cells_key_by_header() {
        let doc = parse(REPORT);
        let table = doc.blocks.iter().find_map(|b| b.table.as_ref()).expect("table block");
        assert_eq!(table.header_for(0), Some("Indicator"));
        assert_eq!(table.header_for(1), Some("Target"));
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0].cells[1].text, "Cut 40% by 2030.");
        assert_eq!(table.rows[0].cells[1].span.slice(REPORT), "Cut 40% by 2030.");
    }

    #[test]
    fn escaped_pipes_become_literal_cell_text() {
        let doc = parse("| a \\| b | c\\\\d |\n");
        let table = doc.blocks[0].table.as_ref().expect("table");
        assert_eq!(table.rows[0].cells[0].text, "a | b");
        assert_eq!(table.rows[0].cells[1].text, "c\\d");
    }

    #[test]
    fn sentence_units_segment_per_block_and_per_cell() {
        let doc = parse(REPORT);
        let units = doc.sentence_units(REPORT);
        let texts: Vec<&str> = units.iter().map(|u| u.text.as_str()).collect();
        // The unpunctuated bullet stays its own unit — the fix for the
        // flat-text fusion pinned in gs_text::sentence_spans tests.
        assert!(texts.contains(&"Reduce emissions 50%"));
        assert!(texts.contains(&"Improve recycling rates."));
        assert!(texts.contains(&"Intro paragraph."));
        assert!(texts.contains(&"Second sentence."));
        let cell = units.iter().find(|u| u.text == "Cut 40% by 2030.").expect("table cell unit");
        assert_eq!(cell.table_header.as_deref(), Some("Target"));
        assert_eq!(cell.provenance.block_kind, "table_cell");
        // Offsets always map back to the source bytes.
        for unit in &units {
            assert_eq!(unit.provenance.byte_range, (unit.span.start, unit.span.end));
            assert!(!unit.span.slice(REPORT).is_empty());
        }
        let bullet = units.iter().find(|u| u.text == "Reduce emissions 50%").expect("bullet");
        assert_eq!(bullet.provenance.path, "Report > Annual Report > Climate > Targets");
        assert_eq!(bullet.provenance.block_kind, "list_item");
    }

    #[test]
    fn numbered_lists_and_unicode_bullets_parse_as_items() {
        let doc = parse("1. First goal.\n2) Second goal.\n\u{2022} Third goal.\n");
        let kinds: Vec<_> = doc.blocks.iter().map(|b| b.kind).collect();
        assert_eq!(kinds, vec![BlockKind::ListItem; 3]);
        assert_eq!(doc.blocks[1].text, "Second goal.");
    }

    #[test]
    fn rule_under_text_is_a_setext_heading_but_standalone_is_a_rule() {
        let doc = parse("Title\n=====\n\n---\n\nbody\n");
        assert_eq!(doc.blocks[0].kind, BlockKind::Heading { level: 1 });
        assert!(doc.blocks.iter().any(|b| b.kind == BlockKind::Rule));
    }

    #[test]
    fn render_is_canonical_and_reparses_identically() {
        let doc = parse(REPORT);
        let rendered = render(&doc);
        let doc2 = parse(&rendered);
        assert_eq!(render(&doc2), rendered, "render∘parse is a fixed point");
        assert_eq!(
            doc2.sections.iter().map(|s| s.id.as_str()).collect::<Vec<_>>(),
            doc.sections.iter().map(|s| s.id.as_str()).collect::<Vec<_>>(),
            "section ids survive re-rendering"
        );
    }

    #[test]
    fn empty_input_parses_to_empty_document() {
        let doc = parse("");
        assert_eq!(doc.blocks.len(), 0);
        assert_eq!(doc.num_sections(), 0);
        assert_eq!(doc.sections[0].path, "Report");
        assert!(doc.sentence_units("").is_empty());
        assert_eq!(render(&doc), "");
    }
}
