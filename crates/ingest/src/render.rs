//! Canonical renderer: turns a parsed [`Document`] back into report text.
//!
//! The output is a *normal form*: headings are always ATX (`##`-style),
//! list items always use `- `, table cells are trimmed and re-escaped,
//! blank runs collapse to the single blank line separating blocks, and
//! rules render as `---`. Rendering then re-parsing a rendered document is
//! a fixed point (`tests/parser_properties.rs::render_parse_is_fixed_point`),
//! which is what makes the normal form well-defined.

use crate::model::{Block, BlockKind, Document, TableBlock, TableCell};

/// Renders one table cell with `|` and `\` re-escaped.
fn escape_cell(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\|"),
            c => out.push(c),
        }
    }
    out
}

fn render_row(cells: &[TableCell], out: &mut String) {
    out.push('|');
    for cell in cells {
        out.push(' ');
        out.push_str(&escape_cell(&cell.text));
        out.push_str(" |");
    }
}

fn render_table(table: &TableBlock, out: &mut String) {
    let mut lines: Vec<String> = Vec::new();
    if let Some(header) = &table.header {
        let mut line = String::new();
        render_row(header, &mut line);
        lines.push(line);
        let mut sep = String::from("|");
        for _ in header {
            sep.push_str(" --- |");
        }
        lines.push(sep);
    }
    for row in &table.rows {
        let mut line = String::new();
        render_row(&row.cells, &mut line);
        lines.push(line);
    }
    out.push_str(&lines.join("\n"));
}

fn render_block(block: &Block, out: &mut String) {
    match &block.kind {
        BlockKind::Heading { level } => {
            for _ in 0..*level {
                out.push('#');
            }
            if !block.text.is_empty() {
                out.push(' ');
                out.push_str(&block.text);
            }
        }
        BlockKind::Paragraph => out.push_str(&block.text),
        BlockKind::ListItem => {
            out.push('-');
            out.push(' ');
            out.push_str(&block.text);
        }
        BlockKind::Table => {
            if let Some(table) = &block.table {
                render_table(table, out);
            }
        }
        BlockKind::Rule => out.push_str("---"),
        BlockKind::Blank => {}
    }
}

/// Renders `doc` to canonical report text. Blank blocks are dropped; the
/// remaining blocks are separated by exactly one blank line, with no
/// trailing newline.
pub fn render(doc: &Document) -> String {
    let mut out = String::new();
    for block in &doc.blocks {
        if matches!(block.kind, BlockKind::Blank) {
            continue;
        }
        if !out.is_empty() {
            out.push_str("\n\n");
        }
        render_block(block, &mut out);
    }
    out
}
