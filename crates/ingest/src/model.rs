//! The parsed document model: a flat, byte-tiling block list plus a
//! section tree with stable ids and human-readable paths.
//!
//! ## Invariants (pinned by `tests/parser_properties.rs`)
//!
//! - **Tiling:** the blocks' `span`s partition `[0, source_len)` exactly —
//!   every source byte belongs to exactly one block, in order.
//! - **Path prefix consistency:** a section's `path` is its parent's path
//!   plus `" > "` plus its own title; depth equals the number of `" > "`
//!   separators.
//! - **Section-id stability:** `id` is a hash of the ancestor title chain
//!   and the section's occurrence index among same-titled siblings — it
//!   does not depend on byte offsets, body content, blank lines, or
//!   heading syntax (ATX `##` vs setext underline), so ids survive
//!   re-rendering, boilerplate edits, and content growth above/below.

use gs_text::Span;

/// What a flat block is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// A section heading (`#`-prefixed or setext-underlined); `level` is
    /// 1-based nesting depth, capped at 6.
    Heading {
        /// 1-based heading level.
        level: u8,
    },
    /// A run of plain text lines.
    Paragraph,
    /// One bullet (`-`, `*`, `•`) or numbered (`1.` / `1)`) list item.
    ListItem,
    /// A run of pipe-table lines (`| a | b |`), including any separator.
    Table,
    /// A run of blank lines.
    Blank,
    /// A horizontal rule (`---` / `===` not under a text line).
    Rule,
}

impl BlockKind {
    /// Short stable label used in provenance records.
    pub fn label(&self) -> &'static str {
        match self {
            BlockKind::Heading { .. } => "heading",
            BlockKind::Paragraph => "paragraph",
            BlockKind::ListItem => "list_item",
            BlockKind::Table => "table",
            BlockKind::Blank => "blank",
            BlockKind::Rule => "rule",
        }
    }
}

/// One cell of a pipe table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableCell {
    /// Unescaped, whitespace-trimmed cell text (`\|` → `|`, `\\` → `\`).
    pub text: String,
    /// Byte range of the trimmed raw cell content in the source.
    pub span: Span,
}

/// One table row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableRow {
    /// Cells left to right. Ragged rows keep their own length; header
    /// keying pads or ignores as needed.
    pub cells: Vec<TableCell>,
}

/// A parsed pipe table: optional header row plus body rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TableBlock {
    /// Header cells when the second source row was a `|---|` separator.
    pub header: Option<Vec<TableCell>>,
    /// Body rows (the separator row is structural and not kept).
    pub rows: Vec<TableRow>,
}

impl TableBlock {
    /// The header text for a 0-based column, if a header exists and covers
    /// that column with non-empty text.
    pub fn header_for(&self, col: usize) -> Option<&str> {
        let cell = self.header.as_ref()?.get(col)?;
        if cell.text.is_empty() {
            None
        } else {
            Some(&cell.text)
        }
    }
}

/// One flat block of the document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Structural kind.
    pub kind: BlockKind,
    /// Exact source byte range, including trailing newline(s) — the
    /// tiling unit.
    pub span: Span,
    /// Content region within `span`: after list markers / heading `#`s,
    /// before the trailing newline. Equals `span` for tables.
    pub content: Span,
    /// Canonical text: heading title, whitespace-joined list-item text,
    /// trimmed paragraph lines joined with `\n`; empty for tables, blank
    /// runs, and rules.
    pub text: String,
    /// Index into [`Document::sections`] of the owning section.
    pub section: u32,
    /// Parsed cells for `Table` blocks.
    pub table: Option<TableBlock>,
}

/// One node of the section tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Stable 16-hex id (see module docs for the stability contract).
    pub id: String,
    /// Heading title (`"Report"` for the root).
    pub title: String,
    /// Nesting level: 0 for the root, matching the heading level below it.
    pub level: u8,
    /// Parent index in [`Document::sections`]; `None` for the root.
    pub parent: Option<u32>,
    /// Human-readable path, e.g. `"Report > Climate > Targets"`.
    pub path: String,
}

/// A parsed report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Document {
    /// Byte length of the source text the blocks tile.
    pub source_len: usize,
    /// Sections in document order; index 0 is always the root.
    pub sections: Vec<Section>,
    /// Flat blocks tiling the source.
    pub blocks: Vec<Block>,
}

/// Where an extracted sentence came from — threaded from ingestion through
/// detection and extraction into the objective store and API responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SectionProvenance {
    /// Stable section id.
    pub section_id: String,
    /// Human-readable section path (`"Report > Climate > Targets"`).
    pub path: String,
    /// Block kind label (`"paragraph"`, `"list_item"`, `"table_cell"`…).
    pub block_kind: String,
    /// Byte range of the sentence in the source report.
    pub byte_range: (usize, usize),
}

/// One detection/extraction candidate: a sentence (or table cell) with its
/// source offsets and provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SentenceUnit {
    /// Whitespace-normalized sentence text (cells are also unescaped).
    pub text: String,
    /// Byte range of the sentence in the source.
    pub span: Span,
    /// Section/block provenance.
    pub provenance: SectionProvenance,
    /// Column header for table-cell units, when the table has one.
    pub table_header: Option<String>,
}

impl Document {
    /// Child section indexes of `section`, in document order.
    pub fn children(&self, section: usize) -> Vec<usize> {
        self.sections
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent == Some(section as u32))
            .map(|(i, _)| i)
            .collect()
    }

    /// Looks up a section by id.
    pub fn section_by_id(&self, id: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.id == id)
    }

    /// Total number of non-root sections.
    pub fn num_sections(&self) -> usize {
        self.sections.len().saturating_sub(1)
    }

    /// Block-level sentence segmentation with provenance: paragraphs and
    /// list items are split by [`gs_text::sentence_spans`] *within their
    /// own block* (so an unpunctuated bullet can never fuse with its
    /// neighbor), and each non-empty table body cell becomes one unit
    /// keyed by its column header. Headings, blank runs, rules, and table
    /// headers yield no units.
    ///
    /// `source` must be the exact text this document was parsed from.
    pub fn sentence_units(&self, source: &str) -> Vec<SentenceUnit> {
        let mut out = Vec::new();
        for block in &self.blocks {
            let section = &self.sections[block.section as usize];
            let provenance = |kind: &str, span: Span| SectionProvenance {
                section_id: section.id.clone(),
                path: section.path.clone(),
                block_kind: kind.to_string(),
                byte_range: (span.start, span.end),
            };
            match block.kind {
                BlockKind::Paragraph | BlockKind::ListItem => {
                    let region = block.content.slice(source);
                    for rel in gs_text::sentence_spans(region) {
                        let span = Span::new(
                            block.content.start + rel.start,
                            block.content.start + rel.end,
                        );
                        out.push(SentenceUnit {
                            text: normalize_ws(span.slice(source)),
                            span,
                            provenance: provenance(block.kind.label(), span),
                            table_header: None,
                        });
                    }
                }
                BlockKind::Table => {
                    let Some(table) = &block.table else { continue };
                    for row in &table.rows {
                        for (col, cell) in row.cells.iter().enumerate() {
                            if cell.text.is_empty() {
                                continue;
                            }
                            out.push(SentenceUnit {
                                text: normalize_ws(&cell.text),
                                span: cell.span,
                                provenance: provenance("table_cell", cell.span),
                                table_header: table.header_for(col).map(str::to_string),
                            });
                        }
                    }
                }
                BlockKind::Heading { .. } | BlockKind::Blank | BlockKind::Rule => {}
            }
        }
        out
    }
}

/// Collapses all whitespace runs to single spaces and trims.
pub(crate) fn normalize_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for part in s.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(part);
    }
    out
}

/// FNV-1a over the ancestor chain that defines a section identity.
pub(crate) fn section_id(parent_id: &str, title: &str, occurrence: usize) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut write = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    write(parent_id.as_bytes());
    write(&[0xff]);
    write(title.as_bytes());
    write(&[0xff]);
    write(&(occurrence as u64).to_le_bytes());
    format!("{h:016x}")
}
