//! The report parser: a single line-classifying pass that tiles the source
//! into blocks and threads a heading stack into the section tree.
//!
//! ## Grammar accepted
//!
//! - **ATX headings:** 1–6 `#`s at the start of a (possibly indented)
//!   line, followed by a space or end of line; the level is the `#` count.
//! - **Setext headings:** a single text line underlined by a line of `=`
//!   (level 1) or `-` (level 2), at least two characters long.
//! - **List items:** `-`, `*`, or `•` plus a space, or 1–3 digits plus
//!   `.`/`)` plus a space; one line per item (no lazy continuation).
//! - **Pipe tables:** consecutive lines whose trimmed form starts with
//!   `|`; cells split on unescaped `|` (`\|` escapes a literal pipe,
//!   `\\` a backslash). A second row of `-`/`:` cells marks row one as
//!   the header.
//! - **Rules:** `---`/`===` lines *not* under a text line.
//! - Everything else accumulates into paragraphs; blank-line runs are
//!   kept as explicit blocks so the block spans tile the source exactly.
//!
//! The parser never panics: any byte sequence (including invalid-looking
//! markup, pathological nesting, and ragged tables) parses to *something*
//! (`tests/fuzz_never_panic.rs`).

use crate::model::{
    normalize_ws, section_id, Block, BlockKind, Document, Section, TableBlock, TableCell, TableRow,
};
use gs_text::Span;
use std::collections::HashMap;

/// One source line: `span` includes the trailing newline (if present),
/// `text` excludes it.
struct Line<'a> {
    span: Span,
    text: &'a str,
}

fn split_lines(source: &str) -> Vec<Line<'_>> {
    let mut out = Vec::new();
    let mut start = 0;
    let bytes = source.as_bytes();
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'\n' {
            out.push(Line { span: Span::new(start, i + 1), text: &source[start..i] });
            start = i + 1;
        }
    }
    if start < source.len() {
        out.push(Line { span: Span::new(start, source.len()), text: &source[start..] });
    }
    out
}

fn is_blank(line: &str) -> bool {
    line.trim().is_empty()
}

fn is_table_line(line: &str) -> bool {
    line.trim_start().starts_with('|')
}

/// `(level, title span)` for an ATX heading line, if it is one.
fn atx_heading(line: &str, line_start: usize) -> Option<(u8, Span)> {
    let indent = line.len() - line.trim_start().len();
    let rest = &line[indent..];
    let hashes = rest.bytes().take_while(|b| *b == b'#').count();
    if hashes == 0 || hashes > 6 {
        return None;
    }
    let after = &rest[hashes..];
    let title_rel = if after.is_empty() {
        hashes
    } else if after.starts_with(' ') || after.starts_with('\t') {
        hashes + 1
    } else {
        return None;
    };
    let title = line[indent + title_rel..].trim();
    let tstart = line_start + indent + title_rel;
    // Locate the trimmed title within the remainder for an exact span.
    let lead = line[indent + title_rel..].len() - line[indent + title_rel..].trim_start().len();
    Some((hashes as u8, Span::new(tstart + lead, tstart + lead + title.len())))
}

/// Setext underline: all `=` (level 1) or all `-` (level 2), len >= 2.
fn underline_level(line: &str) -> Option<u8> {
    let t = line.trim();
    if t.len() >= 2 && t.bytes().all(|b| b == b'=') {
        Some(1)
    } else if t.len() >= 2 && t.bytes().all(|b| b == b'-') {
        Some(2)
    } else {
        None
    }
}

/// Byte length of a list marker (including its trailing space) at the
/// start of `trimmed`, if the line is a list item.
fn list_marker_len(trimmed: &str) -> Option<usize> {
    for bullet in ["- ", "* ", "\u{2022} "] {
        if trimmed.starts_with(bullet) {
            return Some(bullet.len());
        }
    }
    let digits = trimmed.bytes().take_while(u8::is_ascii_digit).count();
    if (1..=3).contains(&digits) {
        let rest = &trimmed[digits..];
        if (rest.starts_with(". ") || rest.starts_with(") ")) && rest.len() > 2 {
            return Some(digits + 2);
        }
    }
    None
}

fn is_list_line(line: &str) -> bool {
    list_marker_len(line.trim_start()).is_some()
}

/// A line that can extend a paragraph: not blank and not the start of any
/// other construct.
fn is_paragraph_text(line: &str) -> bool {
    !is_blank(line)
        && !is_table_line(line)
        && !is_list_line(line)
        && atx_heading(line, 0).is_none()
        && underline_level(line).is_none()
}

/// Splits one table line into trimmed raw-cell spans plus unescaped text.
/// `content` is the line text, `base` its absolute byte offset.
fn split_row(content: &str, base: usize) -> Vec<TableCell> {
    let indent = content.len() - content.trim_start().len();
    let trimmed = content.trim_end();
    let mut cells = Vec::new();
    // Consume the leading `|`.
    let pos = indent + 1;
    let mut cell_start = pos;
    let mut pending = String::new();
    let mut chars = trimmed[pos.min(trimmed.len())..].char_indices().peekable();
    let mut trailing_sep = trimmed.len() == pos; // a bare "|" has no cells
    let push_cell = |cells: &mut Vec<TableCell>, raw_start: usize, raw_end: usize, text: &str| {
        let raw = &content[raw_start..raw_end];
        let lead = raw.len() - raw.trim_start().len();
        let tail = raw.trim_end().len();
        let (s, e) = if lead <= tail {
            (raw_start + lead, raw_start + tail)
        } else {
            (raw_start, raw_start)
        };
        cells
            .push(TableCell { text: text.trim().to_string(), span: Span::new(base + s, base + e) });
    };
    while let Some((i, c)) = chars.next() {
        let abs = pos + i;
        match c {
            '\\' => match chars.peek().copied() {
                Some((_, c2)) if c2 == '|' || c2 == '\\' => {
                    pending.push(c2);
                    chars.next();
                }
                _ => pending.push('\\'),
            },
            '|' => {
                push_cell(&mut cells, cell_start, abs, &pending);
                pending.clear();
                cell_start = abs + 1;
                trailing_sep = chars.peek().is_none();
            }
            c => pending.push(c),
        }
    }
    if !trailing_sep {
        push_cell(&mut cells, cell_start, trimmed.len(), &pending);
    }
    cells
}

/// A separator row: every cell is made of `-` and `:` (at least one `-`).
fn is_separator_row(cells: &[TableCell]) -> bool {
    !cells.is_empty()
        && cells.iter().all(|c| {
            !c.text.is_empty()
                && c.text.contains('-')
                && c.text.bytes().all(|b| b == b'-' || b == b':' || b == b' ')
        })
}

fn parse_table(lines: &[Line<'_>]) -> TableBlock {
    let mut rows: Vec<TableRow> =
        lines.iter().map(|l| TableRow { cells: split_row(l.text, l.span.start) }).collect();
    if rows.len() >= 2 && is_separator_row(&rows[1].cells) {
        let header = rows.remove(0);
        rows.remove(0); // the structural `|---|` separator row
        TableBlock { header: Some(header.cells), rows }
    } else {
        TableBlock { header: None, rows }
    }
}

/// Tracks the open-section stack and mints stable ids.
struct SectionBuilder {
    sections: Vec<Section>,
    stack: Vec<u32>,
    occurrences: HashMap<(u32, String), usize>,
}

impl SectionBuilder {
    fn new() -> Self {
        SectionBuilder {
            sections: vec![Section {
                id: section_id("", "Report", 0),
                title: "Report".to_string(),
                level: 0,
                parent: None,
                path: "Report".to_string(),
            }],
            stack: vec![0],
            occurrences: HashMap::new(),
        }
    }

    fn current(&self) -> u32 {
        *self.stack.last().expect("root never popped")
    }

    /// Opens a section for a heading of `level`, returning its index.
    fn open(&mut self, level: u8, title: &str) -> u32 {
        while self.stack.len() > 1 {
            let top = *self.stack.last().expect("stack non-empty");
            if self.sections[top as usize].level >= level {
                self.stack.pop();
            } else {
                break;
            }
        }
        let parent = self.current();
        let occ = self
            .occurrences
            .entry((parent, title.to_string()))
            .and_modify(|n| *n += 1)
            .or_insert(0);
        let parent_section = &self.sections[parent as usize];
        let idx = self.sections.len() as u32;
        self.sections.push(Section {
            id: section_id(&parent_section.id, title, *occ),
            title: title.to_string(),
            level,
            parent: Some(parent),
            path: format!("{} > {}", parent_section.path, title),
        });
        self.stack.push(idx);
        idx
    }
}

/// Parses `source` into a [`Document`]. Total work is linear in the input;
/// the parser never panics (see `tests/fuzz_never_panic.rs`).
pub fn parse(source: &str) -> Document {
    let _span = gs_obs::span("ingest.parse");
    let lines = split_lines(source);
    let mut sections = SectionBuilder::new();
    let mut blocks: Vec<Block> = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = &lines[i];
        if is_blank(line.text) {
            let start = i;
            while i < lines.len() && is_blank(lines[i].text) {
                i += 1;
            }
            let span = Span::new(lines[start].span.start, lines[i - 1].span.end);
            blocks.push(Block {
                kind: BlockKind::Blank,
                span,
                content: Span::new(span.start, span.start),
                text: String::new(),
                section: sections.current(),
                table: None,
            });
            continue;
        }
        if is_table_line(line.text) {
            let start = i;
            while i < lines.len() && is_table_line(lines[i].text) {
                i += 1;
            }
            let span = Span::new(lines[start].span.start, lines[i - 1].span.end);
            blocks.push(Block {
                kind: BlockKind::Table,
                span,
                content: span,
                text: String::new(),
                section: sections.current(),
                table: Some(parse_table(&lines[start..i])),
            });
            continue;
        }
        if let Some((level, title_span)) = atx_heading(line.text, line.span.start) {
            let title = title_span.slice(source);
            let section = sections.open(level, title);
            blocks.push(Block {
                kind: BlockKind::Heading { level },
                span: line.span,
                content: title_span,
                text: title.to_string(),
                section,
                table: None,
            });
            i += 1;
            continue;
        }
        if is_list_line(line.text) {
            let trimmed_start = line.text.len() - line.text.trim_start().len();
            let marker = list_marker_len(line.text.trim_start()).unwrap_or(0);
            let content_start = line.span.start + trimmed_start + marker;
            let content_end = line.span.start + line.text.trim_end().len();
            let content = if content_start <= content_end {
                Span::new(content_start, content_end)
            } else {
                Span::new(content_start, content_start)
            };
            blocks.push(Block {
                kind: BlockKind::ListItem,
                span: line.span,
                content,
                text: normalize_ws(content.slice(source)),
                section: sections.current(),
                table: None,
            });
            i += 1;
            continue;
        }
        if underline_level(line.text).is_some() {
            // An underline with no text line above it (text lines bind to
            // it in the setext branch below) is a horizontal rule.
            blocks.push(Block {
                kind: BlockKind::Rule,
                span: line.span,
                content: Span::new(line.span.start, line.span.start),
                text: String::new(),
                section: sections.current(),
                table: None,
            });
            i += 1;
            continue;
        }
        // Plain text: setext heading if the next line underlines it,
        // otherwise a paragraph run.
        if i + 1 < lines.len() {
            if let Some(level) = underline_level(lines[i + 1].text) {
                let title = line.text.trim();
                let lead = line.text.len() - line.text.trim_start().len();
                let title_span =
                    Span::new(line.span.start + lead, line.span.start + lead + title.len());
                let section = sections.open(level, title);
                blocks.push(Block {
                    kind: BlockKind::Heading { level },
                    span: Span::new(line.span.start, lines[i + 1].span.end),
                    content: title_span,
                    text: title.to_string(),
                    section,
                    table: None,
                });
                i += 2;
                continue;
            }
        }
        let start = i;
        i += 1;
        while i < lines.len()
            && is_paragraph_text(lines[i].text)
            && !(i + 1 < lines.len() && underline_level(lines[i + 1].text).is_some())
        {
            i += 1;
        }
        let span = Span::new(lines[start].span.start, lines[i - 1].span.end);
        let first = &lines[start];
        let lead = first.text.len() - first.text.trim_start().len();
        let last = &lines[i - 1];
        let content =
            Span::new(first.span.start + lead, last.span.start + last.text.trim_end().len());
        let text = lines[start..i].iter().map(|l| l.text.trim()).collect::<Vec<_>>().join("\n");
        blocks.push(Block {
            kind: BlockKind::Paragraph,
            span,
            content,
            text,
            section: sections.current(),
            table: None,
        });
    }
    let doc = Document { source_len: source.len(), sections: sections.sections, blocks };
    if gs_obs::enabled() {
        gs_obs::counter("ingest.bytes", source.len() as u64);
        gs_obs::counter("ingest.blocks", doc.blocks.len() as u64);
        gs_obs::counter("ingest.sections", doc.num_sections() as u64);
    }
    doc
}
