//! Property tests for the ingest parser: randomized documents (seeded,
//! dependency-free generator) checked against the crate's structural
//! invariants. These are the contracts the pipeline's provenance
//! threading relies on — byte ranges that tile, paths that nest, ids that
//! survive re-rendering.

use gs_ingest::{parse, render, BlockKind, Document};

/// Tiny deterministic RNG (xorshift*), so these properties run unchanged
/// in environments without a real `rand` crate.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.below(options.len())]
    }
}

const WORDS: &[&str] = &[
    "emissions",
    "reduce",
    "2030",
    "scope",
    "naïve",
    "Ωmega",
    "café",
    "50%",
    "net-zero",
    "—",
    "targets",
    "π",
];

const TITLES: &[&str] = &["Climate", "Energy", "Überblick", "Social", "Governance", "水資源"];

fn sentence(rng: &mut Rng) -> String {
    let n = 2 + rng.below(6);
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(rng.pick(WORDS));
    }
    if rng.below(4) > 0 {
        s.push('.');
    }
    s
}

/// One random document: a mix of every construct the grammar accepts.
fn random_document(rng: &mut Rng) -> String {
    let mut out = String::new();
    let pieces = 3 + rng.below(12);
    for _ in 0..pieces {
        match rng.below(7) {
            0 => {
                let level = 1 + rng.below(6);
                out.push_str(&"#".repeat(level));
                out.push(' ');
                out.push_str(rng.pick(TITLES));
                out.push('\n');
            }
            1 => {
                // Setext heading: text line plus underline.
                let title = rng.pick(TITLES);
                out.push_str(title);
                out.push('\n');
                let ch = if rng.below(2) == 0 { "=" } else { "-" };
                out.push_str(&ch.repeat(2 + rng.below(8)));
                out.push('\n');
            }
            2 => {
                for _ in 0..1 + rng.below(3) {
                    out.push_str(&sentence(rng));
                    out.push(' ');
                    out.push_str(&sentence(rng));
                    out.push('\n');
                }
            }
            3 => {
                for _ in 0..1 + rng.below(4) {
                    out.push_str(rng.pick(&["- ", "* ", "1. ", "12) "]));
                    out.push_str(&sentence(rng));
                    out.push('\n');
                }
            }
            4 => {
                let cols = 1 + rng.below(4);
                let with_header = rng.below(2) == 0;
                let header: Vec<&str> =
                    (0..cols).map(|_| rng.pick(&["Indicator", "Target", "", "Basis"])).collect();
                if with_header {
                    out.push('|');
                    for h in &header {
                        out.push_str(&format!(" {h} |"));
                    }
                    out.push('\n');
                    out.push('|');
                    for _ in 0..cols {
                        out.push_str(" --- |");
                    }
                    out.push('\n');
                }
                for _ in 0..1 + rng.below(3) {
                    out.push('|');
                    // Ragged on purpose: rows may have a different width.
                    for _ in 0..1 + rng.below(5) {
                        let cell = match rng.below(4) {
                            0 => String::from("a \\| b"),
                            1 => String::new(),
                            _ => sentence(rng),
                        };
                        out.push_str(&format!(" {cell} |"));
                    }
                    out.push('\n');
                }
            }
            5 => {
                out.push_str(&"-".repeat(3 + rng.below(5)));
                out.push('\n');
            }
            _ => {
                for _ in 0..1 + rng.below(3) {
                    out.push('\n');
                }
            }
        }
        if rng.below(3) > 0 {
            out.push('\n');
        }
    }
    if rng.below(5) == 0 {
        // Sometimes no trailing newline at all.
        while out.ends_with('\n') {
            out.pop();
        }
    }
    out
}

const CASES: usize = 300;

fn check_tiling(doc: &Document, source: &str) {
    assert_eq!(doc.source_len, source.len());
    let mut cursor = 0usize;
    for block in &doc.blocks {
        assert_eq!(block.span.start, cursor, "gap or overlap before {:?}", block.kind);
        assert!(block.span.end >= block.span.start);
        assert!(block.content.start >= block.span.start && block.content.end <= block.span.end);
        cursor = block.span.end;
    }
    assert_eq!(cursor, source.len(), "blocks must cover the full source");
    if source.is_empty() {
        assert!(doc.blocks.is_empty());
    }
}

fn check_section_tree(doc: &Document) {
    assert!(!doc.sections.is_empty(), "root section always exists");
    assert_eq!(doc.sections[0].path, "Report");
    assert_eq!(doc.sections[0].level, 0);
    assert!(doc.sections[0].parent.is_none());
    let mut seen_ids = std::collections::HashSet::new();
    for (i, section) in doc.sections.iter().enumerate() {
        assert!(seen_ids.insert(section.id.clone()), "duplicate id {}", section.id);
        assert_eq!(section.id.len(), 16);
        if let Some(parent) = section.parent {
            let parent = &doc.sections[parent as usize];
            assert_eq!(
                section.path,
                format!("{} > {}", parent.path, section.title),
                "path is parent path + title"
            );
            assert!(section.level > parent.level, "child nests strictly deeper");
        } else {
            assert_eq!(i, 0, "only the root lacks a parent");
        }
        let depth = section.path.matches(" > ").count();
        let mut ancestors = 0usize;
        let mut cur = section.parent;
        while let Some(p) = cur {
            ancestors += 1;
            cur = doc.sections[p as usize].parent;
        }
        assert_eq!(depth, ancestors, "path separators count the ancestor chain");
    }
    for block in &doc.blocks {
        assert!((block.section as usize) < doc.sections.len());
    }
}

fn check_sentence_units(doc: &Document, source: &str) {
    for unit in doc.sentence_units(source) {
        assert!(source.is_char_boundary(unit.span.start), "start on a char boundary");
        assert!(source.is_char_boundary(unit.span.end), "end on a char boundary");
        assert!(unit.span.end <= source.len());
        let raw = &source[unit.span.start..unit.span.end];
        // The unit's normalized text is rebuilt from exactly these bytes
        // (table cells additionally unescape \| and \\).
        if unit.provenance.block_kind != "table_cell" {
            let renorm: Vec<&str> = raw.split_whitespace().collect();
            assert_eq!(unit.text, renorm.join(" "), "text matches its span");
        } else {
            assert!(!unit.text.is_empty(), "empty cells yield no units");
        }
        assert!(!unit.provenance.section_id.is_empty());
        assert!(unit.provenance.path.starts_with("Report"));
    }
}

#[test]
fn every_byte_belongs_to_exactly_one_block() {
    let mut rng = Rng::new(0xb10c);
    for case in 0..CASES {
        let source = random_document(&mut rng);
        let doc = parse(&source);
        check_tiling(&doc, &source);
        let _ = case;
    }
}

#[test]
fn section_paths_are_prefix_consistent_with_tree_depth() {
    let mut rng = Rng::new(0x5ec7);
    for _ in 0..CASES {
        let source = random_document(&mut rng);
        check_section_tree(&parse(&source));
    }
}

#[test]
fn segmentation_offsets_always_slice_valid_utf8() {
    let mut rng = Rng::new(0x0ff5);
    for _ in 0..CASES {
        let source = random_document(&mut rng);
        check_sentence_units(&parse(&source), &source);
    }
}

#[test]
fn render_then_parse_is_a_fixed_point() {
    let mut rng = Rng::new(0xf1fe);
    for case in 0..CASES {
        let source = random_document(&mut rng);
        let once = render(&parse(&source));
        let twice = render(&parse(&once));
        assert_eq!(
            once, twice,
            "case {case}: render∘parse must be idempotent\n--- source\n{source:?}"
        );
        // The canonical form preserves the section tree and its ids.
        let (a, b) = (parse(&source), parse(&once));
        let ids = |d: &Document| d.sections.iter().map(|s| s.id.clone()).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b), "case {case}: ids survive canonicalization");
        // And the re-parsed canonical document still satisfies every
        // structural invariant.
        check_tiling(&b, &once);
        check_section_tree(&b);
        check_sentence_units(&b, &once);
    }
}

#[test]
fn non_blank_content_is_never_dropped_by_canonicalization() {
    let mut rng = Rng::new(0xcafe);
    for _ in 0..CASES {
        let source = random_document(&mut rng);
        let doc = parse(&source);
        let rendered = render(&doc);
        let re = parse(&rendered);
        let shape = |d: &Document| {
            d.blocks
                .iter()
                .filter(|b| !matches!(b.kind, BlockKind::Blank))
                .map(|b| (b.kind.label(), b.text.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&doc), shape(&re), "block kinds and texts survive\n{source:?}");
    }
}
