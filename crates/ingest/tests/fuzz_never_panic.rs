//! Never-panic fuzzing: the parser ingests whatever bytes a report
//! scraper hands it — byte soup, truncated UTF-8 repaired lossily,
//! pathological nesting, adversarial pipe tables — and must always
//! return a structurally valid [`Document`], never panic or hang.
//!
//! Deterministic (seeded xorshift generator), so a failing case is
//! reproducible from its iteration index alone.

use gs_ingest::{parse, render, Document};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Full structural check: parsing succeeded AND the result upholds the
/// crate invariants (not just "didn't panic").
fn assert_well_formed(source: &str) -> Document {
    let doc = parse(source);
    assert_eq!(doc.source_len, source.len());
    let mut cursor = 0usize;
    for block in &doc.blocks {
        assert_eq!(block.span.start, cursor);
        cursor = block.span.end;
        assert!((block.section as usize) < doc.sections.len());
    }
    assert_eq!(cursor, source.len());
    for unit in doc.sentence_units(source) {
        assert!(source.is_char_boundary(unit.span.start));
        assert!(source.is_char_boundary(unit.span.end));
    }
    // Rendering the mess must also not panic, and must be re-parseable.
    let rendered = render(&doc);
    let _ = parse(&rendered);
    doc
}

#[test]
fn random_byte_soup_never_panics() {
    let mut rng = Rng::new(0x50f7);
    for _ in 0..400 {
        let len = rng.below(600);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xff) as u8).collect();
        // The public API takes &str; scrapers repair encoding lossily
        // before handing text over, so fuzz what they actually produce.
        let source = String::from_utf8_lossy(&bytes).into_owned();
        assert_well_formed(&source);
    }
}

#[test]
fn structured_soup_with_markers_never_panics() {
    // Byte soup rarely hits the table/heading paths; bias toward the
    // grammar's special characters to exercise every branch.
    const ALPHABET: &[&str] =
        &["|", "#", "-", "=", "*", "•", " ", "\n", "\\", ".", ")", "a", "1", "é", "文", "\t"];
    let mut rng = Rng::new(0xa11a);
    for _ in 0..600 {
        let len = rng.below(300);
        let mut source = String::new();
        for _ in 0..len {
            source.push_str(ALPHABET[rng.below(ALPHABET.len())]);
        }
        assert_well_formed(&source);
    }
}

#[test]
fn truncation_at_every_char_boundary_never_panics() {
    let base = "# Tïtle\n\nPara one. Para two.\n\n- bullet\n\n| Ħ | T |\n| --- | --- |\n| a \\| b | Cut 50%. |\n\nSocial\n------\n\ntail\n";
    let mut end = 0;
    while end <= base.len() {
        if base.is_char_boundary(end) {
            assert_well_formed(&base[..end]);
        }
        end += 1;
    }
}

#[test]
fn pathological_nesting_stays_linear_and_sane() {
    // 10k headings, alternating levels — the section stack must not blow
    // up, and every heading must land in the tree.
    let mut source = String::new();
    for i in 0..10_000 {
        let level = 1 + (i % 6);
        source.push_str(&"#".repeat(level));
        source.push_str(&format!(" H{i}\n"));
    }
    let doc = assert_well_formed(&source);
    assert_eq!(doc.num_sections(), 10_000);

    // Deep setext stacking too.
    let mut setext = String::new();
    for i in 0..2_000 {
        setext.push_str(&format!("T{i}\n===\n"));
    }
    assert_well_formed(&setext);
}

#[test]
fn kilocolumn_and_ragged_tables_never_panic() {
    // 1k-column header with separator and one body row.
    let mut wide = String::new();
    wide.push('|');
    for i in 0..1_000 {
        wide.push_str(&format!(" c{i} |"));
    }
    wide.push_str("\n|");
    for _ in 0..1_000 {
        wide.push_str(" --- |");
    }
    wide.push_str("\n|");
    for i in 0..1_000 {
        wide.push_str(&format!(" v{i} |"));
    }
    wide.push('\n');
    let doc = assert_well_formed(&wide);
    let table = doc.blocks.iter().find_map(|b| b.table.as_ref()).expect("table parsed");
    assert_eq!(table.header.as_ref().map(Vec::len), Some(1_000));
    assert_eq!(table.rows[0].cells.len(), 1_000);

    // Adversarial edges: ragged rows, escaped pipes, empty headers,
    // trailing backslashes, separator-shaped bodies, lone pipes.
    for source in [
        "| a | b | c |\n| --- |\n| 1 |\n",
        "| a \\| b \\\\ | c\\ |\n",
        "|  |  |\n| --- | --- |\n| x |\n",
        "|\n||\n|||\n",
        "| --- | --- |\n| --- |\n",
        "| a |\n| --- | --- | --- |\n| 1 | 2 | 3 | 4 | 5 |\n",
        "| no newline at end",
        "\t| indented | table |\n",
    ] {
        assert_well_formed(source);
    }
}

#[test]
fn long_lines_and_marker_floods_never_panic() {
    assert_well_formed(&"#".repeat(50_000));
    assert_well_formed(&"|".repeat(50_000));
    assert_well_formed(&"\\".repeat(50_000));
    assert_well_formed(&"-".repeat(50_000));
    assert_well_formed(&"\n".repeat(50_000));
    assert_well_formed(&"- ".repeat(25_000));
    let long_word = "x".repeat(100_000);
    assert_well_formed(&format!("# {long_word}\n\n{long_word}\n"));
}
