//! Algorithm 1 throughput under each matching policy — the ablation on the
//! design decision called out in DESIGN.md (exact vs normalized vs fuzzy),
//! plus the first-vs-all occurrence policy.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gs_core::{weak_label, MatchPolicy, OccurrencePolicy, WeakLabelConfig};
use gs_text::labels::LabelSet;

fn bench_weaklabel(c: &mut Criterion) {
    let dataset = gs_data::sustaingoals::generate(500, 2);
    let labels = LabelSet::sustainability_goals();
    let items: Vec<(&str, &gs_core::Annotations)> = dataset
        .objectives
        .iter()
        .map(|o| (o.text.as_str(), o.annotations.as_ref().expect("annotated")))
        .collect();

    let mut group = c.benchmark_group("weak_label_500_objectives");
    group.throughput(Throughput::Elements(items.len() as u64));
    for (name, config) in [
        ("exact", WeakLabelConfig::default()),
        (
            "normalized",
            WeakLabelConfig { match_policy: MatchPolicy::Normalized, ..Default::default() },
        ),
        (
            "fuzzy2",
            WeakLabelConfig {
                match_policy: MatchPolicy::Fuzzy { max_edits: 2 },
                ..Default::default()
            },
        ),
        (
            "exact_all_occurrences",
            WeakLabelConfig { occurrence: OccurrencePolicy::All, ..Default::default() },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                for (text, ann) in &items {
                    black_box(weak_label(black_box(text), ann, &labels, config));
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_weaklabel
}
criterion_main!(benches);
