//! Tokenization microbenchmarks: pre-tokenization and both subword schemes
//! on realistic objective text (hot path of both training and production).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gs_text::{pretokenize, Normalizer, NormalizerConfig, Tokenizer};

fn corpus() -> Vec<String> {
    gs_data::sustaingoals::generate(300, 1).objectives.into_iter().map(|o| o.text).collect()
}

fn bench_tokenize(c: &mut Criterion) {
    let texts = corpus();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let total_bytes: u64 = texts.iter().map(|t| t.len() as u64).sum();

    let mut group = c.benchmark_group("tokenize");
    group.throughput(Throughput::Bytes(total_bytes));

    group.bench_function("pretokenize", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(pretokenize(black_box(t)));
            }
        })
    });

    let bpe = Tokenizer::train_bpe(&refs, Normalizer::default(), 1200);
    group.bench_function("bpe_encode", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(bpe.encode(black_box(t)));
            }
        })
    });

    let wp = Tokenizer::train_wordpiece(
        &refs,
        Normalizer::new(NormalizerConfig { lowercase: true, ..Default::default() }),
        1600,
    );
    group.bench_function("wordpiece_encode", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(wp.encode(black_box(t)));
            }
        })
    });
    group.finish();

    c.bench_function("tokenize/bpe_train_300_texts", |b| {
        b.iter(|| black_box(Tokenizer::train_bpe(&refs, Normalizer::default(), 400)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tokenize
}
criterion_main!(benches);
