//! Model hot paths: transformer forward/training step, CRF Viterbi decode
//! and feature extraction (per feature-set ablation), and detection.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use gs_core::WeakLabelConfig;
use gs_models::transformer::{
    train_token_classifier, TokenClassifier, TrainConfig, TrainExample, TransformerConfig,
};
use gs_models::{
    sentence_features, weak_labeled_sentences, Crf, CrfConfig, FeatureConfig, LinearDetector,
    LinearDetectorConfig, ObjectiveDetector,
};
use gs_text::labels::LabelSet;
use gs_text::pretokenize;

fn bench_transformer(c: &mut Criterion) {
    let config = TransformerConfig::roberta_sim();
    let model = TokenClassifier::new(config.clone(), 1200, 11, 1);
    let ids: Vec<usize> = (0..48).map(|i| (i * 13) % 1200).collect();

    c.bench_function("transformer/forward_48_tokens", |b| {
        b.iter(|| black_box(model.predict_classes(black_box(&ids))))
    });

    let examples: Vec<TrainExample> = (0..16)
        .map(|s| {
            let ids: Vec<usize> = (0..40).map(|i| ((s * 7 + i * 3) % 1200).max(5)).collect();
            let targets: Vec<i64> = ids.iter().map(|&id| (id % 11) as i64).collect();
            TrainExample { ids, targets }
        })
        .collect();
    c.bench_function("transformer/train_step_batch16", |b| {
        b.iter_batched(
            || TokenClassifier::new(config.clone(), 1200, 11, 1),
            |mut m| {
                train_token_classifier(
                    &mut m,
                    &examples,
                    &TrainConfig { epochs: 1, batch_size: 16, ..Default::default() },
                );
                m
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_crf(c: &mut Criterion) {
    let dataset = gs_data::sustaingoals::generate(200, 3);
    let labels = LabelSet::sustainability_goals();
    let refs: Vec<&gs_core::Objective> = dataset.objectives.iter().collect();
    let sentences = weak_labeled_sentences(&refs, &labels, WeakLabelConfig::default());
    let crf = Crf::train(&sentences, &labels, CrfConfig { epochs: 4, ..Default::default() });

    let probe = pretokenize(
        "Having pledged to cut water use by 12% by 2030 in an earlier plan, Reduce energy consumption by 24% by 2031 against a 2017 baseline.",
    );
    c.bench_function("crf/viterbi_decode", |b| {
        b.iter(|| black_box(crf.predict(black_box(&probe), &labels)))
    });

    let mut group = c.benchmark_group("crf/features_per_sentence");
    for (name, fc) in [
        ("lexical", FeatureConfig::lexical_only()),
        ("lex+ortho", FeatureConfig::no_context()),
        ("full_w1", FeatureConfig::default()),
        ("full_w2", FeatureConfig::wide_context()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(sentence_features(black_box(&probe), &fc)))
        });
    }
    group.finish();
}

fn bench_detector(c: &mut Criterion) {
    let dataset = gs_data::sustaingoals::generate(200, 5);
    let mut data: Vec<(&str, bool)> =
        dataset.objectives.iter().map(|o| (o.text.as_str(), true)).collect();
    data.extend(gs_data::banks::NOISE_BLOCKS.iter().map(|b| (*b, false)));
    let detector = LinearDetector::train(&data, LinearDetectorConfig::default());
    let block = "Reduce single-use beverages per seated headcount by 20% relative.";
    c.bench_function("detector/score_block", |b| {
        b.iter(|| black_box(detector.score(black_box(block))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_transformer, bench_crf, bench_detector
}
criterion_main!(benches);
