//! Objective-store benchmarks: ingest rate and the indexed vs full-scan
//! query paths.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gs_core::ExtractedDetails;
use gs_store::{ObjectiveRecord, ObjectiveStore, Predicate, Value};

fn sample_records(n: usize) -> Vec<ObjectiveRecord> {
    (0..n)
        .map(|i| {
            let mut details = ExtractedDetails::new();
            details.set("Action", "Reduce");
            details.set("Amount", format!("{}%", i % 90 + 2));
            if i % 3 == 0 {
                details.set("Deadline", format!("{}", 2024 + i % 30));
            }
            ObjectiveRecord::from_details(
                &format!("C{}", i % 14 + 1),
                "report.pdf",
                "Reduce energy consumption by 20% by 2030.",
                &details,
                (i % 100) as f64 / 100.0,
            )
        })
        .collect()
}

fn bench_store(c: &mut Criterion) {
    let records = sample_records(5000);

    let mut group = c.benchmark_group("store");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("ingest_5k", |b| {
        b.iter_batched(
            ObjectiveStore::new,
            |store| {
                for r in &records {
                    store.insert(r);
                }
                store
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();

    let store = ObjectiveStore::new();
    for r in &records {
        store.insert(r);
    }
    c.bench_function("store/query_company_hash_index", |b| {
        b.iter(|| black_box(store.by_company(black_box("C7"))))
    });
    c.bench_function("store/query_deadline_btree_range", |b| {
        b.iter(|| black_box(store.deadlines_between(black_box(2026), black_box(2032))))
    });
    c.bench_function("store/query_full_scan_contains", |b| {
        b.iter(|| black_box(store.query(&Predicate::Contains("objective".into(), "energy".into()))))
    });
    c.bench_function("store/query_compound", |b| {
        b.iter(|| {
            black_box(
                store.query(
                    &Predicate::Eq("company".into(), Value::Text("C3".into()))
                        .and(Predicate::NotNull("deadline_year".into())),
                ),
            )
        })
    });
    c.bench_function("store/top_objectives", |b| {
        b.iter(|| black_box(store.top_objectives(black_box("C5"), 2)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_store
}
criterion_main!(benches);
