//! Multi-seed comparison of all detail-extraction approaches on a dataset —
//! the engine behind the Table 4 harness.

use gs_core::Objective;
use gs_core::WeakLabelConfig;
use gs_data::Dataset;
use gs_eval::{run_stats, RunStats};
use gs_models::transformer::{
    pretrain_encoder_shared, ExtractorOptions, PretrainConfig, PretrainedEncoder, TrainConfig,
    TransformerConfig, TransformerExtractor,
};
use gs_models::{
    CrfConfig, CrfExtractor, FewShotExtractor, HmmConfig, HmmExtractor, ZeroShotExtractor,
};
use gs_pipeline::evaluate_extractor;
use std::sync::Arc;
use std::time::Duration;

/// Which approach to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApproachKind {
    /// Linear-chain CRF on handcrafted features.
    Crf,
    /// HMM (extended baseline, not in the paper's Table 4).
    Hmm,
    /// Keyword-window search (extended baseline, paper §6.2's comparison
    /// point for zero-shot prompting).
    KeywordSearch,
    /// Zero-shot LLM-prompting simulator.
    ZeroShot,
    /// Few-shot LLM-prompting simulator (3 examples from the train split).
    FewShot,
    /// GoalSpotter: the weakly supervised fine-tuned transformer.
    GoalSpotter,
}

impl ApproachKind {
    /// The paper's Table 4 lineup, in row order.
    pub fn table4() -> Vec<ApproachKind> {
        vec![
            ApproachKind::Crf,
            ApproachKind::ZeroShot,
            ApproachKind::FewShot,
            ApproachKind::GoalSpotter,
        ]
    }
}

/// Options shared by a comparison run.
#[derive(Clone, Debug)]
pub struct ComparisonOptions {
    /// Test fraction (paper: 0.2).
    pub test_fraction: f64,
    /// Seeds — one independent run each (paper: mean of 5 runs).
    pub seeds: Vec<u64>,
    /// Transformer configuration for GoalSpotter.
    pub model: TransformerConfig,
    /// Transformer training configuration (seed overridden per run).
    pub train: TrainConfig,
    /// Weak labeling configuration (shared by CRF/HMM/transformer).
    pub weak_label: WeakLabelConfig,
    /// Simulated per-call LLM latency for the prompting baselines.
    pub llm_latency: Duration,
    /// MLM pretraining configuration; `None` trains from scratch.
    pub pretrain: Option<PretrainConfig>,
    /// Unlabeled corpus for pretraining (required when `pretrain` is set).
    pub pretrain_corpus: Vec<String>,
}

impl Default for ComparisonOptions {
    fn default() -> Self {
        ComparisonOptions {
            test_fraction: 0.2,
            seeds: vec![1, 2, 3, 4, 5],
            model: TransformerConfig::roberta_sim(),
            train: TrainConfig::default(),
            weak_label: WeakLabelConfig::default(),
            llm_latency: gs_models::DEFAULT_CALL_LATENCY,
            pretrain: None,
            pretrain_corpus: Vec::new(),
        }
    }
}

/// One result row: an approach's scores and times aggregated over seeds.
#[derive(Clone, Debug)]
pub struct ApproachRow {
    /// Approach display name.
    pub name: String,
    /// Precision over runs.
    pub precision: RunStats,
    /// Recall over runs.
    pub recall: RunStats,
    /// F1 over runs.
    pub f1: RunStats,
    /// Mean training seconds (real).
    pub train_seconds: f64,
    /// Mean inference seconds including simulated LLM latency.
    pub inference_seconds_total: f64,
    /// Mean inference seconds, real only.
    pub inference_seconds_real: f64,
}

/// Builds and evaluates one approach on one split. Returns
/// (result, train_seconds).
fn run_once(
    kind: ApproachKind,
    train: &[&Objective],
    test: &[&Objective],
    dataset: &Dataset,
    options: &ComparisonOptions,
    seed: u64,
    base: Option<&Arc<PretrainedEncoder>>,
) -> (gs_pipeline::ApproachResult, f64) {
    let labels = &dataset.labels;
    match kind {
        ApproachKind::Crf => {
            let (ex, secs) = gs_eval::time_it(|| {
                CrfExtractor::train(
                    train,
                    labels,
                    CrfConfig { seed, ..Default::default() },
                    options.weak_label,
                )
            });
            (evaluate_extractor(&ex, test, labels), secs)
        }
        ApproachKind::Hmm => {
            let (ex, secs) = gs_eval::time_it(|| {
                HmmExtractor::train(train, labels, HmmConfig::default(), options.weak_label)
            });
            (evaluate_extractor(&ex, test, labels), secs)
        }
        ApproachKind::KeywordSearch => {
            let ex = gs_models::KeywordSearchExtractor::new(labels);
            (evaluate_extractor(&ex, test, labels), 0.0)
        }
        ApproachKind::ZeroShot => {
            let ex = ZeroShotExtractor::with_latency(labels, options.llm_latency);
            (evaluate_extractor(&ex, test, labels), 0.0)
        }
        ApproachKind::FewShot => {
            // Three in-context examples from the train split, as the paper
            // does (following NetZeroFacts).
            let examples: Vec<&Objective> = train.iter().copied().take(3).collect();
            let ex = FewShotExtractor::with_latency(labels, &examples, options.llm_latency);
            (evaluate_extractor(&ex, test, labels), 0.0)
        }
        ApproachKind::GoalSpotter => {
            let extractor_options = ExtractorOptions {
                model: options.model.clone(),
                train: TrainConfig { seed, ..options.train.clone() },
                weak_label: options.weak_label,
                multi_span: Default::default(),
                base: base.cloned(),
            };
            let (ex, secs) =
                gs_eval::time_it(|| TransformerExtractor::train(train, labels, extractor_options));
            (evaluate_extractor(&ex, test, labels), secs)
        }
    }
}

/// Runs every approach over every seed's split of `dataset` and aggregates.
pub fn compare_approaches(
    dataset: &Dataset,
    kinds: &[ApproachKind],
    options: &ComparisonOptions,
) -> Vec<ApproachRow> {
    assert!(!options.seeds.is_empty(), "need at least one seed");
    // Pretrain once; every GoalSpotter seed fine-tunes from the same
    // encoder, mirroring how every fine-tuning run in the paper starts from
    // the same public checkpoint. Pretraining wall-clock is amortized into
    // each run's training time below.
    let mut pretrain_seconds = 0.0f64;
    let base: Option<Arc<PretrainedEncoder>> = match &options.pretrain {
        Some(pc) if kinds.contains(&ApproachKind::GoalSpotter) => {
            assert!(
                !options.pretrain_corpus.is_empty(),
                "pretraining requested but no unlabeled corpus supplied"
            );
            let texts: Vec<&str> = options.pretrain_corpus.iter().map(String::as_str).collect();
            let (encoder, secs) =
                gs_eval::time_it(|| pretrain_encoder_shared(&texts, &options.model, pc));
            pretrain_seconds = secs;
            Some(encoder)
        }
        _ => None,
    };
    let mut rows = Vec::with_capacity(kinds.len());
    for &kind in kinds {
        let mut ps = Vec::new();
        let mut rs = Vec::new();
        let mut fs = Vec::new();
        let mut train_secs = Vec::new();
        let mut infer_total = Vec::new();
        let mut infer_real = Vec::new();
        let mut name = String::new();
        for &seed in &options.seeds {
            let (train, test) = dataset.split(options.test_fraction, seed);
            let (result, secs) =
                run_once(kind, &train, &test, dataset, options, seed, base.as_ref());
            name = result.name.clone();
            ps.push(result.precision());
            rs.push(result.recall());
            fs.push(result.f1());
            train_secs.push(secs);
            infer_total.push(result.inference_total.as_secs_f64());
            infer_real.push(result.inference_real.as_secs_f64());
        }
        let pretrain_share = if kind == ApproachKind::GoalSpotter {
            pretrain_seconds / options.seeds.len() as f64
        } else {
            0.0
        };
        rows.push(ApproachRow {
            name,
            precision: run_stats(&ps),
            recall: run_stats(&rs),
            f1: run_stats(&fs),
            train_seconds: mean(&train_secs) + pretrain_share,
            inference_seconds_total: mean(&infer_total),
            inference_seconds_real: mean(&infer_real),
        });
    }
    rows
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_lineup_matches_paper_rows() {
        let kinds = ApproachKind::table4();
        assert_eq!(kinds.len(), 4);
        assert_eq!(kinds[0], ApproachKind::Crf);
        assert_eq!(kinds[3], ApproachKind::GoalSpotter);
    }

    #[test]
    fn quick_comparison_on_small_data() {
        let dataset = gs_data::sustaingoals::generate(60, 3);
        let options = ComparisonOptions {
            seeds: vec![1],
            model: TransformerConfig {
                d_model: 32,
                n_heads: 2,
                n_layers: 1,
                d_ff: 64,
                subword_budget: 200,
                ..TransformerConfig::roberta_sim()
            },
            train: TrainConfig { epochs: 3, lr: 3e-3, batch_size: 8, ..Default::default() },
            llm_latency: Duration::ZERO,
            ..Default::default()
        };
        let rows =
            compare_approaches(&dataset, &[ApproachKind::ZeroShot, ApproachKind::Crf], &options);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.f1.mean >= 0.0 && row.f1.mean <= 1.0);
        }
    }
}
