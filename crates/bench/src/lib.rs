//! # gs-bench
//!
//! Shared harness code for the table/figure reproduction binaries:
//! approach construction, multi-seed comparison runs, and a tiny CLI-flag
//! parser. Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index).

#![warn(missing_docs)]

pub mod args;
pub mod comparison;
pub mod deploy;
pub mod obs;

pub use args::Args;
pub use comparison::{compare_approaches, ApproachKind, ApproachRow, ComparisonOptions};
