//! Shared setup for the deployment harnesses (Tables 5-7): build — or load
//! from a cache file — a fully trained GoalSpotter system.

use gs_core::Objective;
use gs_models::transformer::{
    pretrain_encoder_shared, ExtractorOptions, PretrainConfig, TrainConfig, TransformerExtractor,
};
use gs_models::{LinearDetector, LinearDetectorConfig};
use gs_pipeline::GoalSpotter;
use std::path::Path;

/// Training budget for the deployed system.
#[derive(Clone, Copy, Debug)]
pub struct DeployBudget {
    /// Size of the historical annotated training set.
    pub train_size: usize,
    /// Unlabeled pretraining corpus size.
    pub pretrain_size: usize,
    /// MLM pretraining epochs.
    pub pretrain_epochs: usize,
    /// Fine-tuning epochs.
    pub finetune_epochs: usize,
}

impl DeployBudget {
    /// Full budget (matches the Table 4 configuration).
    pub fn full() -> Self {
        DeployBudget {
            train_size: gs_data::sustaingoals::PAPER_SIZE,
            pretrain_size: 4000,
            pretrain_epochs: 12,
            finetune_epochs: 40,
        }
    }

    /// Reduced budget for smoke runs.
    pub fn quick() -> Self {
        DeployBudget {
            train_size: 300,
            pretrain_size: 1200,
            pretrain_epochs: 4,
            finetune_epochs: 10,
        }
    }
}

/// Builds the deployed GoalSpotter system, reusing a cached trained
/// extractor when `cache` exists (the cache key includes the budget, so
/// quick and full runs do not collide).
pub fn build_goalspotter(budget: &DeployBudget, cache_dir: &Path) -> GoalSpotter {
    let cache = cache_dir.join(format!(
        "goalspotter_t{}_p{}x{}_f{}.json",
        budget.train_size, budget.pretrain_size, budget.pretrain_epochs, budget.finetune_epochs
    ));
    let dataset = gs_data::sustaingoals::generate(budget.train_size, 42);
    let objectives: Vec<&Objective> = dataset.objectives.iter().collect();
    let noise: Vec<&str> = gs_data::banks::NOISE_BLOCKS.to_vec();

    let extractor = match std::fs::read_to_string(&cache)
        .ok()
        .and_then(|json| TransformerExtractor::load_json(&json).ok())
    {
        Some(loaded) => {
            eprintln!("loaded cached extractor from {}", cache.display());
            loaded
        }
        None => {
            eprintln!("training extractor ({budget:?})...");
            let corpus = gs_data::unlabeled::sustaingoals_corpus(budget.pretrain_size, 777);
            let texts: Vec<&str> = corpus.iter().map(String::as_str).collect();
            let base = pretrain_encoder_shared(
                &texts,
                &gs_models::transformer::TransformerConfig::roberta_sim(),
                &PretrainConfig { epochs: budget.pretrain_epochs, ..Default::default() },
            );
            let trained = TransformerExtractor::train(
                &objectives,
                &dataset.labels,
                ExtractorOptions {
                    train: TrainConfig {
                        epochs: budget.finetune_epochs,
                        lr: 1e-3,
                        ..Default::default()
                    },
                    base: Some(base),
                    ..Default::default()
                },
            );
            let _ = std::fs::create_dir_all(cache_dir);
            if let Err(e) = std::fs::write(&cache, trained.save_json()) {
                eprintln!("warning: could not cache extractor: {e}");
            }
            trained
        }
    };

    let mut detection_data: Vec<(&str, bool)> =
        objectives.iter().map(|o| (o.text.as_str(), true)).collect();
    detection_data.extend(noise.iter().map(|b| (*b, false)));
    let detector = LinearDetector::train(&detection_data, LinearDetectorConfig::default());

    GoalSpotter::from_parts(detector, extractor, 0.5)
}

/// Renders an objective-record row for the Table 6/7 style outputs,
/// truncating the objective text for column sanity.
pub fn record_row(record: &gs_store::ObjectiveRecord, max_text: usize) -> Vec<String> {
    let mut text = record.objective.clone();
    if text.len() > max_text {
        let mut cut = max_text;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text.truncate(cut);
        text.push('…');
    }
    let opt = |o: &Option<String>| o.clone().unwrap_or_default();
    vec![
        record.company.clone(),
        text,
        opt(&record.action),
        opt(&record.amount),
        opt(&record.qualifier),
        opt(&record.baseline),
        opt(&record.deadline),
    ]
}
