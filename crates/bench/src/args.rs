//! Minimal command-line flag parsing for the harness binaries (no external
//! CLI crate needed for `--flag value` / `--switch` style arguments).

use std::collections::HashMap;

/// Parsed `--key value` flags and bare `--switch`es.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses from `std::env::args` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses from an iterator of argument strings.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                eprintln!("ignoring positional argument {arg:?}");
                continue;
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    out.values.insert(name.to_string(), value);
                }
                _ => out.switches.push(name.to_string()),
            }
        }
        out
    }

    /// Whether a bare switch was passed.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A string value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A parsed value with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(v) => v.parse().unwrap_or_else(|_| panic!("invalid value for --{name}: {v:?}")),
            None => default,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn parses_values_and_switches() {
        let a = args("--runs 5 --quick --scale 0.5");
        assert_eq!(a.get_or("runs", 1usize), 5);
        assert!(a.has("quick"));
        assert_eq!(a.get_or("scale", 1.0f64), 0.5);
        assert!(!a.has("verbose"));
    }

    #[test]
    fn missing_values_use_defaults() {
        let a = args("");
        assert_eq!(a.get_or("runs", 3usize), 3);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn bad_value_panics() {
        let a = args("--runs abc");
        let _ = a.get_or("runs", 1usize);
    }
}
