//! Observability wiring shared by the harness binaries.
//!
//! Every binary that wants machine-readable telemetry calls [`init`] at the
//! top of `main` and [`finish`] at the end. `init` installs a global
//! `gs-obs` collector; with `--obs-jsonl PATH` the collector additionally
//! streams every event as one JSON object per line to `PATH`. `finish`
//! uninstalls the collector (flushing sinks) and, unless `--no-obs-report`
//! was passed, prints the human-readable end-of-run metrics report.

use gs_obs::{Collector, JsonlSink};
use std::sync::Arc;

use crate::Args;

/// Installs the global collector for a harness run.
///
/// Recognised flags:
/// - `--obs-jsonl PATH`: stream all events to `PATH` as JSON Lines.
/// - `--no-obs`: leave telemetry disabled entirely (near-zero overhead).
/// - `--sanitize`: enable the gs-tensor numeric sanitizer — every tape
///   created after this point scans op outputs (and gradients during
///   backward) for NaN/Inf and the trainers abort on the first issue with
///   full provenance. Off by default: disabled cost is one branch per op.
pub fn init(args: &Args) -> Option<Arc<Collector>> {
    if args.has("sanitize") {
        gs_tensor::set_sanitize(true);
    }
    if args.has("no-obs") {
        return None;
    }
    let mut collector = Collector::new();
    if let Some(path) = args.get("obs-jsonl") {
        match JsonlSink::create(path) {
            Ok(sink) => collector.add_sink(Box::new(sink)),
            Err(err) => eprintln!("warning: cannot open --obs-jsonl {path:?}: {err}"),
        }
    }
    Some(gs_obs::install(collector))
}

/// Flushes sinks, uninstalls the collector, and prints the metrics report.
pub fn finish(args: &Args) {
    let Some(collector) = gs_obs::uninstall() else { return };
    if !args.has("no-obs-report") {
        print!("{}", collector.report());
    }
}
