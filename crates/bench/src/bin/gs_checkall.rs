//! `gs-checkall`: static pre-flight validation of every encoder
//! configuration the paper evaluates.
//!
//! For each Figure-4 variant (RoBERTa-sim, DistilRoBERTa-sim, BERT-sim,
//! DistilBERT-sim) it instantiates the model, traces a full-length forward
//! plus loss over the gs-check symbolic tape, and runs every shape rule and
//! autograd lint — no forward pass is ever executed, so the whole sweep
//! takes milliseconds. Exit status is non-zero if any finding is reported.
//!
//! ```text
//! gs-checkall [--vocab N] [--seed S] [--obs-jsonl PATH] [--no-obs]
//! ```

use gs_bench::{obs, Args};
use gs_models::transformer::{validate_classifier, TokenClassifier, TransformerConfig};
use gs_text::labels::LabelSet;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    obs::init(&args);
    let vocab = args.get_or("vocab", 1200usize);
    let seed = args.get_or("seed", 0u64);
    let num_classes = LabelSet::sustainability_goals().num_classes();

    let mut total_findings = 0usize;
    for config in TransformerConfig::figure4_variants() {
        let start = Instant::now();
        let model = TokenClassifier::new(config.clone(), vocab, num_classes, seed);
        let analysis = validate_classifier(&model);
        let micros = start.elapsed().as_micros();
        println!(
            "{}: {} nodes, {} params, {} finding(s), {} us",
            config.name,
            analysis.nodes,
            analysis.params,
            analysis.findings.len(),
            micros
        );
        for finding in &analysis.findings {
            println!("  {finding}");
        }
        gs_obs::counter("check.configs", 1);
        gs_obs::counter("check.findings", analysis.findings.len() as u64);
        total_findings += analysis.findings.len();
    }
    obs::finish(&args);
    if total_findings > 0 {
        eprintln!("gs-checkall: {total_findings} finding(s)");
        std::process::exit(1);
    }
    println!("gs-checkall: all configurations clean");
}
