//! Regenerates **Table 7**: detail extraction from a single sustainability
//! report (paper §5.2's report-level scenario). Runs GoalSpotter over one
//! generated report, organizes every detected objective's details into a
//! structured table, and prints the detection statistics.
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin table7 [--quick] [--pages N]
//!       [--objectives N] [--json PATH]

use gs_bench::deploy::{build_goalspotter, record_row, DeployBudget};
use gs_bench::Args;
use gs_eval::TextTable;
use gs_pipeline::process_report;
use gs_store::ObjectiveStore;
use rand::SeedableRng;
use std::path::Path;

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);
    let quick = args.has("quick");
    let pages: usize = args.get_or("pages", 30);
    let objectives: usize = args.get_or("objectives", 12);
    let budget = if quick { DeployBudget::quick() } else { DeployBudget::full() };

    let gs = build_goalspotter(&budget, Path::new("results"));
    let mut rng = rand::rngs::StdRng::seed_from_u64(7781);
    let report = gs_data::documents::generate_report(
        "DemoCorp",
        "DemoCorp Sustainability Report 2025",
        pages,
        objectives,
        &gs_data::documents::ReportConfig::default(),
        &mut rng,
    );

    let store = ObjectiveStore::new();
    let stats = process_report(&gs, &report, &store);
    println!(
        "\nScanned {} pages / {} blocks; detected {} objectives ({} FP, {} FN vs ground truth).",
        stats.pages, stats.blocks, stats.detected, stats.false_positives, stats.false_negatives
    );

    println!("\n## Table 7 — extracted details from a single report\n");
    let mut table = TextTable::new(&[
        "Company",
        "Sustainability Objective",
        "Action",
        "Amount",
        "Qualifier",
        "Baseline",
        "Deadline",
    ]);
    let records = store.by_company("DemoCorp");
    for record in &records {
        table.row(&record_row(record, 80));
    }
    print!("{}", table.render());

    // The paper stores these in a database for later monitoring; show the
    // monitoring query working.
    let upcoming = store.deadlines_between(2024, 2045);
    println!(
        "\nmonitoring query: {} of {} objectives have deadlines in 2024-2045",
        upcoming.len(),
        records.len()
    );

    if let Some(path) = args.get("json") {
        std::fs::write(path, gs_store::records_to_json(&records)).expect("write json");
        println!("wrote {path}");
    }

    gs_bench::obs::finish(&args);
}
