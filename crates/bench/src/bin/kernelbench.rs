//! Kernel benchmark: measures what the cache-blocked kernels, the fast
//! gelu, and the buffer arena buy over the seed implementation, per op and
//! end to end, and writes a machine-readable summary.
//!
//! Every comparison runs both arms in one process by flipping the runtime
//! switches the kernels already expose:
//!
//! - **before**: `KernelMode::Reference` (naive triple loops), exact libm
//!   gelu, arena pool disabled — the seed configuration.
//! - **after**: `KernelMode::Blocked` (packed panels + unrolled micro-
//!   kernel), fast rational-tanh gelu, arena pool recycling buffers.
//!
//! Reported per matmul variant: ns/call and GFLOP/s in both modes. End to
//! end: the packed inference forward and the fine-tuning train step, timed
//! single-threaded in both configurations, plus the f32 vs int8 serving
//! forward. The after-forward additionally runs under `gs_obs::prof` so the
//! gelu share of attributed forward time is pinned.
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin kernelbench -- [--smoke]
//!       [--reps N] [--out PATH]
//!
//! Writes `results/BENCH_kernels.json`. In full mode (no `--smoke`) the
//! bench **fails** (exit 1) unless the blocked forward is >= 2x the
//! reference forward, the train step is >= 1.5x, and gelu is <= 10% of
//! attributed forward time; `--smoke` still reports the ratios but skips
//! enforcement (tiny smoke shapes are overhead-dominated).

use gs_bench::Args;
use gs_models::transformer::{
    train_token_classifier, QuantizedModel, TokenClassifier, TrainConfig, TrainExample,
    TransformerConfig,
};
use gs_obs::prof;
use gs_tensor::{arena, set_exact_gelu, set_kernel_mode, KernelMode, Tensor};
use std::time::Instant;

/// Vocabulary size for the synthetic token streams.
const VOCAB: usize = 300;

/// Speedup the blocked single-thread forward must reach over reference.
const FORWARD_GATE: f64 = 2.0;
/// Speedup the blocked train step must reach over reference.
const TRAIN_GATE: f64 = 1.5;
/// Largest share of attributed forward time gelu may take.
const GELU_SHARE_GATE: f64 = 0.10;

fn bench_config(smoke: bool) -> TransformerConfig {
    TransformerConfig {
        name: "kernelbench".into(),
        d_model: if smoke { 32 } else { 64 },
        n_heads: if smoke { 2 } else { 4 },
        n_layers: 2,
        d_ff: if smoke { 64 } else { 128 },
        max_len: 64,
        subword_budget: VOCAB,
        ..TransformerConfig::roberta_sim()
    }
}

/// Deterministic pseudo-random fill in [-1, 1) (no RNG crate in the loop).
fn synth(len: usize, salt: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let mut h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt);
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
            ((h % 2000) as f32 / 1000.0) - 1.0
        })
        .collect()
}

fn synth_seqs(count: usize, len: usize) -> Vec<Vec<usize>> {
    (0..count).map(|s| (0..len).map(|i| 2 + (s * 31 + i * 7) % (VOCAB - 2)).collect()).collect()
}

/// Mean ns per call over `reps` timed iterations (after `reps / 4` warm-up
/// calls), single-threaded so the per-op numbers are scheduling-free.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    gs_par::with_threads(1, || {
        for _ in 0..(reps / 4).max(1) {
            f();
        }
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        start.elapsed().as_nanos() as f64 / reps as f64
    })
}

/// Puts the process in the seed ("before") or optimized ("after")
/// configuration. The pool is cleared so arms never share warm buffers.
fn configure(after: bool) {
    set_kernel_mode(if after { KernelMode::Blocked } else { KernelMode::Reference });
    set_exact_gelu(!after);
    arena::set_pool_enabled(after);
    arena::clear();
}

/// One matmul variant measured in both kernel modes.
fn matmul_row(
    name: &str,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    run: impl Fn(&Tensor, &Tensor) -> Tensor,
    a: Tensor,
    b: Tensor,
) -> serde_json::Value {
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    configure(false);
    let before_ns = time_ns(reps, || {
        let _ = run(&a, &b);
    });
    configure(true);
    let after_ns = arena::scope(|| {
        time_ns(reps, || {
            let _ = run(&a, &b);
        })
    });
    let row = serde_json::json!({
        "op": name,
        "shape": [m, k, n],
        "before_ns": before_ns,
        "after_ns": after_ns,
        "before_gflops": flops / before_ns,
        "after_gflops": flops / after_ns,
        "speedup": before_ns / after_ns,
    });
    println!(
        "{name:>14} ({m}x{k}x{n})  {:>10.0} -> {:>10.0} ns  {:>5.2} -> {:>5.2} GFLOP/s  ({:.2}x)",
        before_ns,
        after_ns,
        flops / before_ns,
        flops / after_ns,
        before_ns / after_ns,
    );
    row
}

/// An elementwise op measured before/after (gelu flips exact -> fast;
/// softmax runs the same restructured code in both arms, so its ratio
/// isolates the arena).
fn elementwise_row(
    name: &str,
    rows: usize,
    cols: usize,
    reps: usize,
    run: impl Fn(&Tensor) -> Tensor,
) -> serde_json::Value {
    let x = Tensor::from_vec(vec![rows, cols], synth(rows * cols, 77));
    configure(false);
    let before_ns = time_ns(reps, || {
        let _ = run(&x);
    });
    configure(true);
    let after_ns = arena::scope(|| {
        time_ns(reps, || {
            let _ = run(&x);
        })
    });
    println!(
        "{name:>14} ({rows}x{cols})  {before_ns:>10.0} -> {after_ns:>10.0} ns  ({:.2}x)",
        before_ns / after_ns
    );
    serde_json::json!({
        "op": name,
        "shape": [rows, cols],
        "before_ns": before_ns,
        "after_ns": after_ns,
        "speedup": before_ns / after_ns,
    })
}

fn train_examples(count: usize, len: usize) -> Vec<TrainExample> {
    synth_seqs(count, len)
        .into_iter()
        .map(|ids| {
            let targets: Vec<i64> = ids
                .iter()
                .enumerate()
                .map(|(p, &id)| if p == 0 { -1 } else { (id % 4) as i64 + 1 })
                .collect();
            TrainExample { ids, targets }
        })
        .collect()
}

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);
    let smoke = args.has("smoke");
    let reps: usize = args.get_or("reps", if smoke { 5 } else { 40 });
    let out = args.get("out").unwrap_or("results/BENCH_kernels.json").to_string();

    // Per-op micro-bench: one mid-size shape that crosses the KC k-strip
    // (k > KC = 256) so packing, strip spill, and the micro-kernel all run.
    let (m, k, n) = if smoke { (48, 64, 48) } else { (192, 320, 192) };
    let mm = matmul_row(
        "matmul",
        m,
        k,
        n,
        reps,
        |a, b| a.matmul(b),
        Tensor::from_vec(vec![m, k], synth(m * k, 1)),
        Tensor::from_vec(vec![k, n], synth(k * n, 2)),
    );
    let mmtb = matmul_row(
        "matmul_transb",
        m,
        k,
        n,
        reps,
        |a, b| a.matmul_transb(b),
        Tensor::from_vec(vec![m, k], synth(m * k, 3)),
        Tensor::from_vec(vec![n, k], synth(n * k, 4)),
    );
    let mmta = matmul_row(
        "matmul_transa",
        m,
        k,
        n,
        reps,
        |a, b| a.matmul_transa(b),
        Tensor::from_vec(vec![k, m], synth(k * m, 5)),
        Tensor::from_vec(vec![k, n], synth(k * n, 6)),
    );
    let (erows, ecols) = if smoke { (64, 64) } else { (512, 128) };
    let gelu = elementwise_row("gelu", erows, ecols, reps * 4, |x| x.gelu_forward());
    let softmax = elementwise_row("softmax", erows, ecols, reps * 4, |x| x.softmax_last_dim());

    // Forward end to end: the packed tape-free inference kernel, single
    // thread, seed configuration vs blocked + fast gelu + arena.
    let config = bench_config(smoke);
    let num_classes = 5;
    let model = TokenClassifier::new(config.clone(), VOCAB, num_classes, 42);
    let seqs = synth_seqs(if smoke { 4 } else { 16 }, 48);
    let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
    let fwd_reps = if smoke { 3 } else { 20 };

    configure(false);
    let fwd_before_ns = time_ns(fwd_reps, || {
        let _ = model.predict_classes_batch(&refs);
    });
    configure(true);
    let fwd_after_ns = arena::scope(|| {
        time_ns(fwd_reps, || {
            let _ = model.predict_classes_batch(&refs);
        })
    });
    let forward_speedup = fwd_before_ns / fwd_after_ns;
    println!(
        "{:>14}  {fwd_before_ns:>10.0} -> {fwd_after_ns:>10.0} ns  ({forward_speedup:.2}x)",
        "forward e2e"
    );

    // The after-forward under the op profiler: how much of attributed time
    // the (fast) gelu still takes. A regression here means the activation
    // crept back into the hot set.
    prof::reset();
    prof::set_enabled(true);
    arena::scope(|| {
        gs_par::with_threads(1, || {
            for _ in 0..fwd_reps {
                let _ = model.predict_classes_batch(&refs);
            }
        });
    });
    prof::set_enabled(false);
    let fwd_snapshot = prof::snapshot();
    prof::reset();
    let profiled = fwd_snapshot.total_seconds();
    let gelu_seconds: f64 =
        fwd_snapshot.by_op().into_iter().filter(|t| t.op.contains("gelu")).map(|t| t.seconds).sum();
    let gelu_share = gelu_seconds / profiled.max(1e-12);
    println!(
        "{:>14}  gelu {gelu_seconds:.4}s of {profiled:.4}s attributed ({:.1}%)",
        "forward prof",
        gelu_share * 100.0
    );

    // Train step end to end: taped forward + backward + Adam, same data and
    // seed in both arms (training itself is bit-deterministic per mode).
    let examples = train_examples(if smoke { 8 } else { 32 }, 32);
    let train_cfg = TrainConfig {
        epochs: if smoke { 1 } else { 2 },
        lr: 3e-3,
        batch_size: 8,
        ..Default::default()
    };
    configure(false);
    let train_before_ns = gs_par::with_threads(1, || {
        let mut m = TokenClassifier::new(config.clone(), VOCAB, num_classes, 43);
        let start = Instant::now();
        let _ = train_token_classifier(&mut m, &examples, &train_cfg);
        start.elapsed().as_nanos() as f64
    });
    configure(true);
    let train_after_ns = gs_par::with_threads(1, || {
        let mut m = TokenClassifier::new(config.clone(), VOCAB, num_classes, 43);
        arena::scope(|| {
            let start = Instant::now();
            let _ = train_token_classifier(&mut m, &examples, &train_cfg);
            start.elapsed().as_nanos() as f64
        })
    });
    let train_speedup = train_before_ns / train_after_ns;
    println!(
        "{:>14}  {train_before_ns:>10.0} -> {train_after_ns:>10.0} ns  ({train_speedup:.2}x)",
        "train e2e"
    );

    // Serving forward, f32 vs int8, both in the after configuration: the
    // quantized path trades tolerance-bounded logits for a ~4x smaller
    // encoder; wall time stays in the same regime (both are GEMM-bound).
    configure(true);
    let quantized = QuantizedModel::from(&model);
    let serve_f32_ns = arena::scope(|| {
        time_ns(fwd_reps, || {
            let _ = model.predict_classes_batch(&refs);
        })
    });
    let serve_int8_ns = arena::scope(|| {
        time_ns(fwd_reps, || {
            let _ = quantized.predict_classes_batch(&refs);
        })
    });
    let f32_weight_bytes = quantized.quantized_bytes() * 4;
    println!(
        "{:>14}  f32 {serve_f32_ns:>10.0} ns  int8 {serve_int8_ns:>10.0} ns  ({:.2}x, weights {} -> {} bytes)",
        "serve fwd",
        serve_f32_ns / serve_int8_ns,
        f32_weight_bytes,
        quantized.quantized_bytes(),
    );

    let gates_pass = forward_speedup >= FORWARD_GATE
        && train_speedup >= TRAIN_GATE
        && gelu_share <= GELU_SHARE_GATE;
    let summary = serde_json::json!({
        "bench": "kernelbench",
        "smoke": smoke,
        "reps": reps,
        "model": {
            "d_model": config.d_model,
            "n_heads": config.n_heads,
            "n_layers": config.n_layers,
            "d_ff": config.d_ff,
        },
        "arms": {
            "before": "KernelMode::Reference, exact gelu, arena pool off (seed)",
            "after": "KernelMode::Blocked, fast gelu, arena pool on",
        },
        "ops": [mm, mmtb, mmta, gelu, softmax],
        "forward": {
            "before_ns": fwd_before_ns,
            "after_ns": fwd_after_ns,
            "speedup": forward_speedup,
            "gelu_share_of_attributed": gelu_share,
        },
        "train_step": {
            "before_ns": train_before_ns,
            "after_ns": train_after_ns,
            "speedup": train_speedup,
        },
        "serve_forward": {
            "f32_ns": serve_f32_ns,
            "int8_ns": serve_int8_ns,
            "int8_over_f32": serve_int8_ns / serve_f32_ns,
            "f32_weight_bytes": f32_weight_bytes,
            "int8_weight_bytes": quantized.quantized_bytes(),
        },
        "gates": {
            "forward_speedup_min": FORWARD_GATE,
            "train_step_speedup_min": TRAIN_GATE,
            "gelu_share_max": GELU_SHARE_GATE,
            "enforced": !smoke,
            "pass": gates_pass,
        },
    });

    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out, serde_json::to_string_pretty(&summary).expect("json"))
        .expect("write summary");
    println!("wrote {out}");

    // Leave the process in the default (optimized) configuration.
    configure(true);
    gs_bench::obs::finish(&args);

    if !smoke && !gates_pass {
        eprintln!(
            "kernel gates failed: forward {forward_speedup:.2}x (need >= {FORWARD_GATE}), \
             train {train_speedup:.2}x (need >= {TRAIN_GATE}), \
             gelu share {gelu_share:.3} (need <= {GELU_SHARE_GATE})"
        );
        std::process::exit(1);
    }
}
