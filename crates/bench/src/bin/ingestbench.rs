//! Ingestion-front-end benchmark: raw parse throughput, end-to-end
//! report → store latency through the full detect/extract path, and
//! detection precision/recall against the generated corpus's byte-accurate
//! ground truth.
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin ingestbench --
//!       [--reports N] [--smoke] [--out PATH]
//!
//! `--smoke` shrinks the corpus and the parse sweep for CI; the full run
//! additionally enforces the detection quality gate (precision and recall
//! both >= 0.9 — the bar the ingest pipeline must clear to be worth
//! running unattended). Writes `results/BENCH_ingest.json`.

use gs_bench::Args;
use gs_core::Objective;
use gs_data::fullreport::{generate_full_report, FullReport, FullReportConfig};
use gs_models::transformer::{ExtractorOptions, TrainConfig, TransformerConfig};
use gs_pipeline::{ingest_report_text, GoalSpotter, GoalSpotterConfig};
use gs_serve::Json;
use gs_store::{ObjectiveDb, StoreConfig};
use gs_text::labels::LabelSet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The pipeline test systems' small-but-real configuration: enough model
/// to extract template objectives, small enough to train in seconds.
fn system() -> GoalSpotter {
    let dataset = gs_data::sustaingoals::generate(80, 11);
    let refs: Vec<&Objective> = dataset.objectives.iter().collect();
    let mut noise: Vec<&str> = gs_data::banks::NOISE_BLOCKS.to_vec();
    noise.extend_from_slice(gs_data::banks::INDICATOR_NAMES);
    let config = GoalSpotterConfig {
        extractor: ExtractorOptions {
            model: TransformerConfig {
                name: "ingestbench".into(),
                d_model: 32,
                n_heads: 2,
                n_layers: 1,
                d_ff: 64,
                max_len: 48,
                subword_budget: 250,
                ..TransformerConfig::roberta_sim()
            },
            train: TrainConfig { epochs: 6, lr: 3e-3, batch_size: 8, ..Default::default() },
            ..Default::default()
        },
        ..Default::default()
    };
    GoalSpotter::develop(&refs, &noise, &LabelSet::sustainability_goals(), config)
}

fn corpus(reports: usize) -> Vec<FullReport> {
    (0..reports)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(100 + i as u64);
            generate_full_report(
                &format!("Company-{i:03}"),
                &format!("CSR Report {}", 2020 + i % 7),
                &FullReportConfig::default(),
                &mut rng,
            )
        })
        .collect()
}

/// Parse-only throughput: MB/s and sections/s over repeated sweeps.
fn parse_dimension(reports: &[FullReport], sweeps: usize) -> Json {
    let total_bytes: usize = reports.iter().map(|r| r.text.len()).sum();
    let mut sections = 0usize;
    let start = Instant::now();
    for _ in 0..sweeps {
        for report in reports {
            sections += gs_ingest::parse(&report.text).num_sections();
        }
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let mb_per_sec = (total_bytes * sweeps) as f64 / 1e6 / secs;
    let sections_per_sec = sections as f64 / secs;
    println!(
        "parse: {mb_per_sec:8.1} MB/s, {sections_per_sec:10.0} sections/s \
         ({} reports x {sweeps} sweeps, {:.3}s)",
        reports.len(),
        secs
    );
    Json::obj(vec![
        ("dimension", Json::from("parse")),
        ("sweeps", Json::from(sweeps as u64)),
        ("bytes_per_sweep", Json::from(total_bytes as u64)),
        ("mb_per_sec", Json::from(mb_per_sec)),
        ("sections_per_sec", Json::from(sections_per_sec)),
    ])
}

/// End-to-end report → store latency plus detection P/R vs ground truth.
fn ingest_dimension(gs: &GoalSpotter, reports: &[FullReport]) -> (Json, f64, f64) {
    let db = ObjectiveDb::ephemeral(StoreConfig::default());
    let mut latencies_us: Vec<u64> = Vec::with_capacity(reports.len());
    let (mut tp, mut fp, mut truth_hits, mut truths) = (0usize, 0usize, 0usize, 0usize);
    let started = Instant::now();
    for report in reports {
        let t0 = Instant::now();
        let (_, objectives) = ingest_report_text(gs, &report.company, "csr", &report.text, &db);
        latencies_us.push(t0.elapsed().as_micros() as u64);
        let overlaps = |a: (usize, usize), b: (usize, usize)| a.0 < b.1 && b.0 < a.1;
        for o in &objectives {
            if report.truths.iter().any(|t| overlaps(o.byte_range, t.span)) {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        truths += report.truths.len();
        truth_hits += report
            .truths
            .iter()
            .filter(|t| objectives.iter().any(|o| overlaps(o.byte_range, t.span)))
            .count();
    }
    let total_secs = started.elapsed().as_secs_f64().max(1e-9);
    latencies_us.sort_unstable();
    let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p) as usize];
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = truth_hits as f64 / truths.max(1) as f64;
    println!(
        "e2e: p50 {} us, p99 {} us, {:.1} reports/s into the store ({} records); \
         detection precision {precision:.3} recall {recall:.3}",
        pct(0.50),
        pct(0.99),
        reports.len() as f64 / total_secs,
        db.len(),
    );
    let json = Json::obj(vec![
        ("dimension", Json::from("ingest_e2e")),
        ("reports", Json::from(reports.len() as u64)),
        ("latency_p50_us", Json::from(pct(0.50))),
        ("latency_p99_us", Json::from(pct(0.99))),
        ("reports_per_sec", Json::from(reports.len() as f64 / total_secs)),
        ("store_records", Json::from(db.len() as u64)),
        ("detection_precision", Json::from(precision)),
        ("detection_recall", Json::from(recall)),
        ("true_positives", Json::from(tp as u64)),
        ("false_positives", Json::from(fp as u64)),
        ("truth_spans", Json::from(truths as u64)),
    ]);
    (json, precision, recall)
}

fn main() {
    let args = Args::from_env();
    let collector = gs_bench::obs::init(&args);
    let smoke = args.has("smoke");
    let n: usize = args.get_or("reports", if smoke { 8 } else { 48 });
    let sweeps = if smoke { 20 } else { 200 };
    let out = args.get("out").unwrap_or("results/BENCH_ingest.json").to_string();

    let reports = corpus(n);
    let parse = parse_dimension(&reports, sweeps);
    println!("training ingest system...");
    let gs = system();
    let (e2e, precision, recall) = ingest_dimension(&gs, &reports);

    let host_cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let summary = Json::obj(vec![
        ("benchmark", Json::from("gs-ingest full-report ingestion front-end")),
        ("host_cores", Json::from(host_cores as u64)),
        ("smoke", Json::from(smoke)),
        ("parse", parse),
        ("ingest", e2e),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, summary.to_string()).expect("write summary");
    println!("wrote {out}");
    drop(collector);
    gs_bench::obs::finish(&args);

    if !smoke {
        assert!(
            precision >= 0.9 && recall >= 0.9,
            "detection quality gate failed: precision {precision:.3}, recall {recall:.3}"
        );
    }
}
