//! Regenerates **Table 4**: effectiveness (P/R/F1) and efficiency (time) of
//! Conditional Random Fields, Zero-Shot Prompting, Few-Shot Prompting, and
//! GoalSpotter on the NetZeroFacts and Sustainability Goals datasets.
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin table4 [--quick] [--runs N]
//!       [--epochs N] [--latency-ms MS] [--hmm] [--json PATH]
//!       [--obs-jsonl PATH] [--no-obs] [--no-obs-report]
//!
//! `--quick` runs 1 seed with reduced epochs for a fast smoke pass; the
//! full run uses 5 seeds (the paper's protocol).

use gs_bench::{compare_approaches, ApproachKind, ApproachRow, Args, ComparisonOptions};
use gs_data::Dataset;
use gs_eval::{fmt2, fmt_duration, TextTable};
use gs_models::transformer::TrainConfig;
use gs_pipeline::evaluate_extractor;
use std::time::Duration;

/// Per-field diagnostic pass (single seed) for `--per-field`.
fn per_field_diagnostics(dataset: &Dataset, options: &ComparisonOptions) {
    use gs_models::{CrfConfig, CrfExtractor, FewShotExtractor, ZeroShotExtractor};
    let (train, test) = dataset.split(options.test_fraction, options.seeds[0]);
    println!("\n--- per-field F1 on {} (seed {}) ---", dataset.name, options.seeds[0]);
    let mut table = TextTable::new(
        &std::iter::once("Approach").chain(dataset.labels.kind_names()).collect::<Vec<_>>(),
    );
    let mut add = |name: &str, eval: &gs_eval::FieldEval| {
        let mut row = vec![name.to_string()];
        row.extend(eval.per_field.iter().map(|c| fmt2(c.f1())));
        table.row(&row);
    };
    let crf =
        CrfExtractor::train(&train, &dataset.labels, CrfConfig::default(), options.weak_label);
    add("CRF", &evaluate_extractor(&crf, &test, &dataset.labels).eval);
    let zs = ZeroShotExtractor::with_latency(&dataset.labels, Duration::ZERO);
    add("Zero-Shot", &evaluate_extractor(&zs, &test, &dataset.labels).eval);
    let examples: Vec<&gs_core::Objective> = train.iter().copied().take(3).collect();
    let fs = FewShotExtractor::with_latency(&dataset.labels, &examples, Duration::ZERO);
    add("Few-Shot", &evaluate_extractor(&fs, &test, &dataset.labels).eval);
    let base = options.pretrain.as_ref().map(|pc| {
        let texts: Vec<&str> = options.pretrain_corpus.iter().map(String::as_str).collect();
        gs_models::transformer::pretrain_encoder_shared(&texts, &options.model, pc)
    });
    let gs = gs_models::transformer::TransformerExtractor::train(
        &train,
        &dataset.labels,
        gs_models::transformer::ExtractorOptions {
            model: options.model.clone(),
            train: options.train.clone(),
            weak_label: options.weak_label,
            multi_span: Default::default(),
            base,
        },
    );
    add("GoalSpotter", &evaluate_extractor(&gs, &test, &dataset.labels).eval);
    print!("{}", table.render());
}

fn render(dataset: &Dataset, rows: &[ApproachRow]) {
    println!("\n### {} (test = 20%, mean of {} run(s))\n", dataset.name, rows[0].f1.n);
    let mut table = TextTable::new(&["Approach", "P", "R", "F", "T(train)", "T(infer)"]);
    for row in rows {
        table.row(&[
            row.name.clone(),
            fmt2(row.precision.mean),
            fmt2(row.recall.mean),
            fmt2(row.f1.mean),
            fmt_duration(row.train_seconds),
            fmt_duration(row.inference_seconds_total),
        ]);
    }
    print!("{}", table.render());
    let max_stderr = rows
        .iter()
        .flat_map(|r| [r.precision.stderr, r.recall.stderr, r.f1.stderr])
        .fold(0.0f64, f64::max);
    println!("(max stderr over all cells: {:.4})", max_stderr);
}

fn to_json(dataset: &Dataset, rows: &[ApproachRow]) -> serde_json::Value {
    serde_json::json!({
        "dataset": dataset.name,
        "rows": rows.iter().map(|r| serde_json::json!({
            "approach": r.name,
            "precision": r.precision.mean,
            "recall": r.recall.mean,
            "f1": r.f1.mean,
            "f1_stderr": r.f1.stderr,
            "train_seconds": r.train_seconds,
            "inference_seconds_total": r.inference_seconds_total,
            "inference_seconds_real": r.inference_seconds_real,
        })).collect::<Vec<_>>(),
    })
}

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);
    let quick = args.has("quick");
    let runs: usize = args.get_or("runs", if quick { 1 } else { 5 });
    let epochs: usize = args.get_or("epochs", if quick { 8 } else { 40 });
    let latency_ms: u64 = args.get_or("latency-ms", 3500);
    let lr: f32 = args.get_or("lr", 1e-3);
    let sg_size: usize = args.get_or("sg-size", gs_data::sustaingoals::PAPER_SIZE);
    let nzf_size: usize = args.get_or("nzf-size", gs_data::netzerofacts::PAPER_SIZE);

    let mut kinds = ApproachKind::table4();
    if args.has("hmm") {
        kinds.insert(1, ApproachKind::Hmm);
    }
    if args.has("keyword") {
        kinds.insert(1, ApproachKind::KeywordSearch);
    }

    let pretrain_n: usize = args.get_or("pretrain-size", if quick { 1500 } else { 4000 });
    let pretrain_epochs: usize = args.get_or("pretrain-epochs", if quick { 4 } else { 12 });
    let base_options = ComparisonOptions {
        seeds: (1..=runs as u64).collect(),
        train: TrainConfig { epochs, lr, ..Default::default() },
        llm_latency: Duration::from_millis(latency_ms),
        pretrain: (!args.has("no-pretrain")).then(|| gs_models::transformer::PretrainConfig {
            epochs: pretrain_epochs,
            ..Default::default()
        }),
        ..Default::default()
    };

    println!("Table 4 reproduction — approaches: {:?}", kinds);
    println!("(LLM prompting latency simulated at {latency_ms} ms/call; see DESIGN.md)");

    let datasets = vec![
        gs_data::netzerofacts::generate(nzf_size, 42),
        gs_data::sustaingoals::generate(sg_size, 42),
    ];

    let mut json_out = Vec::new();
    for dataset in &datasets {
        let mut options = base_options.clone();
        if options.pretrain.is_some() {
            options.pretrain_corpus = if dataset.name == "NetZeroFacts" {
                gs_data::unlabeled::netzerofacts_corpus(pretrain_n, 777)
            } else {
                gs_data::unlabeled::sustaingoals_corpus(pretrain_n, 777)
            };
        }
        let options = &options;
        if args.has("per-field") {
            per_field_diagnostics(dataset, options);
            continue;
        }
        let rows = compare_approaches(dataset, &kinds, options);
        render(dataset, &rows);
        json_out.push(to_json(dataset, &rows));
    }

    if let Some(path) = args.get("json") {
        std::fs::write(path, serde_json::to_string_pretty(&json_out).expect("json"))
            .expect("write json");
        println!("\nwrote {path}");
    }

    gs_bench::obs::finish(&args);
}
