//! Thread-pool scaling benchmark: measures the paper-config encoder
//! forward, a fine-tuning step, and batched serving extraction under
//! gs-par pools of 1, 2, 4, and 8 threads.
//!
//! Every cell runs the identical workload (gs-par guarantees bit-identical
//! results at every pool size), so the only variable is wall-clock. Each
//! cell reports the median of `--trials` runs; `host_cores` records
//! `std::thread::available_parallelism()` because speedups are physically
//! bounded by it — on a single-core host every multi-thread cell measures
//! pure pool overhead, not scaling.
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin parbench --
//!       [--trials N] [--out PATH]
//!
//! Writes `results/BENCH_par.json`.

use gs_bench::Args;
use gs_core::Objective;
use gs_models::transformer::{
    train_token_classifier, ExtractorOptions, TokenClassifier, TrainConfig, TrainExample,
    TransformerConfig, TransformerExtractor,
};
use gs_serve::Json;
use std::time::Instant;

const THREADS: &[usize] = &[1, 2, 4, 8];

/// Runs `work` once per trial under an N-thread pool and returns the
/// median wall-clock in milliseconds.
fn time_cell(threads: usize, trials: usize, mut work: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..trials)
        .map(|_| {
            gs_par::with_threads(threads, || {
                let start = Instant::now();
                work();
                start.elapsed().as_secs_f64() * 1e3
            })
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One benchmark dimension: a name plus a closure running the workload.
fn run_dimension(name: &str, trials: usize, mut work: impl FnMut()) -> Json {
    // Warm the pool and every lazy allocation before measuring.
    gs_par::with_threads(THREADS[THREADS.len() - 1], &mut work);
    let mut cells = Vec::new();
    let mut baseline = None;
    for &threads in THREADS {
        let ms = time_cell(threads, trials, &mut work);
        let base = *baseline.get_or_insert(ms);
        let speedup = base / ms.max(1e-9);
        println!("{name:12} threads={threads}: {ms:8.1} ms  speedup {speedup:4.2}x");
        gs_obs::gauge(&format!("par.{name}.speedup.{threads}"), speedup);
        cells.push(Json::obj(vec![
            ("threads", Json::from(threads as u64)),
            ("median_ms", Json::from(ms)),
            ("speedup_vs_1", Json::from(speedup)),
        ]));
    }
    Json::obj(vec![("dimension", Json::from(name)), ("cells", Json::Arr(cells))])
}

/// Fixed-length training examples exercising the full paper sequence
/// length (96 tokens after specials).
fn paper_examples(n: usize, config: &TransformerConfig, num_classes: usize) -> Vec<TrainExample> {
    (0..n)
        .map(|s| {
            let len = config.max_len;
            let ids: Vec<usize> = (0..len).map(|i| (s * 31 + i * 7) % 1200).collect();
            let targets: Vec<i64> =
                (0..len).map(|i| if i % 9 == 0 { -1 } else { (i % num_classes) as i64 }).collect();
            TrainExample { ids, targets }
        })
        .collect()
}

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);
    let trials: usize = args.get_or("trials", 3);
    let out = args.get("out").unwrap_or("results/BENCH_par.json").to_string();

    let config = TransformerConfig::roberta_sim();
    let num_classes = 9;
    let model = TokenClassifier::new(config.clone(), 1200, num_classes, 17);

    // Dimension 1: the packed tape-free encoder forward (the serving
    // kernel) over a full batch of paper-length sequences.
    let seqs: Vec<Vec<usize>> =
        (0..8).map(|s| (0..config.max_len).map(|i| (s * 13 + i * 3) % 1200).collect()).collect();
    let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
    let forward = run_dimension("forward", trials, || {
        let _ = model.predict_classes_batch(&refs);
    });

    // Dimension 2: a full fine-tuning epoch (taped forward + backward +
    // optimizer) with the paper architecture; the model is rebuilt inside
    // the timed region's setup so every trial trains from the same init.
    let examples = paper_examples(16, &config, num_classes);
    let train_config = TrainConfig { epochs: 1, batch_size: 8, seed: 17, ..Default::default() };
    let (cfg2, ex2, tc2) = (config.clone(), examples, train_config);
    let train_step = run_dimension("train_step", trials, move || {
        let mut m = TokenClassifier::new(cfg2.clone(), 1200, num_classes, 17);
        let _ = train_token_classifier(&mut m, &ex2, &tc2);
    });

    // Dimension 3: batched serving extraction (tokenize + packed forward +
    // decode), the exact path gs-serve's micro-batch worker runs.
    println!("training serving extractor...");
    let dataset = goalspotter_dataset();
    let refs_obj: Vec<&Objective> = dataset.objectives.iter().collect();
    let options = ExtractorOptions {
        model: TransformerConfig {
            d_model: 32,
            n_heads: 2,
            n_layers: 1,
            d_ff: 64,
            max_len: 48,
            subword_budget: 250,
            ..TransformerConfig::roberta_sim()
        },
        train: TrainConfig { epochs: 6, lr: 3e-3, batch_size: 8, ..Default::default() },
        ..Default::default()
    };
    let extractor = TransformerExtractor::train(&refs_obj, &dataset.labels, options);
    let texts: Vec<&str> = dataset.texts().into_iter().take(16).collect();
    let serve = run_dimension("serve_batch", trials, || {
        let _ = extractor.extract_batch(&texts);
    });

    let host_cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let summary = Json::obj(vec![
        ("benchmark", Json::from("gs-par thread scaling")),
        ("host_cores", Json::from(host_cores as u64)),
        ("trials", Json::from(trials as u64)),
        (
            "note",
            Json::from(
                "speedups are bounded by host_cores; on a 1-core host multi-thread \
                 cells measure pool overhead, not scaling",
            ),
        ),
        ("dimensions", Json::Arr(vec![forward, train_step, serve])),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, summary.to_string()).expect("write summary");
    println!("wrote {out} (host_cores={host_cores})");
}

fn goalspotter_dataset() -> gs_data::Dataset {
    gs_data::sustaingoals::generate(48, 7)
}
