//! Regenerates **Table 5**: the post-deployment data summary — per company,
//! the number of documents, pages, and objectives GoalSpotter extracts from
//! the 14-company deployment corpus (paper §5.1).
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin table5 [--quick] [--scale F]
//!       [--json PATH]

use gs_bench::deploy::{build_goalspotter, DeployBudget};
use gs_bench::Args;
use gs_eval::TextTable;
use gs_pipeline::process_corpus;
use gs_store::ObjectiveStore;
use std::path::Path;

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);
    let quick = args.has("quick");
    let scale: f64 = args.get_or("scale", if quick { 0.05 } else { 1.0 });
    let budget = if quick { DeployBudget::quick() } else { DeployBudget::full() };

    let gs = build_goalspotter(&budget, Path::new("results"));
    eprintln!("generating deployment corpus at scale {scale}...");
    let corpus = gs_data::deployment::generate_corpus(scale, 20240511);
    eprintln!("processing {} reports / {} pages...", corpus.reports.len(), corpus.num_pages());
    let store = ObjectiveStore::new();
    let (stats, secs) = gs_eval::time_it(|| process_corpus(&gs, &corpus, &store));

    println!("\n## Table 5 — post-deployment data summary (scale {scale})\n");
    let mut table = TextTable::new(&[
        "Company",
        "#Documents",
        "#Pages",
        "#Extracted Objectives",
        "(paper: docs/pages/objectives)",
    ]);
    let mut total_docs = 0;
    let mut total_pages = 0;
    let mut total_obj = 0;
    let mut json_rows = Vec::new();
    for s in &stats {
        let paper =
            gs_data::deployment::TABLE5.iter().find(|p| p.name == s.company).expect("paper row");
        table.row(&[
            s.company.clone(),
            s.documents.to_string(),
            s.pages.to_string(),
            s.extracted_objectives.to_string(),
            format!("{}/{}/{}", paper.documents, paper.pages, paper.objectives),
        ]);
        total_docs += s.documents;
        total_pages += s.pages;
        total_obj += s.extracted_objectives;
        json_rows.push(serde_json::json!({
            "company": s.company,
            "documents": s.documents,
            "pages": s.pages,
            "extracted_objectives": s.extracted_objectives,
            "paper_documents": paper.documents,
            "paper_pages": paper.pages,
            "paper_objectives": paper.objectives,
        }));
    }
    let t = gs_data::deployment::TABLE5_TOTALS;
    table.row(&[
        "Total".into(),
        total_docs.to_string(),
        total_pages.to_string(),
        total_obj.to_string(),
        format!("{}/{}/{}", t.documents, t.pages, t.objectives),
    ]);
    print!("{}", table.render());
    println!("\nprocessed in {:.1}s; store now holds {} structured records", secs, store.len());

    if let Some(path) = args.get("json") {
        std::fs::write(path, serde_json::to_string_pretty(&json_rows).expect("json"))
            .expect("write json");
        println!("wrote {path}");
    }

    gs_bench::obs::finish(&args);
}
