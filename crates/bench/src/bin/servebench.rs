//! Serving benchmark: drives the `gs-serve` extraction service with
//! closed-loop client fleets and compares micro-batched serving against a
//! `batch_size = 1` baseline on the same trained extractor, plus an
//! overload run demonstrating load shedding (503s, not unbounded latency).
//!
//! The two arms share the whole HTTP/admission/queue stack and the same
//! weights; they differ only in what the micro-batching subsystem adds:
//!
//! - `unbatched`: `max_batch = 1` and every request runs the standard
//!   single-text inference path (the taped forward every other part of
//!   the codebase uses) — serving as it would exist without this crate.
//! - `microbatch`: requests coalesce in the bounded queue and run through
//!   the packed, tape-free batched kernel (`predict_tags_batch`).
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin servebench --
//!       [--size N] [--epochs N] [--requests N] [--trials N] [--out PATH]
//!       [--quantized]
//!
//! With `--quantized` a third arm serves the same weights through the int8
//! quantized packed forward (`QuantizedEngine`), so the summary compares
//! f32 and int8 serving under identical batching.
//!
//! Writes `results/BENCH_serve.json` with throughput and client-side
//! latency percentiles per (scheduling, client-count) cell; each cell is
//! the median-throughput trial of `--trials` runs (single-box scheduling
//! noise is several percent, so one trial is not trustworthy).

use gs_bench::Args;
use gs_core::Objective;
use gs_models::transformer::{
    ExtractorOptions, TrainConfig, TransformerConfig, TransformerExtractor,
};
use gs_models::DetailExtractor;
use gs_serve::{BatchConfig, Client, ExtractEngine, Extraction, Json, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn to_extraction(details: gs_core::ExtractedDetails) -> Extraction {
    Extraction { fields: details.fields.into_iter().filter(|(_, v)| !v.is_empty()).collect() }
}

/// The `batch_size = 1` serving baseline: each request runs the standard
/// single-text inference path, exactly as a service built on the public
/// per-text API (before micro-batching existed) would.
struct PerRequestEngine(Arc<TransformerExtractor>);

impl ExtractEngine for PerRequestEngine {
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
        texts.iter().map(|t| to_extraction(self.0.extract(t))).collect()
    }
}

/// The micro-batched serving engine: one packed, tape-free encoder
/// forward per coalesced batch.
struct PackedEngine(Arc<TransformerExtractor>);

impl ExtractEngine for PackedEngine {
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        self.0.extract_batch(&refs).into_iter().map(to_extraction).collect()
    }
}

/// One client fleet's aggregated view of a run.
struct FleetResult {
    elapsed: Duration,
    /// Per-request client-side latencies for 200 responses.
    latencies: Vec<Duration>,
    ok: usize,
    shed: usize,
    other: usize,
}

impl FleetResult {
    fn throughput(&self) -> f64 {
        self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs `clients` closed-loop clients, each sending `requests` extract
/// calls over one keep-alive connection.
fn run_fleet(
    addr: std::net::SocketAddr,
    texts: &[&str],
    clients: usize,
    requests: usize,
) -> FleetResult {
    let start = Instant::now();
    let mut per_client: Vec<(Vec<Duration>, usize, usize, usize)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client =
                        Client::connect(addr, Duration::from_secs(30)).expect("connect");
                    let mut latencies = Vec::with_capacity(requests);
                    let (mut ok, mut shed, mut other) = (0usize, 0usize, 0usize);
                    for i in 0..requests {
                        let text = texts[(c * requests + i) % texts.len()];
                        let body = format!("{{\"text\": {}}}", gs_serve::Json::from(text));
                        let sent = Instant::now();
                        let resp = client.post_json("/v1/extract", &body).expect("request");
                        match resp.status {
                            200 => {
                                latencies.push(sent.elapsed());
                                ok += 1;
                            }
                            503 => shed += 1,
                            _ => other += 1,
                        }
                    }
                    (latencies, ok, shed, other)
                })
            })
            .collect();
        for h in handles {
            per_client.push(h.join().expect("client thread"));
        }
    });
    let elapsed = start.elapsed();
    let mut latencies = Vec::new();
    let (mut ok, mut shed, mut other) = (0, 0, 0);
    for (l, o, s, x) in per_client {
        latencies.extend(l);
        ok += o;
        shed += s;
        other += x;
    }
    latencies.sort();
    FleetResult { elapsed, latencies, ok, shed, other }
}

/// Runs a cell `trials` times and keeps the median-throughput trial.
fn run_cell(
    addr: std::net::SocketAddr,
    texts: &[&str],
    clients: usize,
    requests: usize,
    trials: usize,
) -> FleetResult {
    let mut runs: Vec<FleetResult> =
        (0..trials.max(1)).map(|_| run_fleet(addr, texts, clients, requests)).collect();
    runs.sort_by(|a, b| a.throughput().total_cmp(&b.throughput()));
    runs.swap_remove(runs.len() / 2)
}

fn quantile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64()
}

// The summary is serialized with the service's own `Json` type: the bench
// then exercises the exact encoder the wire responses use.
fn cell_json(name: &str, clients: usize, r: &FleetResult) -> Json {
    Json::obj(vec![
        ("scheduling", Json::from(name)),
        ("clients", Json::from(clients)),
        ("ok", Json::from(r.ok)),
        ("shed", Json::from(r.shed)),
        ("other", Json::from(r.other)),
        ("seconds", Json::from(r.elapsed.as_secs_f64())),
        ("throughput_rps", Json::from(r.throughput())),
        (
            "latency_seconds",
            Json::obj(vec![
                ("p50", Json::from(quantile(&r.latencies, 0.50))),
                ("p95", Json::from(quantile(&r.latencies, 0.95))),
                ("p99", Json::from(quantile(&r.latencies, 0.99))),
            ]),
        ),
    ])
}

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);
    let size: usize = args.get_or("size", 64);
    let epochs: usize = args.get_or("epochs", 10);
    let requests: usize = args.get_or("requests", 40);
    let trials: usize = args.get_or("trials", 3);
    let out = args.get("out").unwrap_or("results/BENCH_serve.json").to_string();

    // A small encoder keeps training fast while leaving the forward as the
    // dominant per-request cost, which is the regime serving cares about.
    let dataset = gs_data::sustaingoals::generate(size, 42);
    let refs: Vec<&Objective> = dataset.objectives.iter().collect();
    let options = ExtractorOptions {
        model: TransformerConfig {
            name: "servebench-tiny".into(),
            d_model: 32,
            n_heads: 2,
            n_layers: 2,
            d_ff: 64,
            max_len: 48,
            subword_budget: 250,
            ..TransformerConfig::roberta_sim()
        },
        train: TrainConfig { epochs, lr: 3e-3, batch_size: 8, ..Default::default() },
        ..Default::default()
    };
    let extractor = Arc::new(TransformerExtractor::train(&refs, &dataset.labels, options));
    let texts = dataset.texts();

    // Throughput sweep: per-request baseline vs micro-batched serving,
    // same weights, same single worker, growing concurrency. With
    // `--quantized`, a third arm serves the int8 encoder under the same
    // micro-batching config as the f32 packed arm.
    let mut schedules: Vec<(&str, Arc<dyn ExtractEngine>, BatchConfig)> = vec![
        (
            "unbatched",
            Arc::new(PerRequestEngine(Arc::clone(&extractor))),
            BatchConfig { max_batch: 1, max_delay: Duration::ZERO, ..Default::default() },
        ),
        (
            "microbatch",
            Arc::new(PackedEngine(Arc::clone(&extractor))),
            BatchConfig { max_batch: 8, max_delay: Duration::from_millis(1), ..Default::default() },
        ),
    ];
    if args.has("quantized") {
        schedules.push((
            "quantized",
            Arc::new(gs_pipeline::QuantizedEngine::from_extractor(&extractor)),
            BatchConfig { max_batch: 8, max_delay: Duration::from_millis(1), ..Default::default() },
        ));
    }
    let mut cells = Vec::new();
    let mut schedule_stats = Vec::new();
    let mut batched_16 = 0.0f64;
    let mut unbatched_16 = 0.0f64;
    let mut quantized_16 = 0.0f64;
    // serve.batch.size accumulates across schedules; per-schedule means
    // come from deltas of its running (sum, count).
    let (mut batch_sum, mut batch_count) = (0.0f64, 0u64);
    for (name, engine, batch) in &schedules {
        let server = Server::start(
            Arc::clone(engine),
            ServerConfig { batch: batch.clone(), ..Default::default() },
        )
        .expect("server");
        for clients in [1usize, 4, 16] {
            let result = run_cell(server.addr(), &texts, clients, requests, trials);
            let rps = result.throughput();
            println!(
                "{name:>10} clients={clients:<3} ok={:<5} shed={:<4} {:>8.1} req/s p95={:.1}ms",
                result.ok,
                result.shed,
                rps,
                quantile(&result.latencies, 0.95) * 1e3,
            );
            if clients == 16 {
                match *name {
                    "unbatched" => unbatched_16 = rps,
                    "quantized" => quantized_16 = rps,
                    _ => batched_16 = rps,
                }
            }
            cells.push(cell_json(name, clients, &result));
        }
        server.shutdown();
        let hist = gs_obs::snapshot().and_then(|s| s.histogram("serve.batch.size").cloned());
        let (sum, count) = hist.map_or((batch_sum, batch_count), |h| (h.sum, h.total));
        let dispatched = count.saturating_sub(batch_count);
        let mean_batch = if dispatched == 0 { 0.0 } else { (sum - batch_sum) / dispatched as f64 };
        (batch_sum, batch_count) = (sum, count);
        println!("{name:>10} dispatched {dispatched} batches, mean size {mean_batch:.2}");
        schedule_stats.push(Json::obj(vec![
            ("scheduling", Json::from(*name)),
            (
                "engine",
                Json::from(match *name {
                    "unbatched" => "per-request taped single-text forward",
                    "quantized" => "int8 packed tape-free batched forward",
                    _ => "packed tape-free batched forward",
                }),
            ),
            ("max_batch", Json::from(batch.max_batch)),
            ("dispatched_batches", Json::from(dispatched)),
            ("mean_batch_size", Json::from(mean_batch)),
        ]));
    }

    // Overload run: tiny queue + flood; the service must answer quickly
    // with 503s instead of queueing without bound.
    let overload_server = Server::start(
        Arc::new(PackedEngine(Arc::clone(&extractor))),
        ServerConfig {
            batch: BatchConfig {
                max_batch: 1,
                max_delay: Duration::ZERO,
                queue_capacity: 2,
                workers: 1,
            },
            ..Default::default()
        },
    )
    .expect("server");
    let overload = run_fleet(overload_server.addr(), &texts, 16, requests);
    println!(
        "  overload clients=16  ok={:<5} shed={:<4} ({:.0}% shed)",
        overload.ok,
        overload.shed,
        100.0 * overload.shed as f64 / (overload.ok + overload.shed).max(1) as f64,
    );
    overload_server.shutdown();

    let mut summary_fields = vec![
        ("bench", Json::from("servebench")),
        ("corpus_size", Json::from(size)),
        ("requests_per_client", Json::from(requests)),
        ("trials_per_cell", Json::from(trials)),
        ("schedules", Json::Arr(schedule_stats)),
        ("cells", Json::Arr(cells)),
        ("speedup_at_16_clients", Json::from(batched_16 / unbatched_16.max(1e-9))),
        ("microbatch_beats_unbatched", Json::from(batched_16 > unbatched_16)),
    ];
    if args.has("quantized") {
        summary_fields.push((
            "quantized_vs_f32_at_16_clients",
            Json::from(quantized_16 / batched_16.max(1e-9)),
        ));
    }
    summary_fields.extend([(
        "overload",
        Json::obj(vec![
            ("ok", Json::from(overload.ok)),
            ("shed", Json::from(overload.shed)),
            ("other", Json::from(overload.other)),
            (
                "shed_fraction",
                Json::from(
                    overload.shed as f64
                        / (overload.ok + overload.shed + overload.other).max(1) as f64,
                ),
            ),
        ]),
    )]);
    let summary = Json::obj(summary_fields);

    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out, summary.to_string()).expect("write summary");
    println!("wrote {out}");

    gs_bench::obs::finish(&args);
}
