//! Objective-store benchmark: sustained upsert throughput per sync
//! policy, WAL replay (recovery) time as a function of log size, and
//! concurrent read latency while a writer is ingesting.
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin storebench --
//!       [--records N] [--smoke] [--out PATH]
//!
//! `--smoke` shrinks every dimension for CI (a few hundred records); the
//! full run defaults to 5000 records per cell. Writes
//! `results/BENCH_store.json`.

use gs_bench::Args;
use gs_serve::Json;
use gs_store::{ObjectiveDb, ObjectiveRecord, StoreConfig, SyncPolicy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gs-storebench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic record stream; `salt` varies the detail fields so the
/// same keys can be re-ingested as merges rather than no-ops.
fn record(i: usize, salt: usize) -> ObjectiveRecord {
    ObjectiveRecord {
        company: format!("Company-{:03}", i % 200),
        document: format!("report-{}", i % 11),
        objective: format!(
            "Objective #{i}: cut scope {} emissions {}% by {}.",
            1 + i % 3,
            5 + i % 60,
            2026 + i % 14
        ),
        action: Some("Cut".to_string()),
        amount: Some(format!("{}%", 5 + (i + salt) % 60)),
        qualifier: (!i.is_multiple_of(3)).then(|| format!("scope {} emissions", 1 + i % 3)),
        baseline: i.is_multiple_of(4).then(|| "vs. 2019".to_string()),
        deadline: Some((2026 + (i + salt) % 14).to_string()),
        score: ((i + salt) % 1000) as f64 / 999.0,
        ..ObjectiveRecord::default()
    }
}

fn config(sync: SyncPolicy) -> StoreConfig {
    StoreConfig { shards: 8, sync, ..StoreConfig::default() }
}

fn policy_name(sync: SyncPolicy) -> &'static str {
    match sync {
        SyncPolicy::Always => "fsync_always",
        SyncPolicy::EveryN(_) => "fsync_every_64",
        SyncPolicy::OsOnly => "os_only",
    }
}

/// Upserts/sec for the three streaming paths (fresh insert, idempotent
/// repeat, field-level merge) under one sync policy.
fn upsert_dimension(n: usize, sync: SyncPolicy) -> Json {
    let dir = tmp_dir(policy_name(sync));
    let (db, _) = ObjectiveDb::open(&dir, config(sync)).expect("open");

    let mut cells = Vec::new();
    for (path, salt) in [("fresh", 0usize), ("repeat", 0), ("merge", 7)] {
        let start = Instant::now();
        for i in 0..n {
            db.upsert(&record(i, salt)).expect("upsert");
        }
        let secs = start.elapsed().as_secs_f64();
        let ops_per_sec = n as f64 / secs.max(1e-9);
        println!(
            "upserts {:>14} {path:6}: {ops_per_sec:10.0} ops/s ({n} records, {:.3}s)",
            policy_name(sync),
            secs
        );
        cells.push(Json::obj(vec![
            ("path", Json::from(path)),
            ("records", Json::from(n as u64)),
            ("seconds", Json::from(secs)),
            ("upserts_per_sec", Json::from(ops_per_sec)),
        ]));
    }
    db.sync_all().expect("sync");
    let wal_bytes = db.wal_bytes();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    Json::obj(vec![
        ("sync_policy", Json::from(policy_name(sync))),
        ("final_wal_bytes", Json::from(wal_bytes)),
        ("cells", Json::Arr(cells)),
    ])
}

/// Recovery (replay) time for logs of increasing size, measured by
/// reopening a store populated with `size` distinct records.
fn recovery_dimension(sizes: &[usize]) -> Json {
    let mut cells = Vec::new();
    for &size in sizes {
        let dir = tmp_dir(&format!("recovery-{size}"));
        {
            let (db, _) = ObjectiveDb::open(&dir, config(SyncPolicy::OsOnly)).expect("open");
            for i in 0..size {
                db.upsert(&record(i, 0)).expect("populate");
            }
            db.sync_all().expect("sync");
        }
        let start = Instant::now();
        let (db, report) = ObjectiveDb::open(&dir, config(SyncPolicy::OsOnly)).expect("reopen");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(db.len(), size, "replay lost records");
        let bytes = db.wal_bytes();
        println!(
            "recovery {size:6} records: {:8.1} ms  ({} frames, {bytes} bytes)",
            secs * 1e3,
            report.frames()
        );
        cells.push(Json::obj(vec![
            ("records", Json::from(size as u64)),
            ("frames", Json::from(report.frames() as u64)),
            ("wal_bytes", Json::from(bytes)),
            ("recovery_ms", Json::from(secs * 1e3)),
            ("records_per_sec", Json::from(size as f64 / secs.max(1e-9))),
        ]));
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    Json::obj(vec![("dimension", Json::from("recovery")), ("cells", Json::Arr(cells))])
}

/// Read latency percentiles while a writer ingests: readers spin on
/// `by_company` point lookups against the lock-free view path.
fn read_under_write_dimension(n: usize, readers: usize) -> Json {
    let db = Arc::new(ObjectiveDb::ephemeral(config(SyncPolicy::OsOnly)));
    // Pre-populate so early reads have real work to do.
    for i in 0..n / 2 {
        db.upsert(&record(i, 0)).expect("prepopulate");
    }
    let stop = Arc::new(AtomicBool::new(false));

    let (write_secs, written, mut latencies) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let db = db.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    let mut reader = db.reader();
                    let mut samples: Vec<u64> = Vec::new();
                    let mut i = r;
                    while !stop.load(Ordering::Relaxed) {
                        let company = format!("Company-{:03}", i % 200);
                        let start = Instant::now();
                        let records = reader.by_company(&company);
                        samples.push(start.elapsed().as_nanos() as u64);
                        std::hint::black_box(records.len());
                        i += 1;
                    }
                    samples
                })
            })
            .collect();

        let start = Instant::now();
        for i in n / 2..n {
            db.upsert(&record(i, 0)).expect("upsert under read load");
        }
        let write_secs = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().expect("reader thread"));
        }
        (write_secs, n - n / 2, all)
    });

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        latencies[((latencies.len() - 1) as f64 * p) as usize]
    };
    let (p50, p99) = (pct(0.50), pct(0.99));
    println!(
        "reads under write load: {} samples, p50 {p50} ns, p99 {p99} ns; \
         writer sustained {:.0} upserts/s",
        latencies.len(),
        written as f64 / write_secs.max(1e-9)
    );
    Json::obj(vec![
        ("dimension", Json::from("read_under_write")),
        ("reader_threads", Json::from(readers as u64)),
        ("read_samples", Json::from(latencies.len() as u64)),
        ("read_p50_ns", Json::from(p50)),
        ("read_p99_ns", Json::from(p99)),
        ("writer_upserts_per_sec", Json::from(written as f64 / write_secs.max(1e-9))),
    ])
}

fn main() {
    let args = Args::from_env();
    let collector = gs_bench::obs::init(&args);
    let smoke = args.has("smoke");
    let n: usize = args.get_or("records", if smoke { 200 } else { 5000 });
    let out = args.get("out").unwrap_or("results/BENCH_store.json").to_string();

    let upserts = Json::Arr(vec![
        upsert_dimension(n, SyncPolicy::Always),
        upsert_dimension(n, SyncPolicy::EveryN(64)),
        upsert_dimension(n, SyncPolicy::OsOnly),
    ]);
    let recovery_sizes: Vec<usize> = [n / 4, n / 2, n].into_iter().filter(|&s| s > 0).collect();
    let recovery = recovery_dimension(&recovery_sizes);
    let reads = read_under_write_dimension(n, 4);

    let host_cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let summary = Json::obj(vec![
        ("benchmark", Json::from("gs-store log-structured objective database")),
        ("host_cores", Json::from(host_cores as u64)),
        ("smoke", Json::from(smoke)),
        ("records_per_cell", Json::from(n as u64)),
        ("upsert_throughput", upserts),
        ("recovery", recovery),
        ("concurrent_reads", reads),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, summary.to_string()).expect("write summary");
    println!("wrote {out}");
    drop(collector);
    gs_bench::obs::finish(&args);
}
