//! Model-checker and instrumentation benchmark for `gs-race`.
//!
//! Three sections:
//!
//! 1. **Instrumentation overhead** (any build): an identical pool-style
//!    claim-loop stress — threads racing a shared claim counter, storing
//!    per-slot results, and updating a mutexed aggregate — written twice,
//!    once over `gs_race::sync` wrappers and once over raw `std::sync`
//!    primitives. In the default build the wrappers are `#[repr(transparent)]`
//!    `#[inline(always)]` passthroughs, so the factor must stay within the
//!    ≤1.05x product gate (`--check` turns the gate into a hard exit code).
//! 2. **Interleavings/sec** (`--features race-model` only): exhaustive DFS
//!    exploration speed over the clean epoch/pool/batcher/arena models.
//! 3. **Mutation catch rate** (`--features race-model` only): the fraction
//!    of the ≥10 seeded concurrency bugs the checker catches.
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin racebench -- [--smoke] [--check]
//!       [--trials N] [--out PATH] [--merge-from PATH]
//!
//! Writes `results/BENCH_race.json`. The canonical file combines both
//! builds: run the `race-model` build first, then the default build with
//! `--merge-from` pointing at the first run's output — the passthrough
//! overhead numbers (the ones the 1.05x gate is about) replace the gated
//! ones while the exploration/mutation sections are carried over.

use gs_bench::Args;
use gs_serve::Json;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Section 1: pool-stress overhead, wrapped vs raw.
// ---------------------------------------------------------------------------

/// Raw-std shim with the same call surface as `gs_race::sync`, so the two
/// stress bodies below are generated from one macro and differ only in the
/// primitive types they touch.
mod rawsync {
    pub use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    /// `std::sync::Mutex` with the wrapper's poison-recovering `lock()`.
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }
    }
}

/// The claim-loop stress gs-par's fork-join scopes run in their hot path:
/// every iteration is one `fetch_add` claim plus one result store, with a
/// mutexed aggregate update every 1024 claims. Returns a checksum so the
/// optimizer cannot elide the work.
macro_rules! stress_impl {
    ($name:ident, $sync:ident) => {
        fn $name(threads: usize, total: usize) -> u64 {
            use $sync::{AtomicU64, AtomicUsize, Mutex, Ordering};
            let next = AtomicUsize::new(0);
            let slots: Vec<AtomicU64> = (0..1024).map(|_| AtomicU64::new(0)).collect();
            let aggregate = Mutex::new(0u64);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        slots[i % slots.len()].store(i as u64, Ordering::Relaxed);
                        if i.is_multiple_of(1024) {
                            *aggregate.lock() += 1;
                        }
                    });
                }
            });
            let sum: u64 = slots.iter().map(|s| s.load(Ordering::Relaxed)).sum();
            let agg = *aggregate.lock();
            sum.wrapping_add(agg)
        }
    };
}

mod gssync {
    pub use gs_race::sync::{AtomicU64, AtomicUsize, Mutex, Ordering};
}

stress_impl!(stress_wrapped, gssync);
stress_impl!(stress_raw, rawsync);

fn time_ms(mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn overhead_section(trials: usize, total: usize, threads: usize) -> (Json, f64) {
    // Warm both paths (thread spawn, allocator, wrapper gate).
    std::hint::black_box(stress_wrapped(threads, total / 4));
    std::hint::black_box(stress_raw(threads, total / 4));
    // Interleave the paths in wrapped/raw pairs and gate on the median of
    // per-pair ratios: clock drift and background load then land on both
    // sides of each ratio, instead of biasing whichever block ran second.
    let mut wrapped = Vec::with_capacity(trials);
    let mut raw = Vec::with_capacity(trials);
    let mut ratios = Vec::with_capacity(trials);
    for _ in 0..trials {
        let w = time_ms(|| {
            std::hint::black_box(stress_wrapped(threads, total));
        });
        let r = time_ms(|| {
            std::hint::black_box(stress_raw(threads, total));
        });
        ratios.push(w / r.max(1e-9));
        wrapped.push(w);
        raw.push(r);
    }
    let wrapped_ms = median(wrapped);
    let raw_ms = median(raw);
    let factor = median(ratios);
    println!(
        "pool stress ({threads} threads, {total} claims): wrapped {wrapped_ms:.2} ms, \
         raw {raw_ms:.2} ms, overhead {factor:.3}x"
    );
    let json = Json::obj(vec![
        ("threads", Json::from(threads as u64)),
        ("claims", Json::from(total as u64)),
        ("wrapped_median_ms", Json::from(wrapped_ms)),
        ("raw_median_ms", Json::from(raw_ms)),
        ("overhead_factor", Json::from(factor)),
        ("instrumentation_compiled", Json::from(cfg!(feature = "race-model"))),
    ]);
    (json, factor)
}

// ---------------------------------------------------------------------------
// Sections 2 + 3: model exploration throughput and mutation catch rate.
// ---------------------------------------------------------------------------

#[cfg(feature = "race-model")]
fn model_sections(smoke: bool) -> (Json, Json) {
    use gs_race::model::ExploreOpts;
    use gs_race::models::AnyBug;

    let opts = ExploreOpts {
        max_schedules: if smoke { 2_000 } else { 100_000 },
        max_preemptions: 2,
        max_steps: 10_000,
        random_seed: None,
    };

    // Exploration throughput over the clean models (zero findings).
    let mut rows = Vec::new();
    let (mut schedules, mut steps, mut seconds) = (0u64, 0u64, 0f64);
    let clean_runs: Vec<(&str, gs_race::model::Report)> = vec![
        ("epoch", gs_race::models::epoch::run(None, opts.clone())),
        ("pool", gs_race::models::pool::run(None, opts.clone())),
        ("batcher", gs_race::models::batcher::run(None, opts.clone())),
        ("arena", gs_race::models::arena::run(None, opts.clone())),
    ];
    for (name, report) in clean_runs {
        assert!(report.failure.is_none(), "clean model {name} produced a finding");
        schedules += report.schedules as u64;
        steps += report.steps as u64;
        rows.push(Json::obj(vec![
            ("model", Json::from(name)),
            ("schedules", Json::from(report.schedules as u64)),
            ("steps", Json::from(report.steps as u64)),
            ("exhaustive", Json::from(report.exhaustive)),
        ]));
    }
    let start = Instant::now();
    let again = gs_race::models::epoch::run(None, opts.clone());
    seconds += start.elapsed().as_secs_f64();
    let per_sec = again.schedules as f64 / seconds.max(1e-9);
    println!(
        "exploration: {schedules} schedules / {steps} steps over 4 clean models; \
         ~{per_sec:.0} interleavings/sec (epoch re-run)"
    );
    let explore = Json::obj(vec![
        ("clean_models", Json::Arr(rows)),
        ("total_schedules", Json::from(schedules)),
        ("total_steps", Json::from(steps)),
        ("interleavings_per_sec", Json::from(per_sec)),
    ]);

    // Mutation catch rate over every seeded bug.
    let bugs = AnyBug::all();
    let mut caught = 0usize;
    let mut rows = Vec::new();
    for bug in &bugs {
        let report = bug.run(opts.clone());
        let hit = report.failure.is_some();
        caught += usize::from(hit);
        rows.push(Json::obj(vec![
            ("bug", Json::from(bug.name())),
            ("caught", Json::from(hit)),
            ("schedules", Json::from(report.schedules as u64)),
        ]));
    }
    let rate = caught as f64 / bugs.len() as f64;
    println!("mutation catch rate: {caught}/{} ({rate:.2})", bugs.len());
    let mutation = Json::obj(vec![
        ("seeded_bugs", Json::from(bugs.len() as u64)),
        ("caught", Json::from(caught as u64)),
        ("catch_rate", Json::from(rate)),
        ("bugs", Json::Arr(rows)),
    ]);
    (explore, mutation)
}

#[cfg(not(feature = "race-model"))]
fn model_sections(_smoke: bool) -> (Json, Json) {
    let note = "compiled without --features race-model; run the race CI job for these numbers";
    println!("model sections skipped: {note}");
    let skipped = Json::obj(vec![("skipped", Json::from(true)), ("note", Json::from(note))]);
    (skipped.clone(), skipped)
}

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);
    let smoke = args.has("smoke");
    let trials: usize = args.get_or("trials", if smoke { 3 } else { 5 });
    let total: usize = args.get_or("claims", if smoke { 200_000 } else { 2_000_000 });
    let threads: usize = args.get_or("threads", 4);
    let out = args.get("out").unwrap_or("results/BENCH_race.json").to_string();

    let (overhead, factor) = overhead_section(trials, total, threads);
    let (mut explore, mut mutation) = model_sections(smoke);

    // A passthrough build cannot run the model sections itself; carry them
    // over from a prior `race-model` run when asked to.
    if !cfg!(feature = "race-model") {
        if let Some(path) = args.get("merge-from") {
            let prior = std::fs::read_to_string(path).expect("read --merge-from file");
            let prior = gs_serve::json::parse(&prior).expect("parse --merge-from file");
            for (section, slot) in [("exploration", &mut explore), ("mutation", &mut mutation)] {
                match prior.get(section) {
                    Some(v) if v.get("skipped").is_none() => *slot = v.clone(),
                    _ => println!("--merge-from: no usable `{section}` section in {path}"),
                }
            }
        }
    }

    let summary = Json::obj(vec![
        ("benchmark", Json::from("gs-race model checker & instrumentation")),
        ("smoke", Json::from(smoke)),
        ("overhead", overhead),
        ("exploration", explore),
        ("mutation", mutation),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, summary.to_string()).expect("write summary");
    println!("wrote {out}");

    // The product gate: the disabled instrumentation path must be free.
    // Only enforced for the passthrough build — with the model feature
    // compiled in, every op legitimately pays the runtime gate check.
    if args.has("check") && !cfg!(feature = "race-model") && factor > 1.05 {
        eprintln!("FAIL: passthrough overhead {factor:.3}x exceeds the 1.05x gate");
        std::process::exit(1);
    }
}
