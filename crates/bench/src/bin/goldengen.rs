//! Golden-fixture generator for `tests/golden_extraction.rs`.
//!
//! Trains the tiny fixed-seed extractor once and freezes everything the
//! regression test needs into three plain-text files:
//!
//! - `corpus.txt` — the training texts, one per line, in training order
//!   (the test rebuilds the BPE tokenizer from these deterministically);
//! - `params.txt` — every trained weight as hex `f32` bits
//!   (`gs_tensor::serialize::save_params_text`), bit-exact and serde-free;
//! - `expected.txt` — each held-out evaluation text (`>>> text` lines)
//!   followed by the exact `field<TAB>value` pairs the frozen model
//!   extracts.
//!
//! Regenerate with `cargo run --release -p gs-bench --bin goldengen` from
//! the repo root whenever the model, tokenizer, or decoding intentionally
//! changes; the test failing without such a change means extraction
//! behavior drifted. Fixture constants (architecture, seed, label set)
//! live in this file and are mirrored in the test.
//!
//! With `--ingest`, regenerates the *ingest* fixture instead — the frozen
//! detection stage (`detector.txt`), a full synthetic report
//! (`report.txt`, fixed seed), and the bit-exact ingest snapshot
//! (`ingest_expected.txt`, see `gs_pipeline::ingest_snapshot`) the frozen
//! detector + extractor produce on it. The extractor itself is *loaded*
//! from the committed `corpus.txt`/`params.txt`, never retrained, so the
//! ingest fixture stays consistent with the extraction fixture.
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin goldengen --
//!       [--ingest] [--out DIR] [--obs-jsonl PATH] [--no-obs] [--no-obs-report]

use gs_bench::Args;
use gs_core::{Annotations, MultiSpanPolicy, Objective};
use gs_models::transformer::{
    ExtractorOptions, ModelFamily, TrainConfig, TransformerConfig, TransformerExtractor,
};
use gs_models::{DetailExtractor, LinearDetector, LinearDetectorConfig};
use gs_pipeline::{ingest_report_text, ingest_snapshot, GoalSpotter};
use gs_store::ObjectiveStore;
use gs_text::labels::LabelSet;
use gs_text::{Normalizer, Tokenizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::Path;

/// The frozen architecture — mirrored in `tests/golden_extraction.rs`.
fn golden_config() -> TransformerConfig {
    TransformerConfig {
        name: "golden-roberta".into(),
        family: ModelFamily::Roberta,
        d_model: 32,
        n_heads: 2,
        n_layers: 1,
        d_ff: 64,
        max_len: 48,
        dropout: 0.05,
        subword_budget: 300,
    }
}

/// A small clean corpus where the deadline always follows "by" and the
/// amount is always a percentage; annotations are derivable from the
/// template so the fixture stays self-describing.
fn corpus() -> Vec<Objective> {
    let verbs = ["Reduce", "Cut", "Lower", "Decrease", "Trim", "Shrink"];
    let things = ["emissions", "waste", "usage", "consumption", "footprint"];
    let mut out = Vec::new();
    let mut id = 0;
    for (vi, v) in verbs.iter().enumerate() {
        for (ti, t) in things.iter().enumerate() {
            let pct = 5 + (vi * 7 + ti * 13) % 90;
            let year = 2025 + (vi + ti) % 20;
            let text = format!("{v} {t} by {pct}% by {year}.");
            let ann = Annotations::new()
                .with("Action", v)
                .with("Qualifier", t)
                .with("Amount", &format!("{pct}%"))
                .with("Deadline", &year.to_string());
            out.push(Objective::annotated(id, text, ann));
            id += 1;
        }
    }
    out
}

/// Held-out (verb, thing, amount, year) combinations never seen in
/// training; the test asserts the exact spans extracted from these.
const EVAL_TEXTS: &[&str] = &[
    "Shrink footprint by 33% by 2031.",
    "Cut usage by 44% by 2033.",
    "Reduce waste by 9% by 2040.",
    "Lower emissions by 61% by 2027.",
    "Trim consumption by 18% by 2038.",
];

/// Rebuilds the frozen golden extractor from the committed fixture files,
/// exactly as `tests/golden_extraction.rs` does.
fn load_golden_extractor(out: &Path) -> TransformerExtractor {
    let corpus = std::fs::read_to_string(out.join("corpus.txt"))
        .expect("read corpus.txt (run goldengen without --ingest first)");
    let texts: Vec<&str> = corpus.lines().collect();
    let config = golden_config();
    let tokenizer = Tokenizer::train_bpe(&texts, Normalizer::default(), config.subword_budget);
    let params =
        gs_tensor::serialize::load_params_text_file(&out.join("params.txt")).expect("params.txt");
    let labels = LabelSet::sustainability_goals();
    let num_classes = labels.num_classes();
    TransformerExtractor::from_parts(
        labels,
        tokenizer,
        config,
        num_classes,
        params,
        MultiSpanPolicy::First,
    )
}

/// `--ingest` mode: freeze the detection stage and pin the full
/// report → parse → detect → extract → store path.
fn generate_ingest_fixture(out: &Path) {
    let extractor = load_golden_extractor(out);

    // The detector trains on the golden corpus vs boilerplate noise plus
    // indicator names — the hard negatives an ingested table serves up.
    let data = corpus();
    let mut detection_data: Vec<(&str, bool)> =
        data.iter().map(|o| (o.text.as_str(), true)).collect();
    detection_data.extend(gs_data::banks::NOISE_BLOCKS.iter().map(|n| (*n, false)));
    detection_data.extend(gs_data::banks::INDICATOR_NAMES.iter().map(|n| (*n, false)));
    println!("training golden detector on {} examples...", detection_data.len());
    let detector = LinearDetector::train(&detection_data, LinearDetectorConfig::default());
    std::fs::write(out.join("detector.txt"), detector.save_text()).expect("write detector.txt");

    let mut rng = StdRng::seed_from_u64(5);
    let report = gs_data::fullreport::generate_full_report(
        "Golden Corp",
        "CSR Report 2026",
        &gs_data::fullreport::FullReportConfig::default(),
        &mut rng,
    );
    std::fs::write(out.join("report.txt"), &report.text).expect("write report.txt");

    let gs = GoalSpotter::from_parts(detector, extractor, 0.5);
    let store = ObjectiveStore::new();
    let (stats, objectives) =
        ingest_report_text(&gs, "Golden Corp", "golden-report", &report.text, &store);
    let doc = gs_ingest::parse(&report.text);
    let snapshot = ingest_snapshot(&doc, &stats, &objectives);
    std::fs::write(out.join("ingest_expected.txt"), &snapshot).expect("write ingest_expected");
    println!(
        "wrote detector.txt, report.txt ({} bytes), ingest_expected.txt ({} objectives; {}/{} truths detected)",
        report.text.len(),
        objectives.len(),
        report
            .truths
            .iter()
            .filter(|t| objectives
                .iter()
                .any(|o| o.byte_range.0 < t.span.1 && t.span.0 < o.byte_range.1))
            .count(),
        report.truths.len(),
    );
}

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);
    let out_dir = args.get("out").unwrap_or("tests/golden").to_string();
    std::fs::create_dir_all(&out_dir).expect("create fixture directory");
    let out = Path::new(&out_dir);
    if args.has("ingest") {
        generate_ingest_fixture(out);
        gs_bench::obs::finish(&args);
        return;
    }

    let data = corpus();
    let refs: Vec<&Objective> = data.iter().collect();
    let labels = LabelSet::sustainability_goals();
    let options = ExtractorOptions {
        model: golden_config(),
        train: TrainConfig { epochs: 30, lr: 3e-3, batch_size: 8, seed: 1, ..Default::default() },
        multi_span: MultiSpanPolicy::First,
        ..Default::default()
    };
    println!("training golden extractor on {} objectives...", refs.len());
    let extractor = TransformerExtractor::train(&refs, &labels, options);

    let mut corpus_txt = String::new();
    for o in &data {
        writeln!(corpus_txt, "{}", o.text).unwrap();
    }
    std::fs::write(out.join("corpus.txt"), corpus_txt).expect("write corpus.txt");

    gs_tensor::serialize::save_params_text_file(extractor.model().store(), &out.join("params.txt"))
        .expect("write params.txt");

    let mut expected = String::new();
    for text in EVAL_TEXTS {
        let details = extractor.extract(text);
        writeln!(expected, ">>> {text}").unwrap();
        for (kind, value) in &details.fields {
            if !value.is_empty() {
                writeln!(expected, "{kind}\t{value}").unwrap();
            }
        }
        expected.push('\n');
        println!("{text} -> {:?}", details.fields);
    }
    std::fs::write(out.join("expected.txt"), expected).expect("write expected.txt");

    println!(
        "wrote {}/corpus.txt, params.txt ({} weights), expected.txt",
        out_dir,
        extractor.model().store().num_weights()
    );

    gs_bench::obs::finish(&args);
}
