//! Regenerates **Figure 4**: the effect of internal design decisions on the
//! *Sustainability Goals* dataset —
//!
//! 1. per-target-label F1 (with each label's annotation availability, which
//!    the paper uses to explain the differences);
//! 2. transformer model selection (RoBERTa-sim / DistilRoBERTa-sim /
//!    BERT-sim / DistilBERT-sim), effectiveness and fine-tuning time;
//! 3. convergence across epochs for several learning rates.
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin figure4 [--quick] [--json PATH]
//!       [--sg-size N] [--pretrain-size N] [--pretrain-epochs N]

use gs_bench::Args;
use gs_core::Objective;
use gs_data::Dataset;
use gs_eval::{fmt2, fmt_duration, TextTable};
use gs_models::transformer::{
    pretrain_encoder_shared, ExtractorOptions, PretrainConfig, PretrainedEncoder, TrainConfig,
    TransformerConfig, TransformerExtractor,
};
use gs_pipeline::evaluate_extractor;
use std::sync::Arc;

struct Harness {
    dataset: Dataset,
    pretrain_corpus: Vec<String>,
    pretrain: PretrainConfig,
    train: TrainConfig,
    json: serde_json::Map<String, serde_json::Value>,
}

impl Harness {
    fn pretrain_base(&self, model: &TransformerConfig) -> Arc<PretrainedEncoder> {
        let texts: Vec<&str> = self.pretrain_corpus.iter().map(String::as_str).collect();
        pretrain_encoder_shared(&texts, model, &self.pretrain)
    }

    fn split(&self) -> (Vec<&Objective>, Vec<&Objective>) {
        self.dataset.split(0.2, 1)
    }

    /// Part 1: per-target-label F1 with annotation availability.
    fn per_label(&mut self) {
        println!("\n## Figure 4a — effectiveness per target label\n");
        let (train, test) = self.split();
        let base = self.pretrain_base(&TransformerConfig::roberta_sim());
        let ex = TransformerExtractor::train(
            &train,
            &self.dataset.labels,
            ExtractorOptions { train: self.train.clone(), base: Some(base), ..Default::default() },
        );
        let result = evaluate_extractor(&ex, &test, &self.dataset.labels);

        // Annotation availability over the whole dataset (paper §4.3 cites
        // Action 85%, Baseline 14%, Deadline 34%).
        let mut table = TextTable::new(&["Target label", "Available", "P", "R", "F1"]);
        let mut json_rows = Vec::new();
        for (kind, name) in self.dataset.labels.kind_names().enumerate() {
            let available = self
                .dataset
                .objectives
                .iter()
                .filter(|o| {
                    o.annotations.as_ref().and_then(|a| a.get(name)).is_some_and(|v| !v.is_empty())
                })
                .count() as f64
                / self.dataset.len() as f64;
            let c = &result.eval.per_field[kind];
            table.row(&[
                name.to_string(),
                format!("{:.0}%", available * 100.0),
                fmt2(c.precision()),
                fmt2(c.recall()),
                fmt2(c.f1()),
            ]);
            json_rows.push(serde_json::json!({
                "label": name, "available": available, "f1": c.f1(),
                "precision": c.precision(), "recall": c.recall(),
            }));
        }
        print!("{}", table.render());
        self.json.insert("per_label".into(), json_rows.into());
    }

    /// Part 2: transformer model selection.
    fn model_selection(&mut self) {
        println!("\n## Figure 4b — effect of the transformer model\n");
        let (train, test) = self.split();
        let mut table = TextTable::new(&["Model", "P", "R", "F1", "Pretrain", "Fine-tune"]);
        let mut json_rows = Vec::new();
        for model in TransformerConfig::figure4_variants() {
            let (base, pre_secs) = gs_eval::time_it(|| self.pretrain_base(&model));
            let (ex, ft_secs) = gs_eval::time_it(|| {
                TransformerExtractor::train(
                    &train,
                    &self.dataset.labels,
                    ExtractorOptions {
                        model: model.clone(),
                        train: self.train.clone(),
                        base: Some(base),
                        ..Default::default()
                    },
                )
            });
            let result = evaluate_extractor(&ex, &test, &self.dataset.labels);
            table.row(&[
                model.name.clone(),
                fmt2(result.precision()),
                fmt2(result.recall()),
                fmt2(result.f1()),
                fmt_duration(pre_secs),
                fmt_duration(ft_secs),
            ]);
            json_rows.push(serde_json::json!({
                "model": model.name, "f1": result.f1(),
                "pretrain_seconds": pre_secs, "finetune_seconds": ft_secs,
            }));
        }
        print!("{}", table.render());
        self.json.insert("model_selection".into(), json_rows.into());
    }

    /// Part 3: epochs x learning-rate convergence.
    fn convergence(&mut self, lrs: &[f32], checkpoints: &[usize]) {
        println!("\n## Figure 4c — epochs and learning rate (F1 at epoch checkpoints)\n");
        let (train, test) = self.split();
        let base = self.pretrain_base(&TransformerConfig::roberta_sim());
        let header: Vec<String> = std::iter::once("lr \\ epochs".to_string())
            .chain(checkpoints.iter().map(|c| c.to_string()))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(&header_refs);
        let mut json_rows = Vec::new();
        let max_epochs = *checkpoints.iter().max().expect("checkpoints");
        for &lr in lrs {
            let mut f1_at: Vec<(usize, f64)> = Vec::new();
            let labels = self.dataset.labels.clone();
            let test_ref = &test;
            let _ = TransformerExtractor::train_with_checkpoints(
                &train,
                &self.dataset.labels,
                ExtractorOptions {
                    train: TrainConfig { epochs: max_epochs, lr, ..self.train.clone() },
                    base: Some(Arc::clone(&base)),
                    ..Default::default()
                },
                &mut |epoch, view| {
                    if checkpoints.contains(&epoch) {
                        let result = evaluate_extractor(view, test_ref, &labels);
                        f1_at.push((epoch, result.f1()));
                    }
                },
            );
            let mut row = vec![format!("{lr:.0e}")];
            row.extend(f1_at.iter().map(|(_, f)| fmt2(*f)));
            table.row(&row);
            json_rows.push(serde_json::json!({
                "lr": lr,
                "checkpoints": f1_at.iter().map(|(e, f)| serde_json::json!({"epoch": e, "f1": f})).collect::<Vec<_>>(),
            }));
        }
        print!("{}", table.render());
        self.json.insert("convergence".into(), json_rows.into());
    }

    /// Extra ablation: weak-label matching policy (the paper's §5.3
    /// limitation / §7 future work).
    fn matching_policy(&mut self) {
        use gs_core::{MatchPolicy, WeakLabelConfig};
        println!("\n## Ablation — weak-label matching policy (paper §5.3/§7)\n");
        let (train, test) = self.split();
        let base = self.pretrain_base(&TransformerConfig::roberta_sim());
        let mut table = TextTable::new(&["Matching", "Weak-label match rate", "P", "R", "F1"]);
        let mut json_rows = Vec::new();
        for (name, policy) in [
            ("Exact (paper default)", MatchPolicy::Exact),
            ("Normalized", MatchPolicy::Normalized),
            ("Fuzzy (<=2 edits)", MatchPolicy::Fuzzy { max_edits: 2 }),
        ] {
            let ex = TransformerExtractor::train(
                &train,
                &self.dataset.labels,
                ExtractorOptions {
                    train: self.train.clone(),
                    weak_label: WeakLabelConfig { match_policy: policy, ..Default::default() },
                    base: Some(Arc::clone(&base)),
                    ..Default::default()
                },
            );
            let match_rate = ex.weak_stats.overall_match_rate();
            let result = evaluate_extractor(&ex, &test, &self.dataset.labels);
            table.row(&[
                name.to_string(),
                format!("{:.1}%", match_rate * 100.0),
                fmt2(result.precision()),
                fmt2(result.recall()),
                fmt2(result.f1()),
            ]);
            json_rows.push(serde_json::json!({
                "policy": name, "match_rate": match_rate, "f1": result.f1(),
            }));
        }
        print!("{}", table.render());
        self.json.insert("matching_policy".into(), json_rows.into());
    }

    /// Extra ablation: effect of MLM pretraining (our substitution's analog
    /// of "pretrained vs from-scratch").
    fn pretraining_effect(&mut self) {
        println!("\n## Ablation — effect of MLM pretraining\n");
        let (train, test) = self.split();
        let mut table = TextTable::new(&["Initialization", "P", "R", "F1"]);
        let mut json_rows = Vec::new();
        for (name, base) in [
            ("Random init", None),
            ("MLM-pretrained", Some(self.pretrain_base(&TransformerConfig::roberta_sim()))),
        ] {
            let ex = TransformerExtractor::train(
                &train,
                &self.dataset.labels,
                ExtractorOptions { train: self.train.clone(), base, ..Default::default() },
            );
            let result = evaluate_extractor(&ex, &test, &self.dataset.labels);
            table.row(&[
                name.to_string(),
                fmt2(result.precision()),
                fmt2(result.recall()),
                fmt2(result.f1()),
            ]);
            json_rows.push(serde_json::json!({"init": name, "f1": result.f1()}));
        }
        print!("{}", table.render());
        self.json.insert("pretraining".into(), json_rows.into());
    }
}

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);
    let quick = args.has("quick");
    let sg_size: usize =
        args.get_or("sg-size", if quick { 400 } else { gs_data::sustaingoals::PAPER_SIZE });
    let pretrain_n: usize = args.get_or("pretrain-size", if quick { 1200 } else { 4000 });
    let pretrain_epochs: usize = args.get_or("pretrain-epochs", if quick { 4 } else { 12 });
    let epochs: usize = args.get_or("epochs", if quick { 10 } else { 40 });

    let mut harness = Harness {
        dataset: gs_data::sustaingoals::generate(sg_size, 42),
        pretrain_corpus: gs_data::unlabeled::sustaingoals_corpus(pretrain_n, 777),
        pretrain: PretrainConfig { epochs: pretrain_epochs, ..Default::default() },
        train: TrainConfig { epochs, lr: 1e-3, ..Default::default() },
        json: serde_json::Map::new(),
    };

    println!(
        "Figure 4 reproduction on {} ({} objectives, single split seed 1)",
        harness.dataset.name,
        harness.dataset.len()
    );

    harness.per_label();
    harness.model_selection();
    if quick {
        harness.convergence(&[5e-4, 1e-3, 2e-3], &[2, 5, 10]);
    } else {
        let max = epochs.max(20);
        harness.convergence(&[5e-4, 1e-3, 2e-3], &[5, 10, max / 2, max]);
    }
    harness.matching_policy();
    harness.pretraining_effect();

    if let Some(path) = args.get("json") {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&serde_json::Value::Object(harness.json)).expect("json"),
        )
        .expect("write json");
        println!("\nwrote {path}");
    }

    gs_bench::obs::finish(&args);
}
