//! Regenerates **Table 6**: the extracted details for the top 2
//! sustainability objectives per company from the post-deployment corpus
//! (paper §5.1), plus the specificity comparison the paper discusses
//! (companies like C12/C13 stating amounts and timelines more often).
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin table6 [--quick] [--scale F]
//!       [--json PATH]

use gs_bench::deploy::{build_goalspotter, record_row, DeployBudget};
use gs_bench::Args;
use gs_eval::TextTable;
use gs_pipeline::process_corpus;
use gs_store::ObjectiveStore;
use std::path::Path;

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);
    let quick = args.has("quick");
    // Table 6 only needs enough corpus for top-2 per company.
    let scale: f64 = args.get_or("scale", if quick { 0.05 } else { 0.2 });
    let budget = if quick { DeployBudget::quick() } else { DeployBudget::full() };

    let gs = build_goalspotter(&budget, Path::new("results"));
    let corpus = gs_data::deployment::generate_corpus(scale, 20240511);
    let store = ObjectiveStore::new();
    let _ = process_corpus(&gs, &corpus, &store);

    println!(
        "\n## Table 6 — extracted details for the top 2 objectives per company (scale {scale})\n"
    );
    let mut table = TextTable::new(&[
        "Company",
        "Sustainability Objective",
        "Action",
        "Amount",
        "Qualifier",
        "Baseline",
        "Deadline",
    ]);
    let mut json_rows = Vec::new();
    for profile in gs_data::deployment::TABLE5 {
        for record in store.top_objectives(profile.name, 2) {
            table.row(&record_row(&record, 70));
            json_rows.push(record);
        }
    }
    print!("{}", table.render());

    println!("\n## Specificity per company (mean extracted fields per objective, paper §5.1)\n");
    let mut spec = store.specificity_by_company();
    spec.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut spec_table = TextTable::new(&["Company", "Mean fields/objective"]);
    for (company, mean) in &spec {
        spec_table.row(&[company.clone(), format!("{mean:.2}")]);
    }
    print!("{}", spec_table.render());

    if let Some(path) = args.get("json") {
        std::fs::write(path, gs_store::records_to_json(&json_rows)).expect("write json");
        println!("wrote {path}");
    }

    gs_bench::obs::finish(&args);
}
