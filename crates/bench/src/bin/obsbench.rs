//! Observability micro-benchmark: exercises the instrumented hot paths on a
//! small corpus and writes a machine-readable run summary built from the
//! `gs-obs` metrics registry.
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin obsbench
//!       [--size N] [--extracts N] [--epochs N] [--out PATH]
//!       [--obs-jsonl PATH] [--no-obs-report]
//!
//! Writes `results/BENCH_obs.json` (override with `--out`) containing
//! tokenization throughput, training steps/sec, and extraction-latency
//! percentiles, all pulled from the registry rather than ad-hoc timers.

use gs_bench::Args;
use gs_core::Objective;
use gs_models::transformer::{ExtractorOptions, TrainConfig, TransformerConfig};
use gs_pipeline::{GoalSpotter, GoalSpotterConfig};
use gs_text::{Normalizer, Tokenizer};
use std::time::Instant;

fn tiny_options(epochs: usize) -> GoalSpotterConfig {
    GoalSpotterConfig {
        extractor: ExtractorOptions {
            model: TransformerConfig {
                name: "obsbench-tiny".into(),
                d_model: 32,
                n_heads: 2,
                n_layers: 1,
                d_ff: 64,
                max_len: 48,
                subword_budget: 250,
                ..TransformerConfig::roberta_sim()
            },
            train: TrainConfig { epochs, lr: 3e-3, batch_size: 8, ..Default::default() },
            ..Default::default()
        },
        ..Default::default()
    }
}

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);
    let size: usize = args.get_or("size", 64);
    let extracts: usize = args.get_or("extracts", 200);
    let epochs: usize = args.get_or("epochs", 10);
    let out = args.get("out").unwrap_or("results/BENCH_obs.json").to_string();

    let dataset = gs_data::sustaingoals::generate(size, 42);
    let texts = dataset.texts();

    // Phase 1: tokenization throughput over the corpus.
    let tokenizer = Tokenizer::train_bpe(&texts, Normalizer::default(), 250);
    let tok_start = Instant::now();
    for text in &texts {
        let _ = tokenizer.encode(text);
    }
    let tok_seconds = tok_start.elapsed().as_secs_f64();

    // Phase 2: a small develop run (weak labeling + detector + extractor
    // training) to exercise the training telemetry.
    let objectives: Vec<&Objective> = dataset.objectives.iter().collect();
    let noise: Vec<&str> = gs_data::banks::NOISE_BLOCKS.to_vec();
    let train_start = Instant::now();
    let system = GoalSpotter::develop(&objectives, &noise, &dataset.labels, tiny_options(epochs));
    let train_seconds = train_start.elapsed().as_secs_f64();

    // Phase 3: repeated extraction for the latency histogram.
    for i in 0..extracts {
        let text = texts[i % texts.len()];
        let _ = system.extract(text);
    }

    let snapshot = gs_obs::snapshot().expect("collector installed");
    let tokens = snapshot.counter("text.tokenize.pieces");
    let steps = snapshot.counter("train.steps") + snapshot.counter("pretrain.steps");
    let extract_hist = snapshot.histogram("span.pipeline.extract");
    let summary = serde_json::json!({
        "bench": "obsbench",
        "corpus_size": size,
        "tokenize": {
            "tokens": tokens,
            "seconds": tok_seconds,
            "tokens_per_sec": tokens as f64 / tok_seconds.max(1e-9),
        },
        "train": {
            "steps": steps,
            "seconds": train_seconds,
            "steps_per_sec": steps as f64 / train_seconds.max(1e-9),
            "clip_events": snapshot.counter("train.clip_events"),
        },
        "extract_latency_seconds": extract_hist.map(|h| serde_json::json!({
            "n": h.total,
            "mean": h.mean(),
            "p50": h.quantile(0.50),
            "p95": h.quantile(0.95),
            "p99": h.quantile(0.99),
            "max": h.max,
        })),
        "weak_label_objectives": snapshot.counter("core.weak_label.objectives"),
    });

    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out, serde_json::to_string_pretty(&summary).expect("json"))
        .expect("write summary");
    println!("wrote {out}");

    gs_bench::obs::finish(&args);
}
