//! The GoalSpotter extraction server: loads (or trains) a transformer
//! extractor and serves it over HTTP with dynamic micro-batching (see
//! `gs-serve`).
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin gs_served --
//!       [--model PATH | --train-tiny] [--save-model PATH] [--quantized]
//!       [--addr HOST:PORT] [--max-batch N] [--max-delay-us N]
//!       [--queue-cap N] [--workers N] [--deadline-ms N]
//!       [--size N] [--epochs N] [--store-dir PATH]
//!
//! With `--quantized` the encoder weights are quantized to int8 (per-row
//! scales, f32 accumulation) after loading/training and the service runs
//! the quantized forward; spans match the f32 path on the golden
//! accuracy-tolerance suite.
//!
//! With `--model PATH` the extractor is restored from a
//! `TransformerExtractor::save_json` checkpoint; with `--train-tiny` (the
//! default when no model is given) a small extractor is trained on the
//! synthetic Sustainability Goals corpus first — handy for smoke tests.
//!
//! With `--store-dir PATH` the server opens (or creates) a persistent
//! `ObjectiveDb` there: extractions whose request body carries a `company`
//! are upserted, and `GET /v1/objectives?company=NAME` serves the stored
//! records. Re-starting against the same directory replays the logs.
//! The store also enables `POST /v1/ingest` — a quickly-trained linear
//! detector (synthetic objectives vs boilerplate + indicator-name noise)
//! pairs with the f32 extractor so whole reports flow through
//! parse → detect → extract → store with section provenance.
//!
//! The server prints `listening on http://ADDR` once ready and serves until
//! the process is killed. Try:
//!   curl -s localhost:8462/healthz
//!   curl -s localhost:8462/v1/extract -d '{"text": "Reduce emissions by 20% by 2030."}'
//!   curl -s localhost:8462/v1/extract -d '{"text": "Cut waste 10% by 2030.", "company": "Acme"}'
//!   curl -s 'localhost:8462/v1/objectives?company=Acme'

use gs_bench::Args;
use gs_core::Objective;
use gs_models::transformer::{
    ExtractorOptions, TrainConfig, TransformerConfig, TransformerExtractor,
};
use gs_models::{LinearDetector, LinearDetectorConfig};
use gs_pipeline::{DbStoreHook, ExtractorEngine, GoalSpotter, QuantizedEngine};
use gs_serve::{BatchConfig, ExtractEngine, IngestHook, ObjectiveStoreHook, Server, ServerConfig};
use gs_store::{ObjectiveDb, StoreConfig};
use std::sync::Arc;
use std::time::Duration;

fn tiny_extractor(size: usize, epochs: usize) -> TransformerExtractor {
    let dataset = gs_data::sustaingoals::generate(size, 42);
    let refs: Vec<&Objective> = dataset.objectives.iter().collect();
    let options = ExtractorOptions {
        model: TransformerConfig {
            name: "served-tiny".into(),
            d_model: 32,
            n_heads: 2,
            n_layers: 1,
            d_ff: 64,
            max_len: 48,
            subword_budget: 250,
            ..TransformerConfig::roberta_sim()
        },
        train: TrainConfig { epochs, lr: 3e-3, batch_size: 8, ..Default::default() },
        ..Default::default()
    };
    TransformerExtractor::train(&refs, &dataset.labels, options)
}

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);

    let extractor = match args.get("model") {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read --model {path:?}: {e}"));
            TransformerExtractor::load_json(&json)
                .unwrap_or_else(|e| panic!("cannot load --model {path:?}: {e}"))
        }
        None => {
            let size: usize = args.get_or("size", 64);
            let epochs: usize = args.get_or("epochs", 10);
            eprintln!(
                "no --model given: training a tiny extractor ({size} objectives, {epochs} epochs)"
            );
            tiny_extractor(size, epochs)
        }
    };
    if let Some(path) = args.get("save-model") {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, extractor.save_json()).expect("save model");
        eprintln!("saved model to {path}");
    }

    let config = ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8462").to_string(),
        batch: BatchConfig {
            max_batch: args.get_or("max-batch", 8),
            max_delay: Duration::from_micros(args.get_or("max-delay-us", 2_000)),
            queue_capacity: args.get_or("queue-cap", 256),
            workers: args.get_or("workers", 1),
        },
        default_deadline: Duration::from_millis(args.get_or("deadline-ms", 5_000)),
        ..Default::default()
    };
    let hook: Option<Arc<DbStoreHook>> = args.get("store-dir").map(|dir| {
        let (db, recovery) = ObjectiveDb::open(std::path::Path::new(dir), StoreConfig::default())
            .unwrap_or_else(|e| panic!("cannot open --store-dir {dir:?}: {e}"));
        eprintln!(
            "store {dir}: {} records replayed from {} frames ({} torn tails)",
            db.len(),
            recovery.frames(),
            recovery.torn_tails()
        );
        // A linear detector trains in well under a second; pairing it with
        // the (f32) extractor gives /v1/ingest a full detect → extract path
        // and scores store-hook upserts comparably to the batch pipeline.
        let dataset = gs_data::sustaingoals::generate(64, 42);
        let mut detection: Vec<(&str, bool)> =
            dataset.objectives.iter().map(|o| (o.text.as_str(), true)).collect();
        detection.extend(gs_data::banks::NOISE_BLOCKS.iter().map(|n| (*n, false)));
        detection.extend(gs_data::banks::INDICATOR_NAMES.iter().map(|n| (*n, false)));
        let detector = LinearDetector::train(&detection, LinearDetectorConfig::default());
        let spotter = Arc::new(GoalSpotter::from_parts(detector, extractor.clone(), 0.5));
        Arc::new(DbStoreHook::with_spotter(Arc::new(db), spotter))
    });
    let store = hook.clone().map(|h| h as Arc<dyn ObjectiveStoreHook>);
    let ingest = hook.map(|h| h as Arc<dyn IngestHook>);
    let engine: Arc<dyn ExtractEngine> = if args.has("quantized") {
        let engine = QuantizedEngine::from_extractor(&extractor);
        eprintln!(
            "serving int8 quantized encoder ({} bytes of quantized weights)",
            engine.0.model().quantized_bytes()
        );
        Arc::new(engine)
    } else {
        Arc::new(ExtractorEngine(extractor))
    };
    let server = Server::start_with_hooks(engine, config, store, ingest)
        .unwrap_or_else(|e| panic!("cannot start server: {e}"));
    println!("listening on http://{}", server.addr());

    // Serve until killed; shutdown-on-drop drains in-flight batches.
    loop {
        std::thread::park();
    }
}
