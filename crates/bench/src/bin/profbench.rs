//! Profiler harness: runs the three hot paths of the system — the packed
//! inference forward, the fine-tuning train step, and the micro-batched
//! serving path — under the `gs_obs::prof` op profiler and writes a
//! machine-readable attribution summary.
//!
//! The headline number per phase is **coverage**: the fraction of phase
//! wall time attributed to named kernel ops by the profiler. The harness
//! fails (exit 1) when forward or train-step coverage drops below
//! `--min-coverage` (default 0.9) — a regression there means somebody
//! added un-instrumented work to a hot path. (The floor was 0.95 before
//! the blocked kernels and the buffer arena; with kernel time ~2.5x
//! smaller, per-node tape bookkeeping between instrumented ops is now a
//! visible single-digit share of the train step.)
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin profbench --
//!       [--smoke] [--reps N] [--out PATH] [--collapsed-out PATH]
//!       [--min-coverage F] [--obs-jsonl PATH] [--no-obs] [--no-obs-report]
//!
//! Writes `results/BENCH_prof.json` (top-op tables, roofline columns,
//! coverage per phase) and `results/BENCH_prof.collapsed` (flamegraph-
//! compatible collapsed stacks, lines prefixed with the phase name).

use gs_bench::Args;
use gs_models::transformer::{
    train_token_classifier, TokenClassifier, TrainConfig, TrainExample, TransformerConfig,
};
use gs_obs::prof;
use gs_serve::{BatchConfig, Client, ExtractEngine, Extraction, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Vocabulary size shared by every phase's synthetic token streams.
const VOCAB: usize = 300;

fn bench_config(smoke: bool) -> TransformerConfig {
    TransformerConfig {
        name: "profbench".into(),
        d_model: if smoke { 32 } else { 64 },
        n_heads: if smoke { 2 } else { 4 },
        n_layers: 2,
        d_ff: if smoke { 64 } else { 128 },
        max_len: 64,
        subword_budget: VOCAB,
        ..TransformerConfig::roberta_sim()
    }
}

/// Deterministic synthetic token sequences (ids in `[2, VOCAB)`).
fn synth_seqs(count: usize, len: usize) -> Vec<Vec<usize>> {
    (0..count).map(|s| (0..len).map(|i| 2 + (s * 31 + i * 7) % (VOCAB - 2)).collect()).collect()
}

/// Runs `f` with the profiler enabled from a clean slate; returns the
/// wall time and the op snapshot the phase produced.
fn profiled_phase<R>(f: impl FnOnce() -> R) -> (Duration, prof::ProfSnapshot, R) {
    prof::reset();
    prof::set_enabled(true);
    let start = Instant::now();
    let out = f();
    let wall = start.elapsed();
    prof::set_enabled(false);
    let snapshot = prof::snapshot();
    prof::reset();
    (wall, snapshot, out)
}

/// Top-of-table rows (aggregated by op) as JSON.
fn top_ops_json(snapshot: &prof::ProfSnapshot, limit: usize) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = snapshot
        .by_op()
        .into_iter()
        .take(limit)
        .map(|t| {
            serde_json::json!({
                "op": t.op,
                "calls": t.calls,
                "seconds": t.seconds,
                "share": t.share,
                "gflops_per_sec": t.gflops_per_sec(),
                "flops_per_byte": t.intensity(),
            })
        })
        .collect();
    serde_json::Value::Array(rows)
}

fn phase_json(wall: Duration, snapshot: &prof::ProfSnapshot) -> serde_json::Value {
    let wall_s = wall.as_secs_f64();
    let profiled = snapshot.total_seconds();
    serde_json::json!({
        "wall_seconds": wall_s,
        "profiled_seconds": profiled,
        "coverage": profiled / wall_s.max(1e-9),
        "distinct_rows": snapshot.rows.len(),
        "top_ops": top_ops_json(snapshot, 12),
    })
}

fn coverage(wall: Duration, snapshot: &prof::ProfSnapshot) -> f64 {
    snapshot.total_seconds() / wall.as_secs_f64().max(1e-9)
}

/// Serving engine for the profiler bench: maps request bytes onto token
/// ids and runs the packed tape-free batched forward.
struct TokenEngine {
    model: TokenClassifier,
}

impl ExtractEngine for TokenEngine {
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
        let max_len = self.model.config().max_len;
        let seqs: Vec<Vec<usize>> = texts
            .iter()
            .map(|t| {
                let ids: Vec<usize> =
                    t.bytes().take(max_len).map(|b| 2 + (b as usize) % (VOCAB - 2)).collect();
                if ids.is_empty() {
                    vec![2]
                } else {
                    ids
                }
            })
            .collect();
        let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
        let classes = self.model.predict_classes_batch(&refs);
        classes
            .into_iter()
            .map(|c| Extraction { fields: vec![("Classes".into(), c.len().to_string())] })
            .collect()
    }
}

/// Drives `clients` closed-loop clients against the profiler-bench server;
/// returns sorted latencies, ok count, and how many responses carried a
/// trace id (every one should).
fn drive_serve(
    addr: std::net::SocketAddr,
    clients: usize,
    requests: usize,
) -> (Vec<Duration>, usize, usize) {
    let mut per_client = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client =
                        Client::connect(addr, Duration::from_secs(30)).expect("connect");
                    let mut latencies = Vec::with_capacity(requests);
                    let (mut ok, mut traced) = (0usize, 0usize);
                    for i in 0..requests {
                        let text = format!("objective {c}-{i}: reduce emissions by {}%", i % 80);
                        let body = format!("{{\"text\": {}}}", gs_serve::Json::from(text.as_str()));
                        let sent = Instant::now();
                        let resp = client.post_json("/v1/extract", &body).expect("request");
                        if resp.status == 200 {
                            latencies.push(sent.elapsed());
                            ok += 1;
                            if resp.header("x-trace-id").is_some_and(|id| id.len() == 16) {
                                traced += 1;
                            }
                        }
                    }
                    (latencies, ok, traced)
                })
            })
            .collect();
        for h in handles {
            per_client.push(h.join().expect("client thread"));
        }
    });
    let mut latencies = Vec::new();
    let (mut ok, mut traced) = (0, 0);
    for (l, o, t) in per_client {
        latencies.extend(l);
        ok += o;
        traced += t;
    }
    latencies.sort();
    (latencies, ok, traced)
}

fn quantile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64()
}

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);
    let smoke = args.has("smoke");
    let reps: usize = args.get_or("reps", if smoke { 3 } else { 20 });
    let min_coverage: f64 = args.get_or("min-coverage", 0.9);
    let out = args.get("out").unwrap_or("results/BENCH_prof.json").to_string();
    let collapsed_out =
        args.get("collapsed-out").unwrap_or("results/BENCH_prof.collapsed").to_string();

    let config = bench_config(smoke);
    let num_classes = 5;
    let model = TokenClassifier::new(config.clone(), VOCAB, num_classes, 42);

    // Phase 1: packed inference forward (the serving kernel), reps ×
    // one batch of sequences.
    let seqs = synth_seqs(if smoke { 4 } else { 16 }, 48);
    let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
    let _warm = model.predict_classes_batch(&refs);
    let (fwd_wall, fwd_snapshot, _) = profiled_phase(|| {
        for _ in 0..reps {
            let _ = model.predict_classes_batch(&refs);
        }
    });
    let fwd_cov = coverage(fwd_wall, &fwd_snapshot);
    println!(
        "forward    wall {:>8.3}s coverage {:>5.1}% ({} rows)",
        fwd_wall.as_secs_f64(),
        fwd_cov * 100.0,
        fwd_snapshot.rows.len()
    );
    print!("{}", fwd_snapshot.table());

    // Phase 2: fine-tuning train steps (taped forward + backward + the
    // optimizer path) over a synthetic token-classification task.
    let examples: Vec<TrainExample> = synth_seqs(if smoke { 8 } else { 32 }, 32)
        .into_iter()
        .map(|ids| {
            let targets: Vec<i64> = ids
                .iter()
                .enumerate()
                .map(|(p, &id)| if p == 0 { -1 } else { (id % 4) as i64 + 1 })
                .collect();
            TrainExample { ids, targets }
        })
        .collect();
    let train_config = TrainConfig {
        epochs: if smoke { 1 } else { 3 },
        lr: 3e-3,
        batch_size: 8,
        ..Default::default()
    };
    let mut train_model = TokenClassifier::new(config.clone(), VOCAB, num_classes, 43);
    let (train_wall, train_snapshot, stats) =
        profiled_phase(|| train_token_classifier(&mut train_model, &examples, &train_config));
    let train_cov = coverage(train_wall, &train_snapshot);
    println!(
        "train_step wall {:>8.3}s coverage {:>5.1}% ({} rows, final loss {:.4})",
        train_wall.as_secs_f64(),
        train_cov * 100.0,
        train_snapshot.rows.len(),
        stats.last().map_or(f32::NAN, |s| s.mean_loss),
    );
    print!("{}", train_snapshot.table());

    // Phase 3: the micro-batched serving path end to end — HTTP, queue,
    // coalescing, packed forward — with per-request trace ids.
    let server = Server::start(
        Arc::new(TokenEngine { model }),
        ServerConfig {
            batch: BatchConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("server");
    let clients = if smoke { 2 } else { 4 };
    let requests = if smoke { 8 } else { 50 };
    let (serve_wall, serve_snapshot, (latencies, ok, traced)) =
        profiled_phase(|| drive_serve(server.addr(), clients, requests));
    let traces_recorded = server.trace_count();
    server.shutdown();
    println!(
        "serve      wall {:>8.3}s ok {} traced {} p99 {:.1}ms ({} recorded traces)",
        serve_wall.as_secs_f64(),
        ok,
        traced,
        quantile(&latencies, 0.99) * 1e3,
        traces_recorded,
    );
    print!("{}", serve_snapshot.table());
    assert_eq!(traced, ok, "every 200 response must carry a 16-hex x-trace-id");
    assert!(traces_recorded > 0, "flight recorder captured no traces");

    let summary = serde_json::json!({
        "bench": "profbench",
        "smoke": smoke,
        "reps": reps,
        "model": {
            "d_model": config.d_model,
            "n_heads": config.n_heads,
            "n_layers": config.n_layers,
            "d_ff": config.d_ff,
        },
        "phases": {
            "forward": phase_json(fwd_wall, &fwd_snapshot),
            "train_step": phase_json(train_wall, &train_snapshot),
            "serve": {
                "wall_seconds": serve_wall.as_secs_f64(),
                "profiled_seconds": serve_snapshot.total_seconds(),
                "requests_ok": ok,
                "responses_with_trace_id": traced,
                "flight_recorder_traces": traces_recorded,
                "latency_seconds": {
                    "p50": quantile(&latencies, 0.50),
                    "p95": quantile(&latencies, 0.95),
                    "p99": quantile(&latencies, 0.99),
                },
                "top_ops": top_ops_json(&serve_snapshot, 12),
            },
        },
        "attribution": {
            "forward_coverage": fwd_cov,
            "train_step_coverage": train_cov,
            "min_required": min_coverage,
            "pass": fwd_cov >= min_coverage && train_cov >= min_coverage,
        },
    });

    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out, serde_json::to_string_pretty(&summary).expect("json"))
        .expect("write summary");
    println!("wrote {out}");

    // Flamegraph-compatible collapsed stacks, phase-prefixed so one file
    // holds all three profiles.
    let mut collapsed = String::new();
    for (phase, snapshot) in
        [("forward", &fwd_snapshot), ("train_step", &train_snapshot), ("serve", &serve_snapshot)]
    {
        for line in snapshot.collapsed().lines() {
            collapsed.push_str(phase);
            collapsed.push(';');
            collapsed.push_str(line);
            collapsed.push('\n');
        }
    }
    std::fs::write(&collapsed_out, collapsed).expect("write collapsed");
    println!("wrote {collapsed_out}");

    gs_bench::obs::finish(&args);

    if fwd_cov < min_coverage || train_cov < min_coverage {
        eprintln!(
            "attribution below --min-coverage {min_coverage}: forward {fwd_cov:.3}, train {train_cov:.3}"
        );
        std::process::exit(1);
    }
}
