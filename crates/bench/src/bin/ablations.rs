//! Additional design-decision ablations beyond the paper's Figure 4 (the
//! DESIGN.md checklist): CRF feature groups and context-window radius,
//! weak-label occurrence policy, and BPE subword granularity.
//!
//! Usage:
//!   cargo run --release -p gs-bench --bin ablations [--quick] [--json PATH]

use gs_bench::Args;
use gs_core::{OccurrencePolicy, WeakLabelConfig};
use gs_eval::{fmt2, TextTable};
use gs_models::transformer::{
    pretrain_encoder_shared, ExtractorOptions, PretrainConfig, TrainConfig, TransformerConfig,
    TransformerExtractor,
};
use gs_models::{CrfConfig, CrfExtractor, FeatureConfig};
use gs_pipeline::evaluate_extractor;

fn main() {
    let args = Args::from_env();
    gs_bench::obs::init(&args);
    let quick = args.has("quick");
    let sg_size: usize =
        args.get_or("sg-size", if quick { 400 } else { gs_data::sustaingoals::PAPER_SIZE });
    let epochs: usize = args.get_or("epochs", if quick { 10 } else { 40 });
    let pretrain_epochs: usize = args.get_or("pretrain-epochs", if quick { 4 } else { 12 });
    let pretrain_n: usize = args.get_or("pretrain-size", if quick { 1200 } else { 4000 });

    let dataset = gs_data::sustaingoals::generate(sg_size, 42);
    let (train, test) = dataset.split(0.2, 1);
    let mut json = serde_json::Map::new();

    // --- CRF feature-set / window ablation.
    println!("\n## CRF feature ablation (Sustainability Goals)\n");
    let mut table = TextTable::new(&["Features", "P", "R", "F1", "#features"]);
    let mut rows = Vec::new();
    for (name, fc) in [
        ("lexical only", FeatureConfig::lexical_only()),
        ("lexical + orthographic", FeatureConfig::no_context()),
        ("+ context (+-1, Table 4 setting)", FeatureConfig::default()),
        ("+ context (+-2)", FeatureConfig::wide_context()),
    ] {
        let crf = CrfExtractor::train(
            &train,
            &dataset.labels,
            CrfConfig { features: fc, ..Default::default() },
            WeakLabelConfig::default(),
        );
        let result = evaluate_extractor(&crf, &test, &dataset.labels);
        table.row(&[
            name.to_string(),
            fmt2(result.precision()),
            fmt2(result.recall()),
            fmt2(result.f1()),
            crf.crf().num_features().to_string(),
        ]);
        rows.push(serde_json::json!({"features": name, "f1": result.f1()}));
    }
    print!("{}", table.render());
    json.insert("crf_features".into(), rows.into());

    // --- Weak-label occurrence policy (transformer).
    println!("\n## Weak-label occurrence policy (first vs all matches)\n");
    let corpus = gs_data::unlabeled::sustaingoals_corpus(pretrain_n, 777);
    let texts: Vec<&str> = corpus.iter().map(String::as_str).collect();
    let base = pretrain_encoder_shared(
        &texts,
        &TransformerConfig::roberta_sim(),
        &PretrainConfig { epochs: pretrain_epochs, ..Default::default() },
    );
    let mut table = TextTable::new(&["Occurrence policy", "P", "R", "F1"]);
    let mut rows = Vec::new();
    for (name, occurrence) in [
        ("First (Algorithm 1)", OccurrencePolicy::First),
        ("All occurrences", OccurrencePolicy::All),
    ] {
        let ex = TransformerExtractor::train(
            &train,
            &dataset.labels,
            ExtractorOptions {
                train: TrainConfig { epochs, lr: 1e-3, ..Default::default() },
                weak_label: WeakLabelConfig { occurrence, ..Default::default() },
                base: Some(std::sync::Arc::clone(&base)),
                ..Default::default()
            },
        );
        let result = evaluate_extractor(&ex, &test, &dataset.labels);
        table.row(&[
            name.to_string(),
            fmt2(result.precision()),
            fmt2(result.recall()),
            fmt2(result.f1()),
        ]);
        rows.push(serde_json::json!({"policy": name, "f1": result.f1()}));
    }
    print!("{}", table.render());
    json.insert("occurrence_policy".into(), rows.into());

    // --- BPE subword granularity.
    println!("\n## BPE merge-budget ablation (subword granularity)\n");
    let mut table = TextTable::new(&["BPE merges", "P", "R", "F1", "mean subwords/objective"]);
    let mut rows = Vec::new();
    let budgets: &[usize] = if quick { &[100, 1200] } else { &[100, 400, 1200, 3000] };
    for &budget in budgets {
        let model = TransformerConfig {
            name: format!("RoBERTa-sim/bpe{budget}"),
            subword_budget: budget,
            ..TransformerConfig::roberta_sim()
        };
        let base = pretrain_encoder_shared(
            &texts,
            &model,
            &PretrainConfig { epochs: pretrain_epochs, ..Default::default() },
        );
        let mean_len: f64 = {
            let total: usize = train.iter().map(|o| base.tokenizer.encode(&o.text).len()).sum();
            total as f64 / train.len() as f64
        };
        let ex = TransformerExtractor::train(
            &train,
            &dataset.labels,
            ExtractorOptions {
                model,
                train: TrainConfig { epochs, lr: 1e-3, ..Default::default() },
                base: Some(base),
                ..Default::default()
            },
        );
        let result = evaluate_extractor(&ex, &test, &dataset.labels);
        table.row(&[
            budget.to_string(),
            fmt2(result.precision()),
            fmt2(result.recall()),
            fmt2(result.f1()),
            format!("{mean_len:.1}"),
        ]);
        rows.push(
            serde_json::json!({"budget": budget, "f1": result.f1(), "mean_subwords": mean_len}),
        );
    }
    print!("{}", table.render());
    json.insert("bpe_budget".into(), rows.into());

    if let Some(path) = args.get("json") {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&serde_json::Value::Object(json)).expect("json"),
        )
        .expect("write json");
        println!("\nwrote {path}");
    }

    gs_bench::obs::finish(&args);
}
