//! Parameter storage, gradient accumulation, and optimizers.
//!
//! Models register named parameters in a [`ParamStore`]. Each training step:
//!
//! 1. build a fresh [`Tape`](crate::Tape), binding parameters as leaves via a
//!    [`Binder`];
//! 2. run forward and `backward`;
//! 3. [`Binder::accumulate`] copies leaf gradients into the store;
//! 4. an [`Optimizer`] applies the update and clears gradients.

use crate::cost;
use crate::tape::{Grads, Tape, TapeOps, Var};
use crate::tensor::Tensor;
use gs_obs::prof;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a parameter within a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(usize);

#[derive(Clone, Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    value: Tensor,
    #[serde(skip)]
    grad: Option<Tensor>,
    #[serde(skip)]
    adam_m: Option<Tensor>,
    #[serde(skip)]
    adam_v: Option<Tensor>,
}

/// A named collection of trainable tensors with accumulated gradients and
/// optimizer state.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
    #[serde(skip)]
    index: HashMap<String, ParamId>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter; names must be unique.
    ///
    /// # Panics
    /// Panics if the name is already registered.
    pub fn register(&mut self, name: &str, value: Tensor) -> ParamId {
        assert!(!self.index.contains_key(name), "duplicate parameter name {name:?}");
        let id = ParamId(self.entries.len());
        self.entries.push(ParamEntry {
            name: name.to_string(),
            value,
            grad: None,
            adam_m: None,
            adam_v: None,
        });
        self.index.insert(name.to_string(), id);
        id
    }

    /// Looks up a parameter id by name.
    pub fn id(&self, name: &str) -> Option<ParamId> {
        self.index.get(name).copied()
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable access to a parameter value (used by tests and loaders).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// The accumulated gradient of a parameter, if any step produced one.
    pub fn grad(&self, id: ParamId) -> Option<&Tensor> {
        self.entries[id.0].grad.as_ref()
    }

    /// The name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// All parameter ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Adds `g` into the accumulated gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        let entry = &mut self.entries[id.0];
        match &mut entry.grad {
            Some(existing) => existing.add_assign(g),
            slot @ None => *slot = Some(g.clone()),
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad = None;
        }
    }

    /// Global L2 norm of all accumulated gradients.
    pub fn grad_norm(&self) -> f32 {
        self.entries.iter().filter_map(|e| e.grad.as_ref()).map(Tensor::sq_norm).sum::<f32>().sqrt()
    }

    /// Scales all gradients so that the global norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        // The string is only built when profiling is on.
        let mut timer = if prof::enabled() {
            prof::op_at("optim".to_string(), "clip_grad_norm")
        } else {
            prof::OpTimer::noop()
        };
        timer.set_cost(cost::map(self.num_weights(), 3));
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for e in &mut self.entries {
                if let Some(g) = &mut e.grad {
                    g.scale_assign(scale);
                }
            }
        }
        norm
    }

    /// Replaces a parameter's value (shape may change), clearing its
    /// gradient and optimizer state. Used when swapping task heads on a
    /// pretrained encoder.
    pub fn replace(&mut self, id: ParamId, value: Tensor) {
        let entry = &mut self.entries[id.0];
        entry.value = value;
        entry.grad = None;
        entry.adam_m = None;
        entry.adam_v = None;
    }

    /// Rebuilds the name index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index =
            self.entries.iter().enumerate().map(|(i, e)| (e.name.clone(), ParamId(i))).collect();
    }
}

/// Binds store parameters to tape leaves for one forward/backward pass.
///
/// Generic over [`TapeOps`] so the same model code can bind onto the eager
/// [`Tape`] (the default) or a symbolic shape-only recorder; leaves carry
/// the parameter name as a label for provenance in analysis output.
pub struct Binder<'t, T: TapeOps = Tape> {
    tape: &'t T,
    bindings: Vec<(ParamId, Var)>,
}

impl<'t, T: TapeOps> Binder<'t, T> {
    /// Creates a binder recording onto `tape`.
    pub fn new(tape: &'t T) -> Self {
        Binder { tape, bindings: Vec::new() }
    }

    /// Places the current value of `id` on the tape as a trainable leaf
    /// labeled with the parameter's name.
    pub fn bind(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let var = self.tape.leaf_labeled(store.value(id), store.name(id));
        self.bindings.push((id, var));
        var
    }

    /// Copies leaf gradients from a backward pass into the store.
    pub fn accumulate(&self, grads: &mut Grads, store: &mut ParamStore) {
        for &(id, var) in &self.bindings {
            if let Some(g) = grads.take(var) {
                store.accumulate_grad(id, &g);
            }
        }
    }

    /// Takes leaf gradients out of a backward pass, paired with their
    /// parameter ids in binding order — the shard-local half of
    /// [`accumulate`](Self::accumulate). Data-parallel training computes
    /// gradients on worker threads, then the coordinating thread folds each
    /// shard's pairs into the store in a fixed order, so the accumulated
    /// sums are bit-identical to serial training.
    pub fn take_param_grads(&self, grads: &mut Grads) -> Vec<(ParamId, Tensor)> {
        let mut out = Vec::with_capacity(self.bindings.len());
        for &(id, var) in &self.bindings {
            if let Some(g) = grads.take(var) {
                out.push((id, g));
            }
        }
        out
    }
}

/// Gradient-descent optimizers over a [`ParamStore`].
#[derive(Clone, Debug)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW). The
    /// paper fine-tunes with Adam at lr 5e-5.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical stabilizer.
        eps: f32,
        /// Decoupled weight decay coefficient (0 disables).
        weight_decay: f32,
        /// Step counter for bias correction.
        t: u64,
    },
}

impl Optimizer {
    /// Adam with the paper's defaults (lr provided by caller).
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, t: 0 }
    }

    /// Plain SGD.
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd { lr }
    }

    /// The current learning rate.
    pub fn lr(&self) -> f32 {
        match self {
            Optimizer::Sgd { lr } | Optimizer::Adam { lr, .. } => *lr,
        }
    }

    /// Overrides the learning rate (for schedules).
    pub fn set_lr(&mut self, new_lr: f32) {
        match self {
            Optimizer::Sgd { lr } | Optimizer::Adam { lr, .. } => *lr = new_lr,
        }
    }

    /// Applies accumulated gradients to the store and clears them.
    pub fn step(&mut self, store: &mut ParamStore) {
        let mut timer = if prof::enabled() {
            prof::op_at(
                "optim".to_string(),
                match self {
                    Optimizer::Sgd { .. } => "sgd_step",
                    Optimizer::Adam { .. } => "adam_step",
                },
            )
        } else {
            prof::OpTimer::noop()
        };
        timer.set_cost(cost::map(
            store.num_weights(),
            match self {
                Optimizer::Sgd { .. } => 2,
                Optimizer::Adam { .. } => 12,
            },
        ));
        match self {
            Optimizer::Sgd { lr } => {
                let lr = *lr;
                for e in &mut store.entries {
                    if let Some(g) = &e.grad {
                        e.value.add_scaled_assign(g, -lr);
                    }
                }
            }
            Optimizer::Adam { lr, beta1, beta2, eps, weight_decay, t } => {
                *t += 1;
                let (lr, b1, b2, eps, wd, t) = (*lr, *beta1, *beta2, *eps, *weight_decay, *t);
                let bc1 = 1.0 - b1.powi(t as i32);
                let bc2 = 1.0 - b2.powi(t as i32);
                for e in &mut store.entries {
                    let Some(g) = &e.grad else { continue };
                    if e.adam_m.is_none() {
                        e.adam_m = Some(Tensor::zeros(g.shape()));
                        e.adam_v = Some(Tensor::zeros(g.shape()));
                    }
                    let m = e.adam_m.as_mut().expect("adam m");
                    let v = e.adam_v.as_mut().expect("adam v");
                    let md = m.data_mut();
                    let vd = v.data_mut();
                    let gd = g.data();
                    let pd = e.value.data_mut();
                    for i in 0..gd.len() {
                        md[i] = b1 * md[i] + (1.0 - b1) * gd[i];
                        vd[i] = b2 * vd[i] + (1.0 - b2) * gd[i] * gd[i];
                        let mhat = md[i] / bc1;
                        let vhat = vd[i] / bc2;
                        pd[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * pd[i]);
                    }
                }
            }
        }
        store.zero_grads();
    }
}

/// Linear warmup followed by linear decay to zero, the standard fine-tuning
/// schedule for BERT-style models.
#[derive(Clone, Copy, Debug)]
pub struct WarmupLinearSchedule {
    /// Peak learning rate after warmup.
    pub base_lr: f32,
    /// Number of warmup steps.
    pub warmup_steps: u64,
    /// Total training steps.
    pub total_steps: u64,
}

impl WarmupLinearSchedule {
    /// Learning rate at `step` (0-based).
    pub fn lr_at(&self, step: u64) -> f32 {
        if self.total_steps == 0 {
            return self.base_lr;
        }
        if step < self.warmup_steps {
            return self.base_lr * (step + 1) as f32 / self.warmup_steps.max(1) as f32;
        }
        let remaining = self.total_steps.saturating_sub(step) as f32;
        let decay_span = self.total_steps.saturating_sub(self.warmup_steps).max(1) as f32;
        self.base_lr * (remaining / decay_span).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_store() -> (ParamStore, ParamId) {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::vector(&[5.0, -3.0]));
        (store, id)
    }

    /// Minimizing f(w) = |w|^2 / 2 has gradient w.
    fn grad_of_quadratic(store: &ParamStore, id: ParamId) -> Tensor {
        store.value(id).clone()
    }

    #[test]
    fn sgd_descends_quadratic() {
        let (mut store, id) = quadratic_store();
        let mut opt = Optimizer::sgd(0.1);
        for _ in 0..100 {
            let g = grad_of_quadratic(&store, id);
            store.accumulate_grad(id, &g);
            opt.step(&mut store);
        }
        assert!(store.value(id).sq_norm() < 1e-6);
    }

    #[test]
    fn adam_descends_quadratic() {
        let (mut store, id) = quadratic_store();
        let mut opt = Optimizer::adam(0.2);
        for _ in 0..300 {
            let g = grad_of_quadratic(&store, id);
            store.accumulate_grad(id, &g);
            opt.step(&mut store);
        }
        assert!(store.value(id).sq_norm() < 1e-3, "norm {}", store.value(id).sq_norm());
    }

    #[test]
    fn step_clears_grads() {
        let (mut store, id) = quadratic_store();
        store.accumulate_grad(id, &Tensor::vector(&[1.0, 1.0]));
        Optimizer::sgd(0.1).step(&mut store);
        assert!(store.grad(id).is_none());
    }

    #[test]
    fn grad_accumulation_sums() {
        let (mut store, id) = quadratic_store();
        store.accumulate_grad(id, &Tensor::vector(&[1.0, 2.0]));
        store.accumulate_grad(id, &Tensor::vector(&[3.0, 4.0]));
        assert_eq!(store.grad(id).expect("grad").data(), &[4.0, 6.0]);
    }

    #[test]
    fn clip_scales_down_large_grads() {
        let (mut store, id) = quadratic_store();
        store.accumulate_grad(id, &Tensor::vector(&[3.0, 4.0])); // norm 5
        let pre = store.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let g = store.grad(id).expect("grad");
        assert!((g.sq_norm().sqrt() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_leaves_small_grads_alone() {
        let (mut store, id) = quadratic_store();
        store.accumulate_grad(id, &Tensor::vector(&[0.3, 0.4]));
        store.clip_grad_norm(1.0);
        assert_eq!(store.grad(id).expect("grad").data(), &[0.3, 0.4]);
    }

    #[test]
    fn duplicate_name_panics() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::scalar(0.0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.register("w", Tensor::scalar(1.0));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn binder_routes_grads_to_store() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::matrix(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let tape = Tape::new();
        let mut binder = Binder::new(&tape);
        let w = binder.bind(&store, id);
        let loss = tape.sum_all(w);
        let mut grads = tape.backward(loss);
        binder.accumulate(&mut grads, &mut store);
        assert_eq!(store.grad(id).expect("grad").data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn warmup_schedule_shape() {
        let s = WarmupLinearSchedule { base_lr: 1.0, warmup_steps: 10, total_steps: 110 };
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!((s.lr_at(9) - 1.0).abs() < 1e-6);
        assert!(s.lr_at(50) < 1.0);
        assert!(s.lr_at(109) < s.lr_at(50));
        assert!(s.lr_at(110) <= 1e-6);
    }
}
