//! Shape rules shared by the eager [`Tape`](crate::Tape) and static
//! analysis tools (gs-check).
//!
//! Every tape op has exactly one rule here that maps operand shapes to the
//! result shape or a [`ShapeError`]. The eager tape calls the rule before
//! executing the kernel and panics with the error's `Display` text; a static
//! checker calls the same rule over a symbolic graph and collects the error
//! as a finding. Both paths therefore report byte-identical messages for the
//! same violation.

use std::fmt;

/// A violated shape, rank, or index invariant for a single op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    msg: String,
}

impl ShapeError {
    /// Creates an error for `op` with a human-readable description.
    pub fn new(op: &'static str, msg: impl Into<String>) -> Self {
        ShapeError { op, msg: msg.into() }
    }

    /// The op name the rule belongs to (e.g. `"matmul"`).
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// The violation description, without the op prefix.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error in {}: {}", self.op, self.msg)
    }
}

impl std::error::Error for ShapeError {}

/// Result of applying a shape rule: the output shape or a violation.
pub type ShapeResult = Result<Vec<usize>, ShapeError>;

/// Renders a shape as `[a, b]` for error messages.
pub fn fmt_shape(shape: &[usize]) -> String {
    let dims: Vec<String> = shape.iter().map(ToString::to_string).collect();
    format!("[{}]", dims.join(", "))
}

fn require_rank2(op: &'static str, side: &str, s: &[usize]) -> Result<(), ShapeError> {
    if s.len() != 2 {
        return Err(ShapeError::new(op, format!("{side} must be rank 2, got {}", fmt_shape(s))));
    }
    Ok(())
}

/// Elementwise binary ops (`add`, `sub`, `mul`): shapes must match exactly.
pub fn same_shape(op: &'static str, a: &[usize], b: &[usize]) -> ShapeResult {
    if a != b {
        return Err(ShapeError::new(
            op,
            format!("operand shapes {} and {} differ", fmt_shape(a), fmt_shape(b)),
        ));
    }
    Ok(a.to_vec())
}

/// Elementwise unary ops (`relu`, `gelu`, `tanh`, `scale`): any shape.
pub fn unary(x: &[usize]) -> ShapeResult {
    Ok(x.to_vec())
}

/// `add_bias`: `[n, d] + [d] -> [n, d]`.
pub fn add_bias(x: &[usize], bias: &[usize]) -> ShapeResult {
    require_rank2("add_bias", "input", x)?;
    if bias.len() != 1 {
        return Err(ShapeError::new(
            "add_bias",
            format!("bias must be rank 1, got {}", fmt_shape(bias)),
        ));
    }
    if x[1] != bias[0] {
        return Err(ShapeError::new(
            "add_bias",
            format!("input width {} does not match bias width {}", x[1], bias[0]),
        ));
    }
    Ok(x.to_vec())
}

/// `matmul`: `[m, k] x [k, n] -> [m, n]`.
pub fn matmul(a: &[usize], b: &[usize]) -> ShapeResult {
    require_rank2("matmul", "lhs", a)?;
    require_rank2("matmul", "rhs", b)?;
    if a[1] != b[0] {
        return Err(ShapeError::new(
            "matmul",
            format!("inner dims of {} x {} do not agree", fmt_shape(a), fmt_shape(b)),
        ));
    }
    Ok(vec![a[0], b[1]])
}

/// `matmul_transb`: `[m, k] x [n, k]^T -> [m, n]`.
pub fn matmul_transb(a: &[usize], b: &[usize]) -> ShapeResult {
    require_rank2("matmul_transb", "lhs", a)?;
    require_rank2("matmul_transb", "rhs", b)?;
    if a[1] != b[1] {
        return Err(ShapeError::new(
            "matmul_transb",
            format!("inner dims of {} x {}^T do not agree", fmt_shape(a), fmt_shape(b)),
        ));
    }
    Ok(vec![a[0], b[0]])
}

/// `softmax_last_dim`: rank >= 1 with a non-empty last dimension.
pub fn softmax_last_dim(x: &[usize]) -> ShapeResult {
    match x.last() {
        None => Err(ShapeError::new("softmax_last_dim", "input must have rank >= 1".to_string())),
        Some(0) => Err(ShapeError::new("softmax_last_dim", "last dimension is empty".to_string())),
        Some(_) => Ok(x.to_vec()),
    }
}

/// `layer_norm`: rank-1 `gamma`/`beta` matching the last dimension of `x`.
pub fn layer_norm(x: &[usize], gamma: &[usize], beta: &[usize]) -> ShapeResult {
    let Some(&d) = x.last() else {
        return Err(ShapeError::new("layer_norm", "input must have rank >= 1".to_string()));
    };
    for (side, s) in [("gamma", gamma), ("beta", beta)] {
        if s.len() != 1 {
            return Err(ShapeError::new(
                "layer_norm",
                format!("{side} must be rank 1, got {}", fmt_shape(s)),
            ));
        }
        if s[0] != d {
            return Err(ShapeError::new(
                "layer_norm",
                format!("{side} width {} does not match input width {d}", s[0]),
            ));
        }
    }
    Ok(x.to_vec())
}

/// `embed_gather`: rank-2 table, all ids within the row count;
/// `[rows, d] gather n -> [n, d]`.
pub fn embed_gather(table: &[usize], num_ids: usize, max_id: Option<usize>) -> ShapeResult {
    require_rank2("embed_gather", "table", table)?;
    if let Some(max_id) = max_id {
        if max_id >= table[0] {
            return Err(ShapeError::new(
                "embed_gather",
                format!("id {max_id} out of bounds for table with {} rows", table[0]),
            ));
        }
    }
    Ok(vec![num_ids, table[1]])
}

/// `dropout`: the mask must match the input shape exactly.
pub fn dropout(x: &[usize], mask: &[usize]) -> ShapeResult {
    if x != mask {
        return Err(ShapeError::new(
            "dropout",
            format!("mask shape {} does not match input {}", fmt_shape(mask), fmt_shape(x)),
        ));
    }
    Ok(x.to_vec())
}

/// `concat_cols`: rank-2 parts with equal row counts; widths add.
pub fn concat_cols(parts: &[&[usize]]) -> ShapeResult {
    if parts.is_empty() {
        return Err(ShapeError::new("concat_cols", "needs at least one operand".to_string()));
    }
    for p in parts {
        require_rank2("concat_cols", "every operand", p)?;
    }
    let rows = parts[0][0];
    let mut cols = 0usize;
    for (i, p) in parts.iter().enumerate() {
        if p[0] != rows {
            return Err(ShapeError::new(
                "concat_cols",
                format!("operand {i} has {} rows, expected {rows}", p[0]),
            ));
        }
        cols += p[1];
    }
    Ok(vec![rows, cols])
}

/// `slice_cols`: `[n, c] -> [n, end - start]` with `start <= end <= c`.
pub fn slice_cols(x: &[usize], start: usize, end: usize) -> ShapeResult {
    require_rank2("slice_cols", "input", x)?;
    if start > end || end > x[1] {
        return Err(ShapeError::new(
            "slice_cols",
            format!("range {start}..{end} out of bounds for {} columns", x[1]),
        ));
    }
    Ok(vec![x[0], end - start])
}

/// Full reductions (`mean_all`, `sum_all`): any input, scalar output.
pub fn reduce_all(_x: &[usize]) -> ShapeResult {
    Ok(Vec::new())
}

/// `cross_entropy`: rank-2 logits, one target per row, non-ignored targets
/// within the class count. Output is scalar.
pub fn cross_entropy(logits: &[usize], num_targets: usize, max_target: Option<i64>) -> ShapeResult {
    require_rank2("cross_entropy", "logits", logits)?;
    if logits[0] != num_targets {
        return Err(ShapeError::new(
            "cross_entropy",
            format!("{num_targets} targets for {} logit rows", logits[0]),
        ));
    }
    if let Some(t) = max_target {
        if t >= 0 && t as usize >= logits[1] {
            return Err(ShapeError::new(
                "cross_entropy",
                format!("target {t} out of bounds for {} classes", logits[1]),
            ));
        }
    }
    Ok(Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_op_and_message() {
        let e = matmul(&[2, 3], &[4, 5]).unwrap_err();
        assert_eq!(e.op(), "matmul");
        assert_eq!(
            e.to_string(),
            "shape error in matmul: inner dims of [2, 3] x [4, 5] do not agree"
        );
    }

    #[test]
    fn rules_accept_valid_shapes() {
        assert_eq!(matmul(&[2, 3], &[3, 5]).unwrap(), vec![2, 5]);
        assert_eq!(matmul_transb(&[2, 3], &[5, 3]).unwrap(), vec![2, 5]);
        assert_eq!(add_bias(&[4, 7], &[7]).unwrap(), vec![4, 7]);
        assert_eq!(layer_norm(&[4, 7], &[7], &[7]).unwrap(), vec![4, 7]);
        assert_eq!(embed_gather(&[10, 3], 5, Some(9)).unwrap(), vec![5, 3]);
        assert_eq!(concat_cols(&[&[2, 3], &[2, 4]]).unwrap(), vec![2, 7]);
        assert_eq!(slice_cols(&[2, 8], 2, 5).unwrap(), vec![2, 3]);
        assert_eq!(cross_entropy(&[4, 3], 4, Some(2)).unwrap(), Vec::<usize>::new());
        assert!(cross_entropy(&[4, 3], 4, Some(-1)).is_ok());
    }

    #[test]
    fn rules_reject_invalid_shapes() {
        assert!(same_shape("add", &[2, 3], &[3, 2]).is_err());
        assert!(add_bias(&[4, 7], &[6]).is_err());
        assert!(add_bias(&[7], &[7]).is_err());
        assert!(matmul(&[3], &[3, 2]).is_err());
        assert!(matmul_transb(&[2, 3], &[5, 4]).is_err());
        assert!(layer_norm(&[4, 7], &[8], &[7]).is_err());
        assert!(embed_gather(&[10, 3], 5, Some(10)).is_err());
        assert!(dropout(&[2, 3], &[3, 2]).is_err());
        assert!(concat_cols(&[&[2, 3], &[3, 3]]).is_err());
        assert!(concat_cols(&[]).is_err());
        assert!(slice_cols(&[2, 8], 5, 9).is_err());
        assert!(cross_entropy(&[4, 3], 5, None).is_err());
        assert!(cross_entropy(&[4, 3], 4, Some(3)).is_err());
    }
}
