//! Dense, row-major `f32` tensors.
//!
//! The tensor type is deliberately small: a shape vector and a flat data
//! buffer. All operations needed by the autograd layer (matrix products,
//! broadcasts over the last dimension, reductions, and elementwise maps) are
//! implemented here as plain functions so they can be unit-tested in
//! isolation and reused by the backward passes.

use crate::arena;
use crate::kernels::{self, KernelMode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Minimum multiply-add count before a matrix product is worth splitting
/// across the gs-par pool; below it, dispatch overhead dominates.
pub(crate) const PAR_FLOPS_CUTOFF: usize = 64 * 1024;

/// Minimum element count before elementwise / row-wise kernels go parallel.
pub(crate) const ELEMWISE_PAR_CUTOFF: usize = 16 * 1024;

/// Elements per task for chunked elementwise kernels.
const ELEMWISE_CHUNK: usize = 4 * 1024;

/// Minimum multiply-add count before the transposed matmul forms pay for a
/// transpose pack; smaller products use the (bit-identical) reference
/// loops directly.
pub(crate) const PACK_FLOPS_CUTOFF: usize = 16 * 1024;

/// Whether a row-blocked kernel of `rows x cols` output and `flops`
/// multiply-adds should dispatch to the pool.
#[inline]
fn par_worthwhile(rows: usize, cols: usize, flops: usize) -> bool {
    rows > 1 && cols > 0 && flops >= PAR_FLOPS_CUTOFF && gs_par::max_threads() > 1
}

/// Splits `out` (row-major `[rows, cols]`) into contiguous row blocks and
/// runs `per_row(row_index, out_row)` for every row, in parallel. Each row
/// is produced by exactly one task with the same per-row arithmetic as the
/// serial loop, so results are bit-identical at any thread count.
fn par_rows(out: &mut [f32], rows: usize, cols: usize, per_row: impl Fn(usize, &mut [f32]) + Sync) {
    let rows_per_block = rows.div_ceil(gs_par::max_threads() * 4).max(1);
    gs_par::for_each_chunk_mut(out, rows_per_block * cols, |ci, block| {
        let row0 = ci * rows_per_block;
        for (r, out_row) in block.chunks_mut(cols).enumerate() {
            per_row(row0 + r, out_row);
        }
    });
}

/// Like [`par_rows`] but hands each task its whole contiguous row block
/// (`row0`, row count, block slice) so panel kernels can run block-at-a-
/// time. Block boundaries cannot affect results: every output row is
/// produced by exactly one task with per-row arithmetic identical to the
/// serial call.
fn par_row_blocks(
    out: &mut [f32],
    rows: usize,
    cols: usize,
    per_block: impl Fn(usize, usize, &mut [f32]) + Sync,
) {
    let rows_per_block = rows.div_ceil(gs_par::max_threads() * 4).max(1);
    gs_par::for_each_chunk_mut(out, rows_per_block * cols, |ci, block| {
        per_block(ci * rows_per_block, block.len() / cols, block);
    });
}

/// A dense, row-major tensor of `f32` values.
///
/// Invariant: `data.len() == shape.iter().product()`. Rank-0 tensors are
/// represented with an empty shape and a single element.
#[derive(PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor { shape: self.shape.clone(), data: arena::alloc_copy(&self.data) }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        // Offer the backing buffer to the arena (no-op outside a scope).
        if self.data.capacity() >= arena::MIN_POOL_ELEMS {
            arena::recycle(std::mem::take(&mut self.data));
        }
    }
}

impl Tensor {
    /// Creates a tensor from a shape and a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape volume.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let volume: usize = shape.iter().product();
        assert_eq!(
            volume,
            data.len(),
            "shape {:?} (volume {}) does not match buffer of length {}",
            shape,
            volume,
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let volume: usize = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: arena::alloc_zeroed(volume) }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let volume: usize = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![value; volume] }
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: vec![], data: vec![value] }
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn vector(values: &[f32]) -> Self {
        Tensor { shape: vec![values.len()], data: values.to_vec() }
    }

    /// Creates a rank-2 tensor from rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn matrix(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Tensor::matrix");
            data.extend_from_slice(row);
        }
        Tensor { shape: vec![r, c], data }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat row-major data buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat row-major buffer.
    pub fn into_data(mut self) -> Vec<f32> {
        // `Tensor` has a `Drop` impl, so the buffer is moved out with
        // `take`; the subsequent drop sees an empty vec and does nothing.
        std::mem::take(&mut self.data)
    }

    /// The value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on tensor with {} elements", self.data.len());
        self.data[0]
    }

    /// Number of rows of a rank-2 tensor.
    pub fn rows(&self) -> usize {
        assert_eq!(self.rank(), 2, "rows() requires rank 2, got shape {:?}", self.shape);
        self.shape[0]
    }

    /// Number of columns of a rank-2 tensor.
    pub fn cols(&self) -> usize {
        assert_eq!(self.rank(), 2, "cols() requires rank 2, got shape {:?}", self.shape);
        self.shape[1]
    }

    /// Element accessor for rank-2 tensors.
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Mutable element accessor for rank-2 tensors.
    pub fn at2_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        debug_assert_eq!(self.rank(), 2);
        let c = self.shape[1];
        &mut self.data[i * c + j]
    }

    /// Borrow row `i` of a rank-2 tensor.
    pub fn row(&self, i: usize) -> &[f32] {
        let c = self.cols();
        &self.data[i * c..(i + 1) * c]
    }

    /// Mutably borrow row `i` of a rank-2 tensor.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Returns a copy with a new shape of identical volume.
    ///
    /// # Panics
    /// Panics if the volumes differ.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        let volume: usize = shape.iter().product();
        assert_eq!(volume, self.data.len(), "reshape {:?} -> {:?}", self.shape, shape);
        Tensor { shape: shape.to_vec(), data: arena::alloc_copy(&self.data) }
    }

    /// Elementwise map into a new tensor. Large tensors are mapped in
    /// chunks across the gs-par pool; elementwise kernels are trivially
    /// order-independent, so the result is identical at any thread count.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let src = &self.data;
        if src.len() < ELEMWISE_PAR_CUTOFF || gs_par::max_threads() <= 1 {
            let mut data = arena::alloc_empty(src.len());
            data.extend(src.iter().map(|&x| f(x)));
            return Tensor { shape: self.shape.clone(), data };
        }
        let mut data = arena::alloc_zeroed(src.len());
        gs_par::for_each_chunk_mut(&mut data, ELEMWISE_CHUNK, |ci, chunk| {
            let start = ci * ELEMWISE_CHUNK;
            let len = chunk.len();
            for (o, &x) in chunk.iter_mut().zip(&src[start..start + len]) {
                *o = f(x);
            }
        });
        Tensor { shape: self.shape.clone(), data }
    }

    /// Elementwise combination of two same-shape tensors (chunked across
    /// the pool above the elementwise cutoff, like [`map`](Self::map)).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        let (lhs, rhs) = (&self.data, &other.data);
        if lhs.len() < ELEMWISE_PAR_CUTOFF || gs_par::max_threads() <= 1 {
            let mut data = arena::alloc_empty(lhs.len());
            data.extend(lhs.iter().zip(rhs).map(|(&a, &b)| f(a, b)));
            return Tensor { shape: self.shape.clone(), data };
        }
        let mut data = arena::alloc_zeroed(lhs.len());
        gs_par::for_each_chunk_mut(&mut data, ELEMWISE_CHUNK, |ci, chunk| {
            let start = ci * ELEMWISE_CHUNK;
            let end = start + chunk.len();
            for ((o, &a), &b) in chunk.iter_mut().zip(&lhs[start..end]).zip(&rhs[start..end]) {
                *o = f(a, b);
            }
        });
        Tensor { shape: self.shape.clone(), data }
    }

    /// In-place `self += other` for same-shape tensors.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// In-place `self += scale * other`.
    pub fn add_scaled_assign(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * *b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale_assign(&mut self, scale: f32) {
        for a in &mut self.data {
            *a *= scale;
        }
    }

    /// Fills the tensor with zeros, keeping the shape.
    pub fn zero_fill(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// The squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Index of the maximum value in each row of a rank-2 tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (r, c) = (self.rows(), self.cols());
        (0..r)
            .map(|i| {
                let row = &self.data[i * c..(i + 1) * c];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Matrix product `self [m,k] x other [k,n] -> [m,n]`.
    ///
    /// Dispatches on [`crate::kernels::kernel_mode`]: the default `Blocked`
    /// mode runs the cache-blocked panel kernel from [`crate::kernels`]
    /// (KC-strip blocking, MRxKU register micro-panels, autovectorized over
    /// the output row); `Reference` keeps the pre-blocking loops. The two
    /// are bit-identical on finite data at any thread count, pinned by
    /// `tests/kernel_equivalence.rs`.
    ///
    /// # Panics
    /// Panics on rank or inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        match kernels::kernel_mode() {
            KernelMode::Blocked => self.matmul_blocked(other),
            KernelMode::Reference => self.matmul_reference(other),
        }
    }

    fn matmul_blocked(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: [{},{}] x [{},{}]", m, k, k2, n);
        let mut out = arena::alloc_zeroed(m * n);
        // `self`'s rows already form the contiguous [rows, k] panel the
        // kernel wants, and row-major B is the packed [k, n] layout.
        if par_worthwhile(m, n, m * k * n) {
            par_row_blocks(&mut out, m, n, |row0, nrows, block| {
                let a_panel = &self.data[row0 * k..(row0 + nrows) * k];
                kernels::gemm_panel(a_panel, &other.data, block, nrows, k, n);
            });
        } else {
            kernels::gemm_panel(&self.data, &other.data, &mut out, m, k, n);
        }
        Tensor { shape: vec![m, n], data: out }
    }

    /// The pre-blocking `ikj` matmul, kept for bitwise equivalence tests
    /// and before/after benchmarks (see [`crate::kernels::KernelMode`]).
    pub fn matmul_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: [{},{}] x [{},{}]", m, k, k2, n);
        let mut out = arena::alloc_zeroed(m * n);
        let per_row = |i: usize, out_row: &mut [f32]| {
            let a_row = &self.data[i * k..(i + 1) * k];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        };
        if par_worthwhile(m, n, m * k * n) {
            // Output rows are independent, so row-blocking across the pool
            // keeps each row's accumulation order — and thus every bit of
            // the result — identical to the serial loop.
            par_rows(&mut out, m, n, per_row);
        } else {
            for (i, out_row) in out.chunks_mut(n.max(1)).enumerate() {
                per_row(i, out_row);
            }
        }
        Tensor { shape: vec![m, n], data: out }
    }

    /// Matrix product with a transposed right operand:
    /// `self [m,k] x other [n,k]^T -> [m,n]`.
    ///
    /// This is the cache-friendly form for attention scores, where both
    /// operands are stored row-major over the shared `k` dimension.
    pub fn matmul_transb(&self, other: &Tensor) -> Tensor {
        match kernels::kernel_mode() {
            KernelMode::Blocked => self.matmul_transb_blocked(other),
            KernelMode::Reference => self.matmul_transb_reference(other),
        }
    }

    fn matmul_transb_blocked(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_transb lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_transb rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_transb inner dims: [{},{}] x [{},{}]^T", m, k, n, k2);
        // Below the cutoff the transpose pack costs more than it saves;
        // the reference dot-product form is bit-identical, so size-based
        // dispatch is unobservable in the results.
        if m * k * n < PACK_FLOPS_CUTOFF {
            return self.matmul_transb_reference(other);
        }
        // Transpose-pack B [n, k] into the [k, n] panel layout once; the
        // O(k*n) pack amortizes over m output rows of O(k*n) flops each.
        let mut bt = arena::alloc_zeroed(k * n);
        kernels::pack_transpose(&other.data, &mut bt, n, k);
        let mut out = arena::alloc_zeroed(m * n);
        if par_worthwhile(m, n, m * k * n) {
            par_row_blocks(&mut out, m, n, |row0, nrows, block| {
                let a_panel = &self.data[row0 * k..(row0 + nrows) * k];
                kernels::gemm_panel(a_panel, &bt, block, nrows, k, n);
            });
        } else {
            kernels::gemm_panel(&self.data, &bt, &mut out, m, k, n);
        }
        arena::recycle(bt);
        Tensor { shape: vec![m, n], data: out }
    }

    /// The pre-blocking per-element dot-product form of
    /// [`matmul_transb`](Self::matmul_transb).
    pub fn matmul_transb_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_transb lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_transb rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_transb inner dims: [{},{}] x [{},{}]^T", m, k, n, k2);
        let mut out = arena::alloc_zeroed(m * n);
        let per_row = |i: usize, out_row: &mut [f32]| {
            let a_row = &self.data[i * k..(i + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        };
        if par_worthwhile(m, n, m * k * n) {
            par_rows(&mut out, m, n, per_row);
        } else {
            for (i, out_row) in out.chunks_mut(n.max(1)).enumerate() {
                per_row(i, out_row);
            }
        }
        Tensor { shape: vec![m, n], data: out }
    }

    /// Matrix product with a transposed left operand:
    /// `self [k,m]^T x other [k,n] -> [m,n]`.
    ///
    /// Used by backward passes (`dW = X^T dY`) without materializing the
    /// transpose.
    pub fn matmul_transa(&self, other: &Tensor) -> Tensor {
        match kernels::kernel_mode() {
            KernelMode::Blocked => self.matmul_transa_blocked(other),
            KernelMode::Reference => self.matmul_transa_reference(other),
        }
    }

    fn matmul_transa_blocked(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_transa lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_transa rhs must be rank 2");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_transa inner dims: [{},{}]^T x [{},{}]", k, m, k2, n);
        if m * k * n < PACK_FLOPS_CUTOFF {
            return self.matmul_transa_reference(other);
        }
        let mut out = arena::alloc_zeroed(m * n);
        // Transpose-pack the owned strip of A^T per row block (columns
        // row0..row0+nrows of the [k, m] left operand become a contiguous
        // [nrows, k] panel), then run the shared panel kernel against
        // row-major B.
        let pack_and_multiply = |row0: usize, nrows: usize, block: &mut [f32]| {
            let mut at = arena::alloc_zeroed(nrows * k);
            for r in 0..nrows {
                let col = row0 + r;
                let dst = &mut at[r * k..(r + 1) * k];
                for (p, d) in dst.iter_mut().enumerate() {
                    *d = self.data[p * m + col];
                }
            }
            kernels::gemm_panel(&at, &other.data, block, nrows, k, n);
            arena::recycle(at);
        };
        if par_worthwhile(m, n, m * k * n) {
            par_row_blocks(&mut out, m, n, pack_and_multiply);
        } else {
            pack_and_multiply(0, m, &mut out);
        }
        Tensor { shape: vec![m, n], data: out }
    }

    /// The pre-blocking form of [`matmul_transa`](Self::matmul_transa).
    pub fn matmul_transa_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_transa lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_transa rhs must be rank 2");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_transa inner dims: [{},{}]^T x [{},{}]", k, m, k2, n);
        let mut out = arena::alloc_zeroed(m * n);
        if par_worthwhile(m, n, m * k * n) {
            // Row-parallel form: each task owns output rows, scanning `p`
            // ascending. Every output element sees the same sequence of
            // adds (ascending `p`, identical zero-skips) as the serial
            // p-outer loop below, so the two paths are bit-identical.
            par_rows(&mut out, m, n, |i, out_row| {
                for p in 0..k {
                    let av = self.data[p * m + i];
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &other.data[p * n..(p + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            });
        } else {
            for p in 0..k {
                let a_row = &self.data[p * m..(p + 1) * m];
                let b_row = &other.data[p * n..(p + 1) * n];
                for (i, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let out_row = &mut out[i * n..(i + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        }
        Tensor { shape: vec![m, n], data: out }
    }

    /// Transpose of a rank-2 tensor.
    pub fn transposed2(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = arena::alloc_zeroed(r * c);
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor { shape: vec![c, r], data: out }
    }

    /// Softmax over the last dimension, numerically stabilized.
    ///
    /// Restructured (not approximated): instead of cloning the input and
    /// transforming it in place, each row's `exp(x - max)` is written
    /// straight into the output buffer while the normalizer accumulates in
    /// the same pass — one fewer full-tensor copy, identical arithmetic
    /// per element, so the result is bit-equal to the pre-restructure
    /// kernel.
    pub fn softmax_last_dim(&self) -> Tensor {
        assert!(self.rank() >= 1, "softmax on rank-0 tensor");
        let d = *self.shape.last().expect("non-empty shape");
        assert!(d > 0, "softmax over empty last dimension");
        let src = &self.data;
        let mut out = arena::alloc_zeroed(src.len());
        let rows = src.len() / d;
        if rows > 1 && src.len() >= ELEMWISE_PAR_CUTOFF && gs_par::max_threads() > 1 {
            // Rows are independent; each row's max/exp/normalize sequence
            // is untouched, so the parallel split is bit-exact.
            let rows_per_block = rows.div_ceil(gs_par::max_threads() * 4).max(1);
            gs_par::for_each_chunk_mut(&mut out, rows_per_block * d, |ci, block| {
                let start = ci * rows_per_block * d;
                for (r, chunk) in block.chunks_mut(d).enumerate() {
                    let row0 = start + r * d;
                    softmax_row_into(&src[row0..row0 + d], chunk);
                }
            });
        } else {
            for (src_row, chunk) in src.chunks(d).zip(out.chunks_mut(d)) {
                softmax_row_into(src_row, chunk);
            }
        }
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// Sum over rows of a rank-2 tensor, producing a rank-1 tensor of length
    /// `cols` (i.e. a column-wise sum). Used for bias gradients.
    pub fn col_sum(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = arena::alloc_zeroed(c);
        for i in 0..r {
            for (o, &v) in out.iter_mut().zip(&self.data[i * c..(i + 1) * c]) {
                *o += v;
            }
        }
        Tensor { shape: vec![c], data: out }
    }

    /// Concatenates rank-2 tensors along columns. All inputs must share the
    /// same row count.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols of zero tensors");
        let r = parts[0].rows();
        let total_c: usize = parts.iter().map(|t| t.cols()).sum();
        let mut out = arena::alloc_empty(r * total_c);
        for i in 0..r {
            for t in parts {
                assert_eq!(t.rows(), r, "concat_cols row mismatch");
                out.extend_from_slice(t.row(i));
            }
        }
        Tensor { shape: vec![r, total_c], data: out }
    }

    /// Extracts the column range `[start, end)` of a rank-2 tensor.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        assert!(start <= end && end <= c, "slice_cols {}..{} of {} cols", start, end, c);
        let w = end - start;
        let mut out = arena::alloc_empty(r * w);
        for i in 0..r {
            out.extend_from_slice(&self.data[i * c + start..i * c + end]);
        }
        Tensor { shape: vec![r, w], data: out }
    }

    /// Extracts the row range `[start, end)` of a rank-2 tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        assert!(start <= end && end <= r, "slice_rows {}..{} of {} rows", start, end, r);
        Tensor {
            shape: vec![end - start, c],
            data: arena::alloc_copy(&self.data[start * c..end * c]),
        }
    }

    /// Gathers rows of a rank-2 table by index, producing `[ids.len(), cols]`.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, ids: &[usize]) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = arena::alloc_empty(ids.len() * c);
        for &id in ids {
            assert!(id < r, "gather_rows index {} out of {} rows", id, r);
            out.extend_from_slice(&self.data[id * c..(id + 1) * c]);
        }
        Tensor { shape: vec![ids.len(), c], data: out }
    }

    /// Elementwise GELU, latching the fast/exact mode once for the whole
    /// tensor so the mapped closure stays branch- and atomic-free (the
    /// per-element [`gelu`] function re-reads the mode on every call,
    /// which blocks autovectorization).
    pub fn gelu_forward(&self) -> Tensor {
        if kernels::exact_gelu() {
            self.map(gelu_exact)
        } else {
            self.map(gelu_fast)
        }
    }

    /// `gout * gelu'(self)` — the backward companion of
    /// [`gelu_forward`](Self::gelu_forward), with the same mode latching.
    pub fn gelu_backward(&self, gout: &Tensor) -> Tensor {
        if kernels::exact_gelu() {
            gout.zip_map(self, |g, x| g * gelu_grad_exact(x))
        } else {
            gout.zip_map(self, |g, x| g * gelu_grad_fast(x))
        }
    }

    /// Returns true if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Approximate equality within `tol`, element by element.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.data.len() <= 16 {
            write!(f, "Tensor{:?} {:?}", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor{:?} [{} elements, first={:?}...]",
                self.shape,
                self.data.len(),
                &self.data[..8]
            )
        }
    }
}

/// One numerically stabilized softmax row: `dst = softmax(src)`.
/// Same per-element operation sequence as the old in-place kernel
/// (max scan, `exp` + running sum ascending, scale), so results are
/// bit-equal; only the destination differs.
fn softmax_row_into(src: &[f32], dst: &mut [f32]) {
    let max = src.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut total = 0.0f32;
    for (d, &x) in dst.iter_mut().zip(src) {
        let e = (x - max).exp();
        *d = e;
        total += e;
    }
    let inv = 1.0 / total;
    for d in dst.iter_mut() {
        *d *= inv;
    }
}

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_CUBIC: f32 = 0.044715;

/// The GELU activation used by BERT-style encoders (tanh form), dispatching
/// on [`crate::kernels::exact_gelu`]: the default fast path evaluates tanh
/// with [`tanh_fast`] (≤ ~1e-6 absolute error, autovectorizable); the
/// opt-in exact path (`GS_EXACT_GELU=1`) keeps the libm `tanh` the model
/// was originally trained and profiled with.
pub fn gelu(x: f32) -> f32 {
    if kernels::exact_gelu() {
        gelu_exact(x)
    } else {
        gelu_fast(x)
    }
}

/// Derivative of [`gelu`] (same fast/exact dispatch).
pub fn gelu_grad(x: f32) -> f32 {
    if kernels::exact_gelu() {
        gelu_grad_exact(x)
    } else {
        gelu_grad_fast(x)
    }
}

/// GELU via libm `tanh` — the original scalar kernel.
pub fn gelu_exact(x: f32) -> f32 {
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + GELU_CUBIC * x * x * x)).tanh())
}

/// Derivative of [`gelu_exact`].
pub fn gelu_grad_exact(x: f32) -> f32 {
    let x3 = x * x * x;
    let inner = SQRT_2_OVER_PI * (x + GELU_CUBIC * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_CUBIC * x * x)
}

/// GELU via [`tanh_fast`]; branch-free straight-line arithmetic, so the
/// elementwise map over a tensor autovectorizes.
pub fn gelu_fast(x: f32) -> f32 {
    0.5 * x * (1.0 + tanh_fast(SQRT_2_OVER_PI * (x + GELU_CUBIC * x * x * x)))
}

/// Derivative of [`gelu_fast`].
pub fn gelu_grad_fast(x: f32) -> f32 {
    let x3 = x * x * x;
    let inner = SQRT_2_OVER_PI * (x + GELU_CUBIC * x3);
    let t = tanh_fast(inner);
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_CUBIC * x * x)
}

/// A rational-polynomial `tanh` (13/6-degree odd/even quotient over the
/// clamped range, the widely used Padé-style approximation from Eigen's
/// vectorized `ptanh`): absolute error is below ~1e-6 across the reals,
/// and the function saturates exactly to ±1 beyond |x| ≈ 7.9. Straight-
/// line mul/add/div, so LLVM vectorizes loops over it.
pub fn tanh_fast(x: f32) -> f32 {
    const CLAMP: f32 = 7.905_31;
    const A1: f32 = 4.893_525e-3;
    const A3: f32 = 6.372_619e-4;
    const A5: f32 = 1.485_722_4e-5;
    const A7: f32 = 5.122_297e-8;
    const A9: f32 = -8.604_672e-11;
    const A11: f32 = 2.000_188e-13;
    const A13: f32 = -2.760_768_5e-16;
    const B0: f32 = 4.893_525e-3;
    const B2: f32 = 2.268_434_6e-3;
    const B4: f32 = 1.185_347e-4;
    const B6: f32 = 1.198_258_4e-6;
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let p = x * (A1 + x2 * (A3 + x2 * (A5 + x2 * (A7 + x2 * (A9 + x2 * (A11 + x2 * A13))))));
    let q = B0 + x2 * (B2 + x2 * (B4 + x2 * B6));
    p / q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "does not match buffer")]
    fn from_vec_rejects_bad_volume() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::matrix(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::matrix(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = Tensor::matrix(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Tensor::matrix(&[vec![1.0, 0.0, 2.0], vec![-1.0, 3.0, 1.0]]);
        let via_t = a.matmul(&b.transposed2());
        let direct = a.matmul_transb(&b);
        assert!(via_t.approx_eq(&direct, 1e-6));
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let a = Tensor::matrix(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let b = Tensor::matrix(&[vec![1.0], vec![2.0], vec![3.0]]);
        let via_t = a.transposed2().matmul(&b);
        let direct = a.matmul_transa(&b);
        assert!(via_t.approx_eq(&direct, 1e-6));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::matrix(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let s = t.softmax_last_dim();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // larger logits get larger probabilities
        assert!(s.at2(0, 2) > s.at2(0, 1));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::vector(&[100.0, 101.0, 102.0]);
        let b = Tensor::vector(&[0.0, 1.0, 2.0]);
        assert!(a.softmax_last_dim().approx_eq(&b.softmax_last_dim(), 1e-6));
    }

    #[test]
    fn concat_and_slice_cols_roundtrip() {
        let a = Tensor::matrix(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::matrix(&[vec![5.0], vec![6.0]]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 3]);
        assert!(c.slice_cols(0, 2).approx_eq(&a, 0.0));
        assert!(c.slice_cols(2, 3).approx_eq(&b, 0.0));
    }

    #[test]
    fn gather_rows_picks_rows() {
        let table = Tensor::matrix(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]);
        let g = table.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[2.0, 2.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn col_sum_sums_over_rows() {
        let t = Tensor::matrix(&[vec![1.0, 2.0], vec![10.0, 20.0]]);
        assert_eq!(t.col_sum().data(), &[11.0, 22.0]);
    }

    #[test]
    fn argmax_rows_basic() {
        let t = Tensor::matrix(&[vec![0.1, 0.9], vec![3.0, -1.0]]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn tanh_fast_tracks_libm_tanh() {
        let mut worst = 0.0f32;
        let mut x = -12.0f32;
        while x <= 12.0 {
            let err = (tanh_fast(x) - x.tanh()).abs();
            worst = worst.max(err);
            x += 0.003;
        }
        assert!(worst < 2e-6, "worst tanh_fast error {worst}");
        // Beyond the clamp the rational saturates to within one ulp-scale
        // step of ±1 (it never overshoots past ±1 exactly, but lands a hair
        // inside), and the odd numerator makes the origin exact.
        assert!((tanh_fast(40.0) - 1.0).abs() < 5e-7);
        assert!((tanh_fast(-40.0) + 1.0).abs() < 5e-7);
        assert_eq!(tanh_fast(0.0), 0.0);
        assert_eq!(tanh_fast(40.0), tanh_fast(8.0));
    }

    #[test]
    fn fast_and_exact_gelu_agree_tightly() {
        let mut x = -9.0f32;
        while x <= 9.0 {
            let d = (gelu_fast(x) - gelu_exact(x)).abs();
            assert!(d < 1e-5, "gelu mismatch at {x}: {d}");
            let dg = (gelu_grad_fast(x) - gelu_grad_exact(x)).abs();
            assert!(dg < 1e-4, "gelu_grad mismatch at {x}: {dg}");
            x += 0.007;
        }
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh-approximation formula.
        assert!((gelu(0.0)).abs() < 1e-6);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-3,
                "x={} analytic={} fd={}",
                x,
                gelu_grad(x),
                fd
            );
        }
    }
}
