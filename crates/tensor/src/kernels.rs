//! Cache-blocked GEMM micro-kernels and the fast/exact activation toggles.
//!
//! All three matmul variants in [`Tensor`](crate::Tensor) funnel into one
//! panel kernel, [`gemm_panel`]: the left operand arrives as a contiguous
//! row panel `[rows, k]`, the right operand as a row-major `[k, n]` panel
//! (`matmul_transb` / `matmul_transa` transpose-pack into that layout
//! first), and the output accumulates in place. The kernel blocks over `k`
//! in [`KC`]-sized strips for L1/L2 reuse of the packed panel, walks rows
//! in [`MR`]-high micro-panels, and unrolls [`KU`] consecutive `k` steps so
//! the inner `j` loop is a straight chain of independent multiply-adds that
//! LLVM autovectorizes across the output row. The body uses unchecked
//! indexing (bounds established once per micro-panel).
//!
//! # Bit-identity contract
//!
//! Every output element receives its `k` products through a **single
//! accumulator chain in ascending `p` order** — the same order as the
//! pre-blocking reference kernels (kept as `*_reference` on `Tensor`).
//! Blocking only changes *which element* is worked on when, never the order
//! of adds *within* one element, and vectorization happens across `j`
//! (independent accumulators), so `Blocked` and `Reference` modes produce
//! bitwise-equal results at any thread count. One deliberate deviation: the
//! reference kernels skip `a == 0.0` products, the blocked kernels do not.
//! For finite operands this is bitwise unobservable — the accumulator can
//! never be `-0.0` (it starts at `+0.0`, `x + (-x)` rounds to `+0.0`, and
//! `±0.0` sums preserve `+0.0`), so adding `0.0 * b` is a no-op at the bit
//! level. Only a non-finite right operand opposite a zero left operand
//! could differ (`0.0 * inf = NaN`), which no supported model path
//! produces.

use std::sync::atomic::{AtomicU8, Ordering};

/// `k`-dimension block: one `[KC, n]` strip of the packed right panel plus
/// an `[MR, KC]` left micro-panel stay resident in L1/L2 while `MR` output
/// rows accumulate.
pub const KC: usize = 256;
/// Rows per micro-panel: four output rows share each loaded `b` row.
pub const MR: usize = 4;
/// Unrolled `k` steps per inner-loop iteration.
pub const KU: usize = 4;

/// Which matmul implementation [`Tensor`](crate::Tensor) dispatches to.
///
/// Both modes are bit-identical on finite data (pinned by
/// `tests/kernel_equivalence.rs`), so the mode may be flipped at runtime —
/// `kernelbench` uses this for honest before/after measurements on one
/// binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Cache-blocked panel kernels (default).
    Blocked,
    /// The pre-blocking loops, kept for equivalence tests and benchmarks.
    Reference,
}

/// 0 = uninitialised (consult `GS_KERNEL_MODE` on first use), 1 = blocked,
/// 2 = reference.
static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);

/// The active [`KernelMode`].
#[inline]
pub fn kernel_mode() -> KernelMode {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Blocked,
        2 => KernelMode::Reference,
        _ => {
            let mode = match std::env::var("GS_KERNEL_MODE").as_deref() {
                Ok("reference") => KernelMode::Reference,
                _ => KernelMode::Blocked,
            };
            set_kernel_mode(mode);
            mode
        }
    }
}

/// Select the matmul implementation (overrides `GS_KERNEL_MODE`).
pub fn set_kernel_mode(mode: KernelMode) {
    let v = match mode {
        KernelMode::Blocked => 1,
        KernelMode::Reference => 2,
    };
    KERNEL_MODE.store(v, Ordering::Relaxed);
}

/// 0 = uninitialised (consult `GS_EXACT_GELU`), 1 = fast, 2 = exact.
static GELU_MODE: AtomicU8 = AtomicU8::new(0);

/// Whether gelu uses the exact `libm` tanh instead of the fast rational
/// approximation. Unlike the kernel mode, the two gelu variants are **not**
/// bit-identical; see `DESIGN.md` for when each applies.
#[inline]
pub fn exact_gelu() -> bool {
    match GELU_MODE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let exact = matches!(
                std::env::var("GS_EXACT_GELU").as_deref(),
                Ok("1") | Ok("true") | Ok("on")
            );
            set_exact_gelu(exact);
            exact
        }
    }
}

/// Select the exact (`true`) or fast (`false`) gelu implementation
/// (overrides `GS_EXACT_GELU`). The variants differ in low-order bits:
/// only flip this at a point where no bit-pinned comparison spans the
/// change (benchmarks, dedicated tests).
pub fn set_exact_gelu(exact: bool) {
    GELU_MODE.store(if exact { 2 } else { 1 }, Ordering::Relaxed);
}

/// `out[r, j] += sum_p a[r, p] * b[p, j]` for `r < rows`, `j < n`,
/// `p < k`, with `a` a contiguous `[rows, k]` row panel, `b` a row-major
/// `[k, n]` panel and `out` a `[rows, n]` row panel (pre-zeroed by the
/// caller, or holding partial sums).
///
/// Each `out` element's adds happen in ascending `p` order through a single
/// chain — see the module docs for why that pins bit-identity.
pub fn gemm_panel(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, n: usize) {
    assert_eq!(a.len(), rows * k, "gemm_panel lhs panel size");
    assert_eq!(b.len(), k * n, "gemm_panel rhs panel size");
    assert_eq!(out.len(), rows * n, "gemm_panel out panel size");
    if n == 0 || k == 0 {
        return;
    }
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        let mut i = 0;
        while i + MR <= rows {
            // SAFETY: i + MR <= rows and k0 + kc <= k bound every access.
            unsafe { micro_mr(a, b, out, i, k0, kc, k, n) };
            i += MR;
        }
        while i < rows {
            // SAFETY: i < rows and k0 + kc <= k bound every access.
            unsafe { micro_1(a, b, out, i, k0, kc, k, n) };
            i += 1;
        }
        k0 += kc;
    }
}

/// An `MR x KU`-register micro-kernel: rows `i..i+MR`, `k` strip
/// `k0..k0+kc`, vectorizing over the full output row `j in 0..n`.
///
/// # Safety
/// Requires `(i + MR) * k <= a.len()`, `(k0 + kc) * n <= b.len()` and
/// `(i + MR) * n <= out.len()`.
#[inline]
unsafe fn micro_mr(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i: usize,
    k0: usize,
    kc: usize,
    k: usize,
    n: usize,
) {
    let k_end = k0 + kc;
    let mut p = k0;
    while p + KU <= k_end {
        // MR x KU left-operand coefficients, loaded once per strip.
        let a0 = [
            *a.get_unchecked(i * k + p),
            *a.get_unchecked(i * k + p + 1),
            *a.get_unchecked(i * k + p + 2),
            *a.get_unchecked(i * k + p + 3),
        ];
        let a1 = [
            *a.get_unchecked((i + 1) * k + p),
            *a.get_unchecked((i + 1) * k + p + 1),
            *a.get_unchecked((i + 1) * k + p + 2),
            *a.get_unchecked((i + 1) * k + p + 3),
        ];
        let a2 = [
            *a.get_unchecked((i + 2) * k + p),
            *a.get_unchecked((i + 2) * k + p + 1),
            *a.get_unchecked((i + 2) * k + p + 2),
            *a.get_unchecked((i + 2) * k + p + 3),
        ];
        let a3 = [
            *a.get_unchecked((i + 3) * k + p),
            *a.get_unchecked((i + 3) * k + p + 1),
            *a.get_unchecked((i + 3) * k + p + 2),
            *a.get_unchecked((i + 3) * k + p + 3),
        ];
        let b0 = b.get_unchecked(p * n..p * n + n);
        let b1 = b.get_unchecked((p + 1) * n..(p + 1) * n + n);
        let b2 = b.get_unchecked((p + 2) * n..(p + 2) * n + n);
        let b3 = b.get_unchecked((p + 3) * n..(p + 3) * n + n);
        for j in 0..n {
            let bv0 = *b0.get_unchecked(j);
            let bv1 = *b1.get_unchecked(j);
            let bv2 = *b2.get_unchecked(j);
            let bv3 = *b3.get_unchecked(j);
            // Four independent accumulator chains (one per output row),
            // each adding its products in ascending p order.
            let mut o0 = *out.get_unchecked(i * n + j);
            o0 += a0[0] * bv0;
            o0 += a0[1] * bv1;
            o0 += a0[2] * bv2;
            o0 += a0[3] * bv3;
            *out.get_unchecked_mut(i * n + j) = o0;
            let mut o1 = *out.get_unchecked((i + 1) * n + j);
            o1 += a1[0] * bv0;
            o1 += a1[1] * bv1;
            o1 += a1[2] * bv2;
            o1 += a1[3] * bv3;
            *out.get_unchecked_mut((i + 1) * n + j) = o1;
            let mut o2 = *out.get_unchecked((i + 2) * n + j);
            o2 += a2[0] * bv0;
            o2 += a2[1] * bv1;
            o2 += a2[2] * bv2;
            o2 += a2[3] * bv3;
            *out.get_unchecked_mut((i + 2) * n + j) = o2;
            let mut o3 = *out.get_unchecked((i + 3) * n + j);
            o3 += a3[0] * bv0;
            o3 += a3[1] * bv1;
            o3 += a3[2] * bv2;
            o3 += a3[3] * bv3;
            *out.get_unchecked_mut((i + 3) * n + j) = o3;
        }
        p += KU;
    }
    while p < k_end {
        let av = [
            *a.get_unchecked(i * k + p),
            *a.get_unchecked((i + 1) * k + p),
            *a.get_unchecked((i + 2) * k + p),
            *a.get_unchecked((i + 3) * k + p),
        ];
        let brow = b.get_unchecked(p * n..p * n + n);
        for j in 0..n {
            let bv = *brow.get_unchecked(j);
            *out.get_unchecked_mut(i * n + j) += av[0] * bv;
            *out.get_unchecked_mut((i + 1) * n + j) += av[1] * bv;
            *out.get_unchecked_mut((i + 2) * n + j) += av[2] * bv;
            *out.get_unchecked_mut((i + 3) * n + j) += av[3] * bv;
        }
        p += 1;
    }
}

/// Single-row remainder kernel (rows beyond the last full `MR` panel).
///
/// # Safety
/// Requires `(i + 1) * k <= a.len()`, `(k0 + kc) * n <= b.len()` and
/// `(i + 1) * n <= out.len()`.
#[inline]
unsafe fn micro_1(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i: usize,
    k0: usize,
    kc: usize,
    k: usize,
    n: usize,
) {
    let k_end = k0 + kc;
    let mut p = k0;
    while p + KU <= k_end {
        let av = [
            *a.get_unchecked(i * k + p),
            *a.get_unchecked(i * k + p + 1),
            *a.get_unchecked(i * k + p + 2),
            *a.get_unchecked(i * k + p + 3),
        ];
        let b0 = b.get_unchecked(p * n..p * n + n);
        let b1 = b.get_unchecked((p + 1) * n..(p + 1) * n + n);
        let b2 = b.get_unchecked((p + 2) * n..(p + 2) * n + n);
        let b3 = b.get_unchecked((p + 3) * n..(p + 3) * n + n);
        for j in 0..n {
            let mut o = *out.get_unchecked(i * n + j);
            o += av[0] * *b0.get_unchecked(j);
            o += av[1] * *b1.get_unchecked(j);
            o += av[2] * *b2.get_unchecked(j);
            o += av[3] * *b3.get_unchecked(j);
            *out.get_unchecked_mut(i * n + j) = o;
        }
        p += KU;
    }
    while p < k_end {
        let av = *a.get_unchecked(i * k + p);
        let brow = b.get_unchecked(p * n..p * n + n);
        for j in 0..n {
            *out.get_unchecked_mut(i * n + j) += av * *brow.get_unchecked(j);
        }
        p += 1;
    }
}

/// Transpose-packs `src` (row-major `[r, c]`) into `dst` (row-major
/// `[c, r]`): `dst[j * r + i] = src[i * c + j]`. Used to bring the right
/// operand of `matmul_transb` / the left operand of `matmul_transa` into
/// the row-major-over-`k` layout [`gemm_panel`] wants. `dst` must hold
/// `r * c` elements.
pub(crate) fn pack_transpose(src: &[f32], dst: &mut [f32], r: usize, c: usize) {
    debug_assert_eq!(src.len(), r * c);
    debug_assert_eq!(dst.len(), r * c);
    for i in 0..r {
        let row = &src[i * c..(i + 1) * c];
        for (j, &v) in row.iter().enumerate() {
            // SAFETY: j < c and i < r, so j * r + i < c * r = dst.len().
            unsafe {
                *dst.get_unchecked_mut(j * r + i) = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], rows: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * n];
        for i in 0..rows {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn synth(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u64 + 1).wrapping_mul(seed | 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                ((h >> 40) as f32 / 16_777_216.0) - 0.5
            })
            .collect()
    }

    #[test]
    fn gemm_panel_matches_naive_across_boundaries() {
        // Shapes straddling MR, KU and KC boundaries.
        for &(rows, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 4, 4),
            (5, 9, 3),
            (8, 255, 6),
            (2, 256, 5),
            (7, 257, 9),
            (4, 512, 2),
            (6, 300, 33),
        ] {
            let a = synth(rows * k, 3);
            let b = synth(k * n, 7);
            let mut out = vec![0.0f32; rows * n];
            gemm_panel(&a, &b, &mut out, rows, k, n);
            let want = naive(&a, &b, rows, k, n);
            assert_eq!(out, want, "rows={rows} k={k} n={n}");
        }
    }

    #[test]
    fn pack_transpose_round_trips() {
        let src = synth(6 * 4, 11);
        let mut t = vec![0.0f32; 24];
        let mut back = vec![0.0f32; 24];
        pack_transpose(&src, &mut t, 6, 4);
        pack_transpose(&t, &mut back, 4, 6);
        assert_eq!(src, back);
        // dst[j * r + i] = src[i * c + j] with (i, j) = (2, 0)
        assert_eq!(t[2], src[8]);
    }

    #[test]
    fn mode_switches_round_trip() {
        let before = kernel_mode();
        set_kernel_mode(KernelMode::Reference);
        assert_eq!(kernel_mode(), KernelMode::Reference);
        set_kernel_mode(KernelMode::Blocked);
        assert_eq!(kernel_mode(), KernelMode::Blocked);
        set_kernel_mode(before);

        let exact_before = exact_gelu();
        set_exact_gelu(true);
        assert!(exact_gelu());
        set_exact_gelu(false);
        assert!(!exact_gelu());
        set_exact_gelu(exact_before);
    }
}
