//! Analytic per-kernel work estimates for the op profiler.
//!
//! Each function maps an op's shape to a [`Cost`] — floating-point
//! operations and bytes moved — feeding the roofline columns of
//! `gs_obs::prof`. The estimates follow the usual conventions (a matmul is
//! `2·m·k·n` flops; elementwise kernels read their operands once and write
//! the result once); they rank kernels and locate them on a roofline, they
//! are not cycle-exact.

use gs_obs::prof::Cost;

/// Bytes per element (`f32`).
const ELEM: u64 = 4;

/// `[m,k] x [k,n]` (also `[m,k] x [n,k]^T`): `2mkn` flops, one read of each
/// operand and one write of the output.
pub fn matmul(m: usize, k: usize, n: usize) -> Cost {
    let (m, k, n) = (m as u64, k as u64, n as u64);
    Cost::new(2 * m * k * n, ELEM * (m * k + k * n + m * n))
}

/// Backward of a matmul-family op: two products of the same magnitude.
pub fn matmul_bwd(m: usize, k: usize, n: usize) -> Cost {
    let fwd = matmul(m, k, n);
    Cost::new(2 * fwd.flops, 2 * fwd.bytes)
}

/// Unary elementwise kernel over `len` elements at `flops_per_elt` each.
pub fn map(len: usize, flops_per_elt: u64) -> Cost {
    Cost::new(len as u64 * flops_per_elt, 2 * ELEM * len as u64)
}

/// Binary elementwise kernel over `len` elements at `flops_per_elt` each.
pub fn zip(len: usize, flops_per_elt: u64) -> Cost {
    Cost::new(len as u64 * flops_per_elt, 3 * ELEM * len as u64)
}

/// Pure data movement of `len` elements (gather, concat, slice).
pub fn copy(len: usize) -> Cost {
    Cost::new(0, 2 * ELEM * len as u64)
}

/// Forward gelu over `len` elements, mode-aware: the fast rational-tanh
/// kernel is ~27 mul/add/div per element of straight-line arithmetic; the
/// exact libm path is billed at the historical 10 (counting `tanh` as one
/// flop, which is why its measured GFLOP/s column ran so low). Both read
/// the input and write the output once.
pub fn gelu(len: usize) -> Cost {
    let per_elt = if crate::kernels::exact_gelu() { 10 } else { 27 };
    Cost::new(len as u64 * per_elt, 2 * ELEM * len as u64)
}

/// Backward gelu (`gout * gelu'(x)`): reads gout and x, writes gin.
pub fn gelu_bwd(len: usize) -> Cost {
    let per_elt = if crate::kernels::exact_gelu() { 12 } else { 32 };
    Cost::new(len as u64 * per_elt, 3 * ELEM * len as u64)
}

/// Row-wise softmax over `rows` rows of width `d`: max, subtract, exp, sum,
/// divide — about 5 flops per element. The fused kernel reads the input
/// twice (max scan, exp pass), writes the output in the exp pass, then
/// rescales it in place: 5 element transfers per element total. (The
/// pre-fusion kernel also cloned the input up front, which this accounting
/// no longer bills.)
pub fn softmax(rows: usize, d: usize) -> Cost {
    let len = (rows * d) as u64;
    Cost::new(5 * len, 5 * ELEM * len)
}

/// Layer norm over `rows` rows of width `d`: mean, variance, normalize,
/// scale and shift — about 8 flops per element. The kernel makes three
/// streaming reads of x (mean, variance, normalize) and one write each of
/// the output and the normalized aux buffer, plus gamma/beta once and one
/// inv-std per row.
pub fn layer_norm(rows: usize, d: usize) -> Cost {
    let len = (rows * d) as u64;
    Cost::new(8 * len, ELEM * (5 * len + 2 * d as u64 + rows as u64))
}

/// Token-masked cross-entropy over `[rows, classes]` logits: softmax plus
/// log-prob accumulation — about 6 flops per logit.
pub fn cross_entropy(rows: usize, classes: usize) -> Cost {
    let len = (rows * classes) as u64;
    Cost::new(6 * len, 2 * ELEM * len)
}

/// Embedding gather of `rows` rows of width `d` (no arithmetic).
pub fn gather(rows: usize, d: usize) -> Cost {
    copy(rows * d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_counts_flops_and_traffic() {
        let c = matmul(2, 3, 4);
        assert_eq!(c.flops, 2 * 2 * 3 * 4);
        assert_eq!(c.bytes, 4 * (2 * 3 + 3 * 4 + 2 * 4));
        let b = matmul_bwd(2, 3, 4);
        assert_eq!(b.flops, 2 * c.flops);
    }

    #[test]
    fn elementwise_scales_with_len() {
        assert_eq!(map(10, 1).flops, 10);
        assert_eq!(zip(10, 1).bytes, 120);
        assert_eq!(copy(8).flops, 0);
        assert_eq!(softmax(2, 4).flops, 40);
        assert_eq!(softmax(2, 4).bytes, 5 * 4 * 8);
        assert_eq!(layer_norm(2, 4).flops, 64);
        assert_eq!(layer_norm(2, 4).bytes, 4 * (5 * 8 + 2 * 4 + 2));
        assert_eq!(cross_entropy(2, 4).flops, 48);
        assert_eq!(gather(3, 4), copy(12));
    }

    #[test]
    fn gelu_cost_tracks_active_mode() {
        let before = crate::kernels::exact_gelu();
        crate::kernels::set_exact_gelu(false);
        assert_eq!(gelu(10).flops, 270);
        assert_eq!(gelu_bwd(10).flops, 320);
        crate::kernels::set_exact_gelu(true);
        assert_eq!(gelu(10).flops, 100);
        assert_eq!(gelu_bwd(10).flops, 120);
        crate::kernels::set_exact_gelu(before);
        assert_eq!(gelu(8).bytes, 2 * 4 * 8);
        assert_eq!(gelu_bwd(8).bytes, 3 * 4 * 8);
    }
}
