//! A global recycling arena for kernel buffers.
//!
//! Every kernel in this crate allocates its output through [`alloc_zeroed`] /
//! [`alloc_empty`] / [`alloc_copy`], and [`Tensor`](crate::Tensor)'s `Drop`
//! returns the backing `Vec<f32>` here. While a [`scope`] is active, freed
//! buffers are parked in power-of-two size-class buckets and handed back to
//! the next allocation of a compatible size, so a steady-state forward pass
//! (or the packed `predict_tags_batch` serve path) performs **zero per-op
//! heap allocation** after the first warm-up round: [`ArenaStats::fresh_allocs`]
//! stays flat, which `crates/models/tests/arena_flatness.rs` pins with a
//! `GrowthMonitor`.
//!
//! The pool is deliberately **global**, not thread-local: `gs-par` fans work
//! out to pool workers (which allocate outputs) while the fold and the final
//! drop happen on the caller's thread. Thread-local pools would leak buffers
//! from the allocating thread's perspective and never flatten under
//! `GS_NUM_THREADS>1`; a shared pool recycles across threads at the cost of
//! one short mutex hold per alloc/free of a pooled size. Buffers are recycled
//! by *capacity class* (the arena never inspects or trusts old contents —
//! `alloc_zeroed` re-zeroes, `alloc_empty` hands back a cleared vec).
//!
//! Outside a scope (or with `GS_ARENA=off`) every call degrades to the plain
//! `Vec` it replaced — allocation behaviour is bitwise unobservable either
//! way, since buffer *contents* are always written before use.

use gs_race::sync::{AtomicU64, AtomicU8, AtomicUsize, Mutex, Ordering};

/// Buffers smaller than this (in elements) are never pooled: malloc is
/// effectively free at that size and pooling would just add mutex traffic.
pub const MIN_POOL_ELEMS: usize = 64;
/// Number of power-of-two size classes: class `c` holds buffers whose
/// capacity lies in `[MIN_POOL_ELEMS << c, MIN_POOL_ELEMS << (c + 1))`.
/// 19 classes covers 64 .. 32Mi elements (128 MiB); anything larger is
/// returned to the allocator rather than parked.
const NUM_CLASSES: usize = 19;
/// Per-class retention budget in bytes. A whole autograd tape's buffers are
/// freed at once when the tape drops at the end of a training step, so a
/// class must hold a full step's worth of same-sized buffers (hundreds for
/// a deep tape) or the next step re-allocates the overflow every round and
/// the steady state never flattens. Small classes therefore get a high
/// *count* cap, while the byte budget keeps large classes from pinning
/// unbounded memory after a one-off batch-size spike.
const MAX_CLASS_BYTES: usize = 16 << 20;

/// Retention cap (in buffers) for size class `c`: the byte budget divided
/// by the class's minimum buffer size, clamped to [4, 1024].
fn max_per_class(c: usize) -> usize {
    (MAX_CLASS_BYTES / (4 * (MIN_POOL_ELEMS << c))).clamp(4, 1024)
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_BUCKET: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());
static POOL: [Mutex<Vec<Vec<f32>>>; NUM_CLASSES] = [EMPTY_BUCKET; NUM_CLASSES];

/// Nesting depth of active [`scope`] calls (scopes may nest; the pool drains
/// only when the outermost scope ends, via the per-class caps).
static DEPTH: AtomicUsize = AtomicUsize::new(0);

/// Master switch: 0 = uninitialised (read `GS_ARENA` on first use),
/// 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

static FRESH_ALLOCS: AtomicU64 = AtomicU64::new(0);
static RECYCLED_ALLOCS: AtomicU64 = AtomicU64::new(0);
static POOLED_BYTES: AtomicU64 = AtomicU64::new(0);
static POOLED_BUFFERS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the arena's counters.
///
/// `fresh_allocs` / `recycled_allocs` are cumulative (since process start or
/// the last [`reset_stats`]); `pooled_bytes` / `pooled_buffers` describe what
/// the pool currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Pooled-size allocations that had to hit the system allocator while a
    /// scope was active. Flat across steady-state iterations ⇒ zero per-op
    /// heap allocation.
    pub fresh_allocs: u64,
    /// Allocations satisfied by recycling a pooled buffer.
    pub recycled_allocs: u64,
    /// Bytes currently parked in the pool.
    pub pooled_bytes: u64,
    /// Buffers currently parked in the pool.
    pub pooled_buffers: u64,
}

fn enabled() -> bool {
    // ordering: Relaxed — a tri-state switch with no payload behind it;
    // racing first-use initialisers compute the same env-derived value, so
    // the worst case is a redundant store of an identical byte.
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on =
                !matches!(std::env::var("GS_ARENA").as_deref(), Ok("off") | Ok("0") | Ok("false"));
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force the pool on or off (overrides `GS_ARENA`). Used by benches to
/// measure the pre-arena allocation behaviour; disabling does not drop
/// already-pooled buffers (call [`clear`] for that).
pub fn set_pool_enabled(on: bool) {
    // ordering: Relaxed — see enabled().
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Whether buffers are currently being recycled (inside a [`scope`], pool
/// enabled).
#[inline]
pub fn active() -> bool {
    // ordering: Relaxed — scope depth is advisory for the *observing*
    // thread: it only decides pool-vs-malloc for an allocation, never
    // publishes buffer contents (buffers are always written before use,
    // and the pooled buffers themselves travel under the bucket mutexes).
    DEPTH.load(Ordering::Relaxed) > 0 && enabled()
}

/// Run `f` with the arena active: kernel buffers freed inside the closure
/// are parked for reuse instead of returned to the allocator. Scopes nest.
pub fn scope<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            // ordering: Relaxed — see active(); the counter needs RMW
            // atomicity for nesting, not a publication edge.
            DEPTH.fetch_sub(1, Ordering::Relaxed);
        }
    }
    // ordering: Relaxed — see active().
    DEPTH.fetch_add(1, Ordering::Relaxed);
    let _guard = Guard;
    f()
}

/// Size class a *request* for `n` elements is served from: the smallest
/// class whose minimum capacity covers `n`, so any pooled buffer in that
/// class fits.
fn request_class(n: usize) -> Option<usize> {
    if n > MIN_POOL_ELEMS << (NUM_CLASSES - 1) {
        return None;
    }
    let c = n.div_ceil(MIN_POOL_ELEMS).next_power_of_two().trailing_zeros() as usize;
    Some(c)
}

/// Size class a buffer of capacity `cap` is *parked* in (floor), or `None`
/// when the buffer is too small or too large to be worth pooling.
fn park_class(cap: usize) -> Option<usize> {
    if !(MIN_POOL_ELEMS..MIN_POOL_ELEMS << NUM_CLASSES).contains(&cap) {
        return None;
    }
    let c = (cap / MIN_POOL_ELEMS).ilog2() as usize;
    Some(c.min(NUM_CLASSES - 1))
}

fn take(n: usize) -> Option<Vec<f32>> {
    let class = request_class(n)?;
    let mut bucket = POOL[class].lock();
    let mut v = bucket.pop()?;
    drop(bucket);
    // ordering: Relaxed — statistics only; the buffer itself was handed
    // over by the bucket mutex above. Concurrent snapshots may transiently
    // disagree with the bucket contents, which `stats()` documents.
    POOLED_BUFFERS.fetch_sub(1, Ordering::Relaxed);
    POOLED_BYTES.fetch_sub((v.capacity() * 4) as u64, Ordering::Relaxed);
    RECYCLED_ALLOCS.fetch_add(1, Ordering::Relaxed);
    v.clear();
    Some(v)
}

/// An empty `Vec<f32>` with capacity for at least `n` elements (for
/// `extend`-style fills). Recycled from the pool when possible.
pub fn alloc_empty(n: usize) -> Vec<f32> {
    if active() {
        if let Some(v) = take(n) {
            debug_assert!(v.capacity() >= n);
            return v;
        }
        if let Some(class) = request_class(n) {
            // ordering: Relaxed — statistic only.
            FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
            // Round the capacity up to the class minimum: requests are
            // served from the class whose *minimum* covers them, while
            // parking floors by capacity, so an exactly-`n` buffer would
            // park one class below the one its own request reads from and
            // the steady state would never flatten.
            return Vec::with_capacity(MIN_POOL_ELEMS << class);
        }
    }
    Vec::with_capacity(n)
}

/// `vec![0.0; n]`, recycled from the pool when possible.
pub fn alloc_zeroed(n: usize) -> Vec<f32> {
    if active() {
        if let Some(mut v) = take(n) {
            v.resize(n, 0.0);
            return v;
        }
        if let Some(class) = request_class(n) {
            // ordering: Relaxed — statistic only.
            FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
            // Class-minimum capacity, for the same reason as alloc_empty.
            let mut v = Vec::with_capacity(MIN_POOL_ELEMS << class);
            v.resize(n, 0.0);
            return v;
        }
    }
    vec![0.0; n]
}

/// `src.to_vec()`, recycled from the pool when possible.
pub fn alloc_copy(src: &[f32]) -> Vec<f32> {
    let mut v = alloc_empty(src.len());
    v.extend_from_slice(src);
    v
}

/// Offer a buffer back to the pool. Dropped on the spot when no scope is
/// active, the buffer is outside the poolable size range, or its class is
/// already at capacity.
pub fn recycle(v: Vec<f32>) {
    if !active() {
        return;
    }
    let Some(class) = park_class(v.capacity()) else {
        return;
    };
    let mut bucket = POOL[class].lock();
    if bucket.len() >= max_per_class(class) {
        return;
    }
    // ordering: Relaxed — statistics only; see take(). Updated while the
    // bucket lock is held so the counters can never double-count a buffer.
    POOLED_BUFFERS.fetch_add(1, Ordering::Relaxed);
    POOLED_BYTES.fetch_add((v.capacity() * 4) as u64, Ordering::Relaxed);
    bucket.push(v);
}

/// Current counters.
pub fn stats() -> ArenaStats {
    // ordering: Relaxed — counter snapshot; fields may be mutually stale.
    ArenaStats {
        fresh_allocs: FRESH_ALLOCS.load(Ordering::Relaxed),
        recycled_allocs: RECYCLED_ALLOCS.load(Ordering::Relaxed),
        pooled_bytes: POOLED_BYTES.load(Ordering::Relaxed),
        pooled_buffers: POOLED_BUFFERS.load(Ordering::Relaxed),
    }
}

/// Reset the cumulative counters (tests and benches).
pub fn reset_stats() {
    // ordering: Relaxed — statistics only.
    FRESH_ALLOCS.store(0, Ordering::Relaxed);
    RECYCLED_ALLOCS.store(0, Ordering::Relaxed);
}

/// Drop every pooled buffer back to the allocator.
pub fn clear() {
    for bucket in &POOL {
        let drained: Vec<Vec<f32>> = std::mem::take(&mut *bucket.lock());
        for v in &drained {
            // ordering: Relaxed — statistics only; see take().
            POOLED_BUFFERS.fetch_sub(1, Ordering::Relaxed);
            POOLED_BYTES.fetch_sub((v.capacity() * 4) as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_caps_scale_inversely_with_class_size() {
        // Tiny buffers: generous count cap for tape-sized drop bursts.
        assert_eq!(max_per_class(0), 1024);
        // Large buffers: byte budget dominates but never starves the class.
        assert!(max_per_class(NUM_CLASSES - 1) >= 4);
        for c in 1..NUM_CLASSES {
            assert!(max_per_class(c) <= max_per_class(c - 1));
        }
    }

    #[test]
    fn class_bounds_round_trip() {
        // A buffer parked from a request of size n must be reusable by a
        // later request of the same n.
        for n in [64, 65, 100, 127, 128, 4096, 4097, 1 << 20] {
            let req = request_class(n).unwrap();
            let cap = MIN_POOL_ELEMS << req; // minimum capacity alloc'd for n
            assert!(cap >= n, "class capacity {cap} must cover request {n}");
            assert_eq!(park_class(cap), Some(req));
        }
        assert_eq!(request_class(1), Some(0));
        assert_eq!(park_class(MIN_POOL_ELEMS - 1), None);
        assert!(request_class(usize::MAX).is_none());
    }
}
