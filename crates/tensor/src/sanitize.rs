//! Opt-in numeric sanitizer for tape execution.
//!
//! When enabled, every tape op scans its freshly computed output (and, during
//! [`Tape::backward`](crate::Tape::backward), every gradient) for NaN or
//! infinite values — float overflow saturates to infinity, so the Inf class
//! also covers overflow. Only the *first* occurrence is recorded, with full
//! provenance: node index, op name, scope, and the parameter label for
//! leaves. Training loops read it via
//! [`Tape::first_numeric_issue`](crate::Tape::first_numeric_issue) and can
//! attach step/epoch context before aborting.
//!
//! The mode is process-global ([`set_sanitize`]) and latched per tape at
//! construction, so the disabled cost inside the op hot path is a single
//! branch on a plain `bool` field.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

static SANITIZE: AtomicBool = AtomicBool::new(false);

/// Enables or disables numeric sanitizing for tapes created afterwards.
pub fn set_sanitize(enabled: bool) {
    SANITIZE.store(enabled, Ordering::Relaxed);
}

/// Whether new tapes will sanitize.
pub fn sanitize_enabled() -> bool {
    SANITIZE.load(Ordering::Relaxed)
}

/// Class of non-finite value found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericKind {
    /// A NaN element.
    NaN,
    /// An infinite element (including overflowed arithmetic).
    Inf,
}

impl fmt::Display for NumericKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericKind::NaN => write!(f, "NaN"),
            NumericKind::Inf => write!(f, "Inf"),
        }
    }
}

/// Whether the issue appeared in a forward value or a backward gradient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanitizePhase {
    /// Found in an op's forward output.
    Forward,
    /// Found in a gradient during backward.
    Backward,
}

impl fmt::Display for SanitizePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanitizePhase::Forward => write!(f, "forward"),
            SanitizePhase::Backward => write!(f, "backward"),
        }
    }
}

/// First non-finite value found by a sanitizing tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumericIssue {
    /// Tape node index of the offending value.
    pub node: usize,
    /// Name of the op that produced it.
    pub op: &'static str,
    /// Dotted scope path active when the node was recorded.
    pub scope: String,
    /// Parameter label for labeled leaves.
    pub label: Option<String>,
    /// NaN or Inf.
    pub kind: NumericKind,
    /// Forward value or backward gradient.
    pub phase: SanitizePhase,
}

impl fmt::Display for NumericIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "numeric sanitizer: {} in {} of {} (node {}",
            self.kind,
            self.phase_noun(),
            self.op,
            self.node
        )?;
        if !self.scope.is_empty() {
            write!(f, ", scope {}", self.scope)?;
        }
        if let Some(label) = &self.label {
            write!(f, ", param \"{label}\"")?;
        }
        write!(f, ") during {}", self.phase)
    }
}

impl NumericIssue {
    fn phase_noun(&self) -> &'static str {
        match self.phase {
            SanitizePhase::Forward => "output",
            SanitizePhase::Backward => "gradient",
        }
    }
}

/// Classifies the first non-finite element of `data`, if any.
pub(crate) fn scan(data: &[f32]) -> Option<NumericKind> {
    for &x in data {
        if !x.is_finite() {
            return Some(if x.is_nan() { NumericKind::NaN } else { NumericKind::Inf });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_classifies_first_hit() {
        assert_eq!(scan(&[1.0, 2.0]), None);
        assert_eq!(scan(&[1.0, f32::NAN, f32::INFINITY]), Some(NumericKind::NaN));
        assert_eq!(scan(&[f32::NEG_INFINITY, f32::NAN]), Some(NumericKind::Inf));
    }

    #[test]
    fn issue_display_has_full_provenance() {
        let issue = NumericIssue {
            node: 7,
            op: "layer_norm",
            scope: "l0.attn".into(),
            label: None,
            kind: NumericKind::NaN,
            phase: SanitizePhase::Forward,
        };
        assert_eq!(
            issue.to_string(),
            "numeric sanitizer: NaN in output of layer_norm (node 7, scope l0.attn) during forward"
        );
        let leaf = NumericIssue {
            node: 0,
            op: "leaf",
            scope: String::new(),
            label: Some("emb.tok".into()),
            kind: NumericKind::Inf,
            phase: SanitizePhase::Backward,
        };
        assert_eq!(
            leaf.to_string(),
            "numeric sanitizer: Inf in gradient of leaf (node 0, param \"emb.tok\") during backward"
        );
    }
}
