//! Checkpointing: save and load [`ParamStore`] contents as JSON.
//!
//! JSON keeps checkpoints human-inspectable; model sizes in this project are
//! a few MB so the overhead is acceptable. Gradients and optimizer moments
//! are deliberately not persisted — a checkpoint is a set of weights.

use crate::optim::ParamStore;
use std::io::{self, Read, Write};
use std::path::Path;

/// Serializes all parameter names and values to a writer.
pub fn save_params<W: Write>(store: &ParamStore, writer: W) -> io::Result<()> {
    serde_json::to_writer(writer, store).map_err(io::Error::other)
}

/// Deserializes a [`ParamStore`] from a reader, rebuilding the name index.
pub fn load_params<R: Read>(reader: R) -> io::Result<ParamStore> {
    let mut store: ParamStore = serde_json::from_reader(reader).map_err(io::Error::other)?;
    store.rebuild_index();
    Ok(store)
}

/// Saves to a file path.
pub fn save_params_file(store: &ParamStore, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    save_params(store, io::BufWriter::new(file))
}

/// Loads from a file path.
pub fn load_params_file(path: &Path) -> io::Result<ParamStore> {
    let file = std::fs::File::open(path)?;
    load_params(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn roundtrip_preserves_values_and_names() {
        let mut store = ParamStore::new();
        let a = store.register("layer.weight", Tensor::matrix(&[vec![1.5, -2.0], vec![0.0, 3.25]]));
        let b = store.register("layer.bias", Tensor::vector(&[0.1, 0.2]));

        let mut buf = Vec::new();
        save_params(&store, &mut buf).expect("save");
        let loaded = load_params(buf.as_slice()).expect("load");

        assert_eq!(loaded.len(), 2);
        let la = loaded.id("layer.weight").expect("weight id");
        let lb = loaded.id("layer.bias").expect("bias id");
        assert_eq!(loaded.value(la), store.value(a));
        assert_eq!(loaded.value(lb), store.value(b));
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(load_params(&b"not json"[..]).is_err());
    }
}
