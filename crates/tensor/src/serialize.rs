//! Checkpointing: save and load [`ParamStore`] contents as JSON.
//!
//! JSON keeps checkpoints human-inspectable; model sizes in this project are
//! a few MB so the overhead is acceptable. Gradients and optimizer moments
//! are deliberately not persisted — a checkpoint is a set of weights.

use crate::optim::ParamStore;
use std::io::{self, Read, Write};
use std::path::Path;

/// Serializes all parameter names and values to a writer.
pub fn save_params<W: Write>(store: &ParamStore, writer: W) -> io::Result<()> {
    serde_json::to_writer(writer, store).map_err(io::Error::other)
}

/// Deserializes a [`ParamStore`] from a reader, rebuilding the name index.
pub fn load_params<R: Read>(reader: R) -> io::Result<ParamStore> {
    let mut store: ParamStore = serde_json::from_reader(reader).map_err(io::Error::other)?;
    store.rebuild_index();
    Ok(store)
}

/// Saves to a file path.
pub fn save_params_file(store: &ParamStore, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    save_params(store, io::BufWriter::new(file))
}

/// Loads from a file path.
pub fn load_params_file(path: &Path) -> io::Result<ParamStore> {
    let file = std::fs::File::open(path)?;
    load_params(io::BufReader::new(file))
}

/// Magic line identifying the plain-text checkpoint format.
const TEXT_MAGIC: &str = "gs-params v1";

/// Serializes a [`ParamStore`] to a plain-text, bit-exact format.
///
/// Values are written as the hex of each `f32`'s bit pattern, so a
/// round-trip is lossless for every value including NaNs and signed
/// zeros, and the file is stable across platforms and serializer
/// versions. Layout: a magic line, the parameter count, then per
/// parameter one header line (`name ndim d0 d1 ...`) and one line of
/// space-separated hex words. Used for golden-test fixtures that must
/// load without any serde machinery.
pub fn save_params_text<W: Write>(store: &ParamStore, mut writer: W) -> io::Result<()> {
    writeln!(writer, "{TEXT_MAGIC}")?;
    writeln!(writer, "{}", store.len())?;
    for id in store.ids() {
        let value = store.value(id);
        write!(writer, "{} {}", store.name(id), value.shape().len())?;
        for &d in value.shape() {
            write!(writer, " {d}")?;
        }
        writeln!(writer)?;
        let mut line = String::with_capacity(value.len() * 9);
        for (i, v) in value.data().iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&format!("{:08x}", v.to_bits()));
        }
        writeln!(writer, "{line}")?;
    }
    Ok(())
}

/// Deserializes a [`ParamStore`] from [`save_params_text`] output,
/// preserving registration order (and therefore [`ParamStore::ids`]
/// order) exactly.
pub fn load_params_text<R: Read>(mut reader: R) -> io::Result<ParamStore> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut lines = text.lines();
    if lines.next() != Some(TEXT_MAGIC) {
        return Err(bad("missing gs-params magic line"));
    }
    let count: usize =
        lines.next().and_then(|l| l.trim().parse().ok()).ok_or_else(|| bad("bad count line"))?;
    let mut store = ParamStore::new();
    for _ in 0..count {
        let header = lines.next().ok_or_else(|| bad("truncated header"))?;
        let mut parts = header.split_whitespace();
        let name = parts.next().ok_or_else(|| bad("missing name"))?;
        let ndim: usize =
            parts.next().and_then(|p| p.parse().ok()).ok_or_else(|| bad("bad ndim"))?;
        let shape: Vec<usize> =
            parts.map(|p| p.parse().map_err(|_| bad("bad dim"))).collect::<Result<_, _>>()?;
        if shape.len() != ndim {
            return Err(bad("dim count mismatch"));
        }
        let data_line = lines.next().ok_or_else(|| bad("truncated data"))?;
        let data: Vec<f32> = data_line
            .split_whitespace()
            .map(|w| u32::from_str_radix(w, 16).map(f32::from_bits).map_err(|_| bad("bad hex")))
            .collect::<Result<_, _>>()?;
        if data.len() != shape.iter().product::<usize>() {
            return Err(bad("value count does not match shape"));
        }
        store.register(name, crate::tensor::Tensor::from_vec(shape, data));
    }
    Ok(store)
}

/// [`save_params_text`] to a file path.
pub fn save_params_text_file(store: &ParamStore, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    save_params_text(store, io::BufWriter::new(file))
}

/// [`load_params_text`] from a file path.
pub fn load_params_text_file(path: &Path) -> io::Result<ParamStore> {
    let file = std::fs::File::open(path)?;
    load_params_text(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn roundtrip_preserves_values_and_names() {
        let mut store = ParamStore::new();
        let a = store.register("layer.weight", Tensor::matrix(&[vec![1.5, -2.0], vec![0.0, 3.25]]));
        let b = store.register("layer.bias", Tensor::vector(&[0.1, 0.2]));

        let mut buf = Vec::new();
        save_params(&store, &mut buf).expect("save");
        let loaded = load_params(buf.as_slice()).expect("load");

        assert_eq!(loaded.len(), 2);
        let la = loaded.id("layer.weight").expect("weight id");
        let lb = loaded.id("layer.bias").expect("bias id");
        assert_eq!(loaded.value(la), store.value(a));
        assert_eq!(loaded.value(lb), store.value(b));
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(load_params(&b"not json"[..]).is_err());
    }

    #[test]
    fn text_roundtrip_is_bit_exact_and_order_preserving() {
        let mut store = ParamStore::new();
        store.register(
            "enc.weight",
            Tensor::from_vec(vec![2, 3], vec![1.5, -0.0, f32::MIN_POSITIVE, 3.25e-12, -7.0, 0.125]),
        );
        store.register("enc.bias", Tensor::vector(&[0.1, -0.2, 42.0]));
        store.register("head", Tensor::from_vec(vec![1, 1], vec![f32::NAN]));

        let mut buf = Vec::new();
        save_params_text(&store, &mut buf).expect("save");
        let loaded = load_params_text(buf.as_slice()).expect("load");

        assert_eq!(loaded.len(), store.len());
        for (orig, back) in store.ids().zip(loaded.ids()) {
            assert_eq!(store.name(orig), loaded.name(back), "registration order changed");
            let (a, b) = (store.value(orig), loaded.value(back));
            assert_eq!(a.shape(), b.shape());
            let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b), "bits diverged for {}", store.name(orig));
        }
    }

    #[test]
    fn text_load_rejects_malformed_input() {
        for bad in [
            "",
            "wrong magic\n1\n",
            "gs-params v1\nnot-a-count\n",
            "gs-params v1\n1\nw 1 2\n00000000\n",
            "gs-params v1\n1\nw 1 2\nzz zz\n",
            "gs-params v1\n2\nw 1 1\n00000000\n",
        ] {
            assert!(load_params_text(bad.as_bytes()).is_err(), "accepted {bad:?}");
        }
    }
}
