//! A public, analysis-friendly mirror of recorded tape programs.
//!
//! [`Tape::export_graph`](crate::Tape::export_graph) (and the symbolic
//! recorder in gs-check) produce a [`Graph`]: a flat list of [`GraphNode`]s
//! in insertion order, each carrying its [`OpKind`], result shape, scope, and
//! optional parameter label. Static tools walk this structure instead of the
//! tape's private internals, and [`infer_shape`] re-derives every node's
//! shape from the same rules the eager tape enforces at runtime.

use crate::shape::{self, ShapeError};

/// Operation kinds as seen by analysis tools.
///
/// Operand fields hold node indices into the owning [`Graph`]. Data-carrying
/// ops are summarized by what their shape rules need (e.g. `embed_gather`
/// keeps the id count and the largest id rather than the full id list).
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Input with no parents; `requires_grad` marks trainable parameters.
    Leaf {
        /// Whether backward propagates into this leaf.
        requires_grad: bool,
    },
    /// Elementwise `a + b`.
    Add {
        /// Left operand.
        a: usize,
        /// Right operand.
        b: usize,
    },
    /// `[n, d] + [d]` broadcast.
    AddBias {
        /// Input matrix.
        x: usize,
        /// Bias vector.
        bias: usize,
    },
    /// Elementwise `a - b`.
    Sub {
        /// Left operand.
        a: usize,
        /// Right operand.
        b: usize,
    },
    /// Elementwise `a * b`.
    Mul {
        /// Left operand.
        a: usize,
        /// Right operand.
        b: usize,
    },
    /// Multiplication by a scalar constant.
    Scale {
        /// Input.
        x: usize,
        /// The constant factor.
        factor: f32,
    },
    /// `[m, k] x [k, n]`.
    MatMul {
        /// Left operand.
        a: usize,
        /// Right operand.
        b: usize,
    },
    /// `[m, k] x [n, k]^T`.
    MatMulTransB {
        /// Left operand.
        a: usize,
        /// Right (transposed) operand.
        b: usize,
    },
    /// Elementwise ReLU.
    Relu {
        /// Input.
        x: usize,
    },
    /// Elementwise GELU.
    Gelu {
        /// Input.
        x: usize,
    },
    /// Elementwise tanh.
    Tanh {
        /// Input.
        x: usize,
    },
    /// Softmax over the last dimension.
    SoftmaxLastDim {
        /// Input.
        x: usize,
    },
    /// Layer normalization with learned gain/bias.
    LayerNorm {
        /// Input.
        x: usize,
        /// Gain vector.
        gamma: usize,
        /// Bias vector.
        beta: usize,
    },
    /// Row gather from an embedding table.
    EmbedGather {
        /// The table node.
        table: usize,
        /// Number of gathered rows.
        num_ids: usize,
        /// Largest gathered row index (`None` for an empty id list).
        max_id: Option<usize>,
    },
    /// Inverted dropout with a fixed mask.
    Dropout {
        /// Input.
        x: usize,
        /// Shape of the recorded mask.
        mask_shape: Vec<usize>,
    },
    /// Column-wise concatenation.
    ConcatCols {
        /// The concatenated parts, left to right.
        parts: Vec<usize>,
    },
    /// Column slice `[start, end)`.
    SliceCols {
        /// Input.
        x: usize,
        /// First column.
        start: usize,
        /// One past the last column.
        end: usize,
    },
    /// Mean over all elements.
    MeanAll {
        /// Input.
        x: usize,
    },
    /// Sum over all elements.
    SumAll {
        /// Input.
        x: usize,
    },
    /// Token-masked mean cross-entropy.
    CrossEntropy {
        /// Logits node.
        logits: usize,
        /// Number of targets (must equal logit rows).
        num_targets: usize,
        /// Largest non-ignored target (`None` if all are ignored).
        max_target: Option<i64>,
    },
}

impl OpKind {
    /// The op's stable name, matching [`ShapeError::op`] for its rule.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Leaf { .. } => "leaf",
            OpKind::Add { .. } => "add",
            OpKind::AddBias { .. } => "add_bias",
            OpKind::Sub { .. } => "sub",
            OpKind::Mul { .. } => "mul",
            OpKind::Scale { .. } => "scale",
            OpKind::MatMul { .. } => "matmul",
            OpKind::MatMulTransB { .. } => "matmul_transb",
            OpKind::Relu { .. } => "relu",
            OpKind::Gelu { .. } => "gelu",
            OpKind::Tanh { .. } => "tanh",
            OpKind::SoftmaxLastDim { .. } => "softmax_last_dim",
            OpKind::LayerNorm { .. } => "layer_norm",
            OpKind::EmbedGather { .. } => "embed_gather",
            OpKind::Dropout { .. } => "dropout",
            OpKind::ConcatCols { .. } => "concat_cols",
            OpKind::SliceCols { .. } => "slice_cols",
            OpKind::MeanAll { .. } => "mean_all",
            OpKind::SumAll { .. } => "sum_all",
            OpKind::CrossEntropy { .. } => "cross_entropy",
        }
    }

    /// Node indices of this op's operands, in rule order.
    pub fn operands(&self) -> Vec<usize> {
        match self {
            OpKind::Leaf { .. } => Vec::new(),
            OpKind::Add { a, b }
            | OpKind::Sub { a, b }
            | OpKind::Mul { a, b }
            | OpKind::MatMul { a, b }
            | OpKind::MatMulTransB { a, b } => vec![*a, *b],
            OpKind::AddBias { x, bias } => vec![*x, *bias],
            OpKind::Scale { x, .. }
            | OpKind::Relu { x }
            | OpKind::Gelu { x }
            | OpKind::Tanh { x }
            | OpKind::SoftmaxLastDim { x }
            | OpKind::Dropout { x, .. }
            | OpKind::SliceCols { x, .. }
            | OpKind::MeanAll { x }
            | OpKind::SumAll { x } => vec![*x],
            OpKind::LayerNorm { x, gamma, beta } => vec![*x, *gamma, *beta],
            OpKind::EmbedGather { table, .. } => vec![*table],
            OpKind::ConcatCols { parts } => parts.clone(),
            OpKind::CrossEntropy { logits, .. } => vec![*logits],
        }
    }

    /// Whether this is a leaf (parameter or constant).
    pub fn is_leaf(&self) -> bool {
        matches!(self, OpKind::Leaf { .. })
    }

    /// Whether this is a trainable-parameter leaf.
    pub fn is_param(&self) -> bool {
        matches!(self, OpKind::Leaf { requires_grad: true })
    }
}

/// One node of an exported graph.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// The operation that produced this node.
    pub kind: OpKind,
    /// The result shape; `None` when a symbolic recorder could not determine
    /// it (a shape rule failed on this node or upstream).
    pub shape: Option<Vec<usize>>,
    /// Index into [`Graph::scopes`] for the scope active at record time.
    pub scope: u32,
    /// Parameter name for labeled leaves (set by `Binder::bind`).
    pub label: Option<String>,
}

/// A recorded tensor program: nodes in insertion order plus the scope table.
///
/// Operands always precede results, so a single forward walk visits nodes in
/// topological order.
#[derive(Debug, Clone)]
pub struct Graph {
    /// The nodes, in insertion order.
    pub nodes: Vec<GraphNode>,
    /// Interned scope names; index 0 is the root scope `""`.
    pub scopes: Vec<String>,
}

impl Default for Graph {
    fn default() -> Self {
        Graph { nodes: Vec::new(), scopes: vec![String::new()] }
    }
}

impl Graph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The dotted scope path for a scope id (empty string for the root).
    pub fn scope_name(&self, id: u32) -> &str {
        self.scopes.get(id as usize).map_or("", String::as_str)
    }
}

/// Applies the shape rule for `kind` given a lookup of operand shapes.
///
/// Returns `Ok(None)` when any operand shape is unknown (the caller should
/// treat the result as unknown too, without reporting a second finding for
/// the same upstream violation). Leaves have no rule; their shape comes from
/// the recorded value, and this function returns `Ok(None)` for them.
pub fn infer_shape(
    kind: &OpKind,
    operand_shape: impl Fn(usize) -> Option<Vec<usize>>,
) -> Result<Option<Vec<usize>>, ShapeError> {
    let get = |idx: usize| operand_shape(idx);
    macro_rules! need {
        ($idx:expr) => {
            match get($idx) {
                Some(s) => s,
                None => return Ok(None),
            }
        };
    }
    let shape = match kind {
        OpKind::Leaf { .. } => return Ok(None),
        OpKind::Add { a, b } => shape::same_shape("add", &need!(*a), &need!(*b))?,
        OpKind::Sub { a, b } => shape::same_shape("sub", &need!(*a), &need!(*b))?,
        OpKind::Mul { a, b } => shape::same_shape("mul", &need!(*a), &need!(*b))?,
        OpKind::AddBias { x, bias } => shape::add_bias(&need!(*x), &need!(*bias))?,
        OpKind::Scale { x, .. } | OpKind::Relu { x } | OpKind::Gelu { x } | OpKind::Tanh { x } => {
            shape::unary(&need!(*x))?
        }
        OpKind::SoftmaxLastDim { x } => shape::softmax_last_dim(&need!(*x))?,
        OpKind::MatMul { a, b } => shape::matmul(&need!(*a), &need!(*b))?,
        OpKind::MatMulTransB { a, b } => shape::matmul_transb(&need!(*a), &need!(*b))?,
        OpKind::LayerNorm { x, gamma, beta } => {
            shape::layer_norm(&need!(*x), &need!(*gamma), &need!(*beta))?
        }
        OpKind::EmbedGather { table, num_ids, max_id } => {
            shape::embed_gather(&need!(*table), *num_ids, *max_id)?
        }
        OpKind::Dropout { x, mask_shape } => shape::dropout(&need!(*x), mask_shape)?,
        OpKind::ConcatCols { parts } => {
            let mut shapes = Vec::with_capacity(parts.len());
            for &p in parts {
                shapes.push(need!(p));
            }
            let refs: Vec<&[usize]> = shapes.iter().map(Vec::as_slice).collect();
            shape::concat_cols(&refs)?
        }
        OpKind::SliceCols { x, start, end } => shape::slice_cols(&need!(*x), *start, *end)?,
        OpKind::MeanAll { x } | OpKind::SumAll { x } => shape::reduce_all(&need!(*x))?,
        OpKind::CrossEntropy { logits, num_targets, max_target } => {
            shape::cross_entropy(&need!(*logits), *num_targets, *max_target)?
        }
    };
    Ok(Some(shape))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_matches_rules_and_propagates_unknown() {
        let shapes = [Some(vec![2usize, 3]), Some(vec![3, 4]), None];
        let get = |i: usize| shapes[i].clone();
        let ok = infer_shape(&OpKind::MatMul { a: 0, b: 1 }, get).unwrap();
        assert_eq!(ok, Some(vec![2, 4]));
        let unknown = infer_shape(&OpKind::MatMul { a: 0, b: 2 }, get).unwrap();
        assert_eq!(unknown, None);
        let err = infer_shape(&OpKind::MatMul { a: 1, b: 1 }, get).unwrap_err();
        assert_eq!(err.op(), "matmul");
    }

    #[test]
    fn operands_cover_every_kind() {
        assert!(OpKind::Leaf { requires_grad: true }.operands().is_empty());
        assert_eq!(OpKind::LayerNorm { x: 0, gamma: 1, beta: 2 }.operands(), vec![0, 1, 2]);
        assert_eq!(OpKind::ConcatCols { parts: vec![3, 5] }.operands(), vec![3, 5]);
        assert_eq!(
            OpKind::CrossEntropy { logits: 7, num_targets: 4, max_target: Some(1) }.operands(),
            vec![7]
        );
    }
}
