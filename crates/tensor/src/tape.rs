//! Reverse-mode automatic differentiation on a flat tape.
//!
//! A [`Tape`] records every operation as a [`Node`] holding the forward
//! value, the operation kind, and (where needed) auxiliary buffers for the
//! backward pass. [`Var`] is a copyable handle into the tape. Calling
//! [`Tape::backward`] walks the nodes in reverse topological order (which is
//! simply reverse insertion order, since operands always precede results)
//! and accumulates gradients.
//!
//! The op set is exactly what a transformer encoder with a token
//! classification head needs; each op's backward rule is unit-tested against
//! finite differences in this module's tests.

use crate::arena;
use crate::cost;
use crate::graph::{Graph, GraphNode, OpKind};
use crate::sanitize::{self, NumericIssue, SanitizePhase};
use crate::shape::{self, ShapeError};
use crate::tensor::{Tensor, ELEMWISE_PAR_CUTOFF};
use gs_obs::prof;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// Raw `f32` base pointer that may cross threads. Used by row-parallel
/// kernels that fill several output buffers at once: each task writes only
/// the rows it owns, and the fork-join scope joins before the buffers are
/// read, so the aliasing is benign.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// # Safety
    /// The caller must guarantee `[offset, offset + len)` is in bounds and
    /// not written by any other task in the same scope.
    unsafe fn slice_mut<'a>(self, offset: usize, len: usize) -> &'a mut [f32] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }
}

/// Whether a row-wise tape kernel over `rows` rows of `total` elements
/// should dispatch to the gs-par pool.
#[inline]
fn rows_par_worthwhile(rows: usize, total: usize) -> bool {
    rows > 1 && total >= ELEMWISE_PAR_CUTOFF && gs_par::max_threads() > 1
}

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// The node index within its tape.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a handle from a raw node index. Used by alternative
    /// [`TapeOps`] implementations (e.g. the gs-check symbolic tape);
    /// a handle is only meaningful on the tape that issued the index.
    pub fn from_index(index: usize) -> Var {
        Var(index)
    }
}

/// Operation kinds recorded on the tape.
#[derive(Debug)]
enum Op {
    /// Input with no parents. `requires_grad` distinguishes parameters from
    /// constants so backward can skip constant subtrees.
    Leaf { requires_grad: bool },
    /// Elementwise `a + b` for equal shapes.
    Add(usize, usize),
    /// `[n, d] + [d]` broadcast (bias add).
    AddBias(usize, usize),
    /// Elementwise `a - b`.
    Sub(usize, usize),
    /// Elementwise `a * b`.
    Mul(usize, usize),
    /// `a * c` for a scalar constant `c`.
    Scale(usize, f32),
    /// `[m,k] x [k,n]`.
    MatMul(usize, usize),
    /// `[m,k] x [n,k]^T` (attention scores).
    MatMulTransB(usize, usize),
    /// Elementwise ReLU.
    Relu(usize),
    /// Elementwise GELU (tanh approximation).
    Gelu(usize),
    /// Elementwise tanh.
    Tanh(usize),
    /// Softmax over the last dimension.
    SoftmaxLastDim(usize),
    /// Layer normalization over the last dimension with learned gain/bias.
    LayerNorm { x: usize, gamma: usize, beta: usize },
    /// Row gather from an embedding table: output `[ids.len, d]`.
    EmbedGather { table: usize, ids: Vec<usize> },
    /// Inverted-dropout: multiply by a fixed 0/(1/(1-p)) mask.
    Dropout { x: usize },
    /// Column-wise concatenation of rank-2 tensors with equal row counts.
    ConcatCols(Vec<usize>),
    /// Column slice `[start, end)` of a rank-2 tensor.
    SliceCols { x: usize, start: usize },
    /// Mean over all elements -> scalar.
    MeanAll(usize),
    /// Sum over all elements -> scalar.
    SumAll(usize),
    /// Token-masked mean cross-entropy over `[n, classes]` logits.
    /// `targets[i] < 0` marks an ignored position.
    CrossEntropy { logits: usize, targets: Vec<i64> },
}

struct Node {
    value: Rc<Tensor>,
    op: Op,
    /// Auxiliary forward buffers needed by backward:
    /// - `SoftmaxLastDim`: none (value suffices)
    /// - `LayerNorm`: normalized activations and per-row inverse stddev
    /// - `Dropout`: the scaled mask
    /// - `CrossEntropy`: softmax probabilities
    aux: Option<Tensor>,
    /// Second auxiliary buffer (LayerNorm inverse stddev per row).
    aux2: Option<Tensor>,
    /// Interned scope id active when the node was recorded.
    scope: u32,
    /// Parameter name for labeled leaves (provenance in analysis output).
    label: Option<String>,
}

/// Stable op name used by [`ShapeError`], exported graphs, and the
/// sanitizer, so every reporting path names ops identically.
fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Leaf { .. } => "leaf",
        Op::Add(..) => "add",
        Op::AddBias(..) => "add_bias",
        Op::Sub(..) => "sub",
        Op::Mul(..) => "mul",
        Op::Scale(..) => "scale",
        Op::MatMul(..) => "matmul",
        Op::MatMulTransB(..) => "matmul_transb",
        Op::Relu(..) => "relu",
        Op::Gelu(..) => "gelu",
        Op::Tanh(..) => "tanh",
        Op::SoftmaxLastDim(..) => "softmax_last_dim",
        Op::LayerNorm { .. } => "layer_norm",
        Op::EmbedGather { .. } => "embed_gather",
        Op::Dropout { .. } => "dropout",
        Op::ConcatCols(..) => "concat_cols",
        Op::SliceCols { .. } => "slice_cols",
        Op::MeanAll(..) => "mean_all",
        Op::SumAll(..) => "sum_all",
        Op::CrossEntropy { .. } => "cross_entropy",
    }
}

/// Static backward-kernel names (`<op>.bwd`), so profiler rows distinguish
/// forward kernels from their gradient kernels without allocating.
fn bwd_name(op: &Op) -> &'static str {
    match op {
        Op::Leaf { .. } => "leaf.bwd",
        Op::Add(..) => "add.bwd",
        Op::AddBias(..) => "add_bias.bwd",
        Op::Sub(..) => "sub.bwd",
        Op::Mul(..) => "mul.bwd",
        Op::Scale(..) => "scale.bwd",
        Op::MatMul(..) => "matmul.bwd",
        Op::MatMulTransB(..) => "matmul_transb.bwd",
        Op::Relu(..) => "relu.bwd",
        Op::Gelu(..) => "gelu.bwd",
        Op::Tanh(..) => "tanh.bwd",
        Op::SoftmaxLastDim(..) => "softmax_last_dim.bwd",
        Op::LayerNorm { .. } => "layer_norm.bwd",
        Op::EmbedGather { .. } => "embed_gather.bwd",
        Op::Dropout { .. } => "dropout.bwd",
        Op::ConcatCols(..) => "concat_cols.bwd",
        Op::SliceCols { .. } => "slice_cols.bwd",
        Op::MeanAll(..) => "mean_all.bwd",
        Op::SumAll(..) => "sum_all.bwd",
        Op::CrossEntropy { .. } => "cross_entropy.bwd",
    }
}

/// Work estimate for one backward step of `op` given the output gradient
/// length; matmul-family ops read their operand shapes off the tape.
fn bwd_cost(op: &Op, nodes: &[Node], gout_len: usize) -> prof::Cost {
    match op {
        Op::Leaf { .. } => prof::Cost::zero(),
        Op::MatMul(a, b) => {
            let (va, vb) = (&nodes[*a].value, &nodes[*b].value);
            cost::matmul_bwd(va.rows(), va.cols(), vb.cols())
        }
        Op::MatMulTransB(a, b) => {
            let (va, vb) = (&nodes[*a].value, &nodes[*b].value);
            cost::matmul_bwd(va.rows(), va.cols(), vb.rows())
        }
        Op::SoftmaxLastDim(a) => {
            let va = &nodes[*a].value;
            let d = *va.shape().last().unwrap_or(&1);
            cost::softmax(va.len() / d.max(1), d)
        }
        Op::LayerNorm { x, .. } => {
            let vx = &nodes[*x].value;
            let d = *vx.shape().last().unwrap_or(&1);
            let fwd = cost::layer_norm(vx.len() / d.max(1), d);
            // Two row passes (gx, then gamma/beta reductions).
            prof::Cost::new(2 * fwd.flops, 2 * fwd.bytes)
        }
        Op::CrossEntropy { logits, targets } => {
            let classes = nodes[*logits].value.cols();
            cost::cross_entropy(targets.len(), classes)
        }
        Op::EmbedGather { table, ids } => cost::gather(ids.len(), nodes[*table].value.cols()),
        Op::Gelu(..) => cost::gelu_bwd(gout_len),
        Op::Tanh(..) => cost::map(gout_len, 3),
        Op::Mul(..) => cost::zip(2 * gout_len, 1),
        Op::MeanAll(x) | Op::SumAll(x) => cost::map(nodes[*x].value.len(), 1),
        Op::ConcatCols(..) | Op::SliceCols { .. } => cost::copy(gout_len),
        _ => cost::zip(gout_len, 1),
    }
}

/// Panics with the rule's error text on a shape violation — the eager
/// counterpart of a gs-check finding, with an identical message.
fn enforce(result: Result<Vec<usize>, ShapeError>) {
    if let Err(e) = result {
        panic!("{e}");
    }
}

/// Gradient results of a backward pass, indexed by [`Var`].
pub struct Grads {
    grads: Vec<Option<Tensor>>,
}

impl Grads {
    /// The gradient of the loss with respect to `var`, if it was reached.
    pub fn get(&self, var: Var) -> Option<&Tensor> {
        self.grads.get(var.index()).and_then(Option::as_ref)
    }

    /// Takes ownership of a gradient, leaving `None` in its place.
    pub fn take(&mut self, var: Var) -> Option<Tensor> {
        self.grads.get_mut(var.index()).and_then(Option::take)
    }
}

/// A flat autograd tape.
///
/// Tapes are cheap to create; training loops build one per step and drop it
/// after applying gradients.
///
/// Tapes also record *provenance*: a stack of named scopes
/// ([`push_scope`](Tape::push_scope)) and per-leaf parameter labels, which
/// exported graphs ([`export_graph`](Tape::export_graph)) and the numeric
/// sanitizer use to point findings at a layer and parameter by name.
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
    /// Interned dotted scope paths; index 0 is the root scope `""`.
    scopes: RefCell<Vec<String>>,
    /// Stack of active scope ids; empty means the root scope.
    scope_stack: RefCell<Vec<u32>>,
    /// Latched from the process-global flag at construction, so the hot-path
    /// cost when disabled is one branch on a plain bool.
    sanitize: bool,
    /// Latched from `gs_obs::prof` at construction, same pattern as
    /// `sanitize`: op methods record per-kernel profiler samples only when
    /// this is set, costing one plain-bool branch otherwise.
    prof: bool,
    first_issue: RefCell<Option<NumericIssue>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape. Numeric sanitizing follows the process-global
    /// flag ([`crate::set_sanitize`]) at this moment.
    pub fn new() -> Self {
        Tape {
            nodes: RefCell::new(Vec::new()),
            scopes: RefCell::new(vec![String::new()]),
            scope_stack: RefCell::new(Vec::new()),
            sanitize: sanitize::sanitize_enabled(),
            prof: prof::enabled(),
            first_issue: RefCell::new(None),
        }
    }

    /// Creates an empty tape with numeric sanitizing forced on, regardless
    /// of the global flag.
    pub fn sanitized() -> Self {
        let mut tape = Self::new();
        tape.sanitize = true;
        tape
    }

    /// Whether this tape scans op outputs and gradients for NaN/Inf.
    pub fn is_sanitizing(&self) -> bool {
        self.sanitize
    }

    /// Whether this tape records per-op profiler samples (latched from
    /// [`gs_obs::prof::enabled`] at construction).
    pub fn is_profiling(&self) -> bool {
        self.prof
    }

    /// Starts a profiler timer for op `name` keyed by the tape's current
    /// provenance scope path; a free no-op timer when profiling is off.
    #[inline]
    fn prof_op(&self, name: &'static str) -> prof::OpTimer {
        if !self.prof {
            return prof::OpTimer::noop();
        }
        let path = self.scopes.borrow()[self.current_scope() as usize].clone();
        prof::op_at(path, name)
    }

    /// The first NaN/Inf found by a sanitizing tape, if any.
    pub fn first_numeric_issue(&self) -> Option<NumericIssue> {
        self.first_issue.borrow().clone()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Enters a named provenance scope; nested scopes join with dots
    /// (`push_scope("l0")` then `push_scope("attn")` yields `l0.attn`).
    pub fn push_scope(&self, name: &str) {
        let parent = self.current_scope();
        let full = {
            let scopes = self.scopes.borrow();
            let parent_name = &scopes[parent as usize];
            if parent_name.is_empty() {
                name.to_string()
            } else {
                format!("{parent_name}.{name}")
            }
        };
        let id = {
            let mut scopes = self.scopes.borrow_mut();
            match scopes.iter().position(|s| *s == full) {
                Some(i) => i as u32,
                None => {
                    scopes.push(full);
                    (scopes.len() - 1) as u32
                }
            }
        };
        self.scope_stack.borrow_mut().push(id);
    }

    /// Leaves the innermost scope (no-op at the root).
    pub fn pop_scope(&self) {
        self.scope_stack.borrow_mut().pop();
    }

    fn current_scope(&self) -> u32 {
        self.scope_stack.borrow().last().copied().unwrap_or(0)
    }

    fn push(&self, value: Tensor, op: Op) -> Var {
        self.push_node(value, op, None, None, None)
    }

    fn push_with_aux(
        &self,
        value: Tensor,
        op: Op,
        aux: Option<Tensor>,
        aux2: Option<Tensor>,
    ) -> Var {
        self.push_node(value, op, aux, aux2, None)
    }

    fn push_node(
        &self,
        value: Tensor,
        op: Op,
        aux: Option<Tensor>,
        aux2: Option<Tensor>,
        label: Option<String>,
    ) -> Var {
        let scope = self.current_scope();
        if self.sanitize {
            self.scan_forward(&value, &op, scope, label.as_deref());
        }
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value: Rc::new(value), op, aux, aux2, scope, label });
        Var(nodes.len() - 1)
    }

    /// Records the first non-finite forward value with full provenance.
    fn scan_forward(&self, value: &Tensor, op: &Op, scope: u32, label: Option<&str>) {
        if self.first_issue.borrow().is_some() {
            return;
        }
        if let Some(kind) = sanitize::scan(value.data()) {
            *self.first_issue.borrow_mut() = Some(NumericIssue {
                node: self.nodes.borrow().len(),
                op: op_name(op),
                scope: self.scopes.borrow()[scope as usize].clone(),
                label: label.map(str::to_string),
                kind,
                phase: SanitizePhase::Forward,
            });
        }
    }

    fn value_rc(&self, var: Var) -> Rc<Tensor> {
        Rc::clone(&self.nodes.borrow()[var.index()].value)
    }

    /// The forward value of a node (cheap `Rc` clone).
    pub fn value(&self, var: Var) -> Rc<Tensor> {
        self.value_rc(var)
    }

    /// Records a trainable leaf (parameter) on the tape.
    pub fn leaf(&self, value: Tensor) -> Var {
        let mut timer = self.prof_op("leaf");
        timer.set_cost(cost::copy(value.len()));
        self.push(value, Op::Leaf { requires_grad: true })
    }

    /// Records a constant leaf; backward will not propagate into it.
    pub fn constant(&self, value: Tensor) -> Var {
        let mut timer = self.prof_op("leaf");
        timer.set_cost(cost::copy(value.len()));
        self.push(value, Op::Leaf { requires_grad: false })
    }

    /// Records a trainable leaf carrying a parameter label for provenance.
    pub fn leaf_labeled(&self, value: &Tensor, label: &str) -> Var {
        let mut timer = self.prof_op("leaf");
        timer.set_cost(cost::copy(value.len()));
        self.push_node(
            value.clone(),
            Op::Leaf { requires_grad: true },
            None,
            None,
            Some(label.to_string()),
        )
    }

    /// Records a labeled constant leaf.
    pub fn constant_labeled(&self, value: &Tensor, label: &str) -> Var {
        let mut timer = self.prof_op("leaf");
        timer.set_cost(cost::copy(value.len()));
        self.push_node(
            value.clone(),
            Op::Leaf { requires_grad: false },
            None,
            None,
            Some(label.to_string()),
        )
    }

    /// Elementwise addition of equal shapes.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let mut timer = self.prof_op("add");
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        enforce(shape::same_shape("add", va.shape(), vb.shape()));
        timer.set_cost(cost::zip(va.len(), 1));
        let out = va.zip_map(&vb, |x, y| x + y);
        self.push(out, Op::Add(a.index(), b.index()))
    }

    /// Adds a `[d]` bias to every row of `[n, d]`.
    pub fn add_bias(&self, x: Var, bias: Var) -> Var {
        let mut timer = self.prof_op("add_bias");
        let (vx, vb) = (self.value_rc(x), self.value_rc(bias));
        enforce(shape::add_bias(vx.shape(), vb.shape()));
        timer.set_cost(cost::zip(vx.len(), 1));
        let mut out = (*vx).clone();
        for i in 0..out.rows() {
            for (o, &bv) in out.row_mut(i).iter_mut().zip(vb.data()) {
                *o += bv;
            }
        }
        self.push(out, Op::AddBias(x.index(), bias.index()))
    }

    /// Elementwise subtraction of equal shapes.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let mut timer = self.prof_op("sub");
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        enforce(shape::same_shape("sub", va.shape(), vb.shape()));
        timer.set_cost(cost::zip(va.len(), 1));
        let out = va.zip_map(&vb, |x, y| x - y);
        self.push(out, Op::Sub(a.index(), b.index()))
    }

    /// Elementwise multiplication of equal shapes.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let mut timer = self.prof_op("mul");
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        enforce(shape::same_shape("mul", va.shape(), vb.shape()));
        timer.set_cost(cost::zip(va.len(), 1));
        let out = va.zip_map(&vb, |x, y| x * y);
        self.push(out, Op::Mul(a.index(), b.index()))
    }

    /// Multiplication by a scalar constant.
    pub fn scale(&self, a: Var, c: f32) -> Var {
        let mut timer = self.prof_op("scale");
        let va = self.value_rc(a);
        timer.set_cost(cost::map(va.len(), 1));
        let out = va.map(|x| x * c);
        self.push(out, Op::Scale(a.index(), c))
    }

    /// Matrix product `[m,k] x [k,n]`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let mut timer = self.prof_op("matmul");
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        enforce(shape::matmul(va.shape(), vb.shape()));
        timer.set_cost(cost::matmul(va.rows(), va.cols(), vb.cols()));
        let out = va.matmul(&vb);
        self.push(out, Op::MatMul(a.index(), b.index()))
    }

    /// Matrix product against a transposed right operand `[m,k] x [n,k]^T`.
    pub fn matmul_transb(&self, a: Var, b: Var) -> Var {
        let mut timer = self.prof_op("matmul_transb");
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        enforce(shape::matmul_transb(va.shape(), vb.shape()));
        timer.set_cost(cost::matmul(va.rows(), va.cols(), vb.rows()));
        let out = va.matmul_transb(&vb);
        self.push(out, Op::MatMulTransB(a.index(), b.index()))
    }

    /// Elementwise ReLU.
    pub fn relu(&self, a: Var) -> Var {
        let mut timer = self.prof_op("relu");
        let va = self.value_rc(a);
        timer.set_cost(cost::map(va.len(), 1));
        let out = va.map(|x| x.max(0.0));
        self.push(out, Op::Relu(a.index()))
    }

    /// Elementwise GELU (fast/exact per [`crate::kernels::exact_gelu`]).
    pub fn gelu(&self, a: Var) -> Var {
        let mut timer = self.prof_op("gelu");
        let va = self.value_rc(a);
        timer.set_cost(cost::gelu(va.len()));
        let out = va.gelu_forward();
        self.push(out, Op::Gelu(a.index()))
    }

    /// Elementwise tanh.
    pub fn tanh(&self, a: Var) -> Var {
        let mut timer = self.prof_op("tanh");
        let va = self.value_rc(a);
        timer.set_cost(cost::map(va.len(), 5));
        let out = va.map(f32::tanh);
        self.push(out, Op::Tanh(a.index()))
    }

    /// Softmax over the last dimension.
    pub fn softmax_last_dim(&self, a: Var) -> Var {
        let mut timer = self.prof_op("softmax_last_dim");
        let va = self.value_rc(a);
        enforce(shape::softmax_last_dim(va.shape()));
        let d = *va.shape().last().expect("softmax shape");
        timer.set_cost(cost::softmax(va.len() / d, d));
        let out = va.softmax_last_dim();
        self.push(out, Op::SoftmaxLastDim(a.index()))
    }

    /// Layer normalization over the last dimension with learned `gamma` and
    /// `beta` (both rank-1 of the last-dimension width).
    pub fn layer_norm(&self, x: Var, gamma: Var, beta: Var) -> Var {
        const EPS: f32 = 1e-5;
        let mut timer = self.prof_op("layer_norm");
        let vx = self.value_rc(x);
        let vg = self.value_rc(gamma);
        let vb = self.value_rc(beta);
        enforce(shape::layer_norm(vx.shape(), vg.shape(), vb.shape()));
        let d = *vx.shape().last().expect("layer_norm on rank-0");
        let n = vx.len() / d;
        timer.set_cost(cost::layer_norm(n, d));
        let mut xhat = arena::alloc_zeroed(vx.len());
        let mut inv_std = arena::alloc_zeroed(n);
        let mut out = arena::alloc_zeroed(vx.len());
        let (x_data, g_data, b_data) = (vx.data(), vg.data(), vb.data());
        let ln_row = |r: usize, xhat_row: &mut [f32], out_row: &mut [f32], istd_out: &mut f32| {
            let row = &x_data[r * d..(r + 1) * d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            *istd_out = istd;
            for j in 0..d {
                let xh = (row[j] - mean) * istd;
                xhat_row[j] = xh;
                out_row[j] = xh * g_data[j] + b_data[j];
            }
        };
        if rows_par_worthwhile(n, vx.len()) {
            // Rows normalize independently; each task owns disjoint rows of
            // all three outputs, with per-row math identical to the serial
            // loop.
            let (xhat_p, istd_p, out_p) = (
                SendPtr(xhat.as_mut_ptr()),
                SendPtr(inv_std.as_mut_ptr()),
                SendPtr(out.as_mut_ptr()),
            );
            gs_par::for_each_index(n, |r| unsafe {
                ln_row(
                    r,
                    xhat_p.slice_mut(r * d, d),
                    out_p.slice_mut(r * d, d),
                    &mut istd_p.slice_mut(r, 1)[0],
                );
            });
        } else {
            for r in 0..n {
                ln_row(
                    r,
                    &mut xhat[r * d..(r + 1) * d],
                    &mut out[r * d..(r + 1) * d],
                    &mut inv_std[r],
                );
            }
        }
        self.push_with_aux(
            Tensor::from_vec(vx.shape().to_vec(), out),
            Op::LayerNorm { x: x.index(), gamma: gamma.index(), beta: beta.index() },
            Some(Tensor::from_vec(vx.shape().to_vec(), xhat)),
            Some(Tensor::from_vec(vec![n], inv_std)),
        )
    }

    /// Gathers rows `ids` from an embedding `table` (rank-2), producing
    /// `[ids.len(), d]`. Gradients scatter-add back into the table.
    pub fn embed_gather(&self, table: Var, ids: &[usize]) -> Var {
        let mut timer = self.prof_op("embed_gather");
        let vt = self.value_rc(table);
        enforce(shape::embed_gather(vt.shape(), ids.len(), ids.iter().copied().max()));
        timer.set_cost(cost::gather(ids.len(), vt.cols()));
        let out = vt.gather_rows(ids);
        self.push(out, Op::EmbedGather { table: table.index(), ids: ids.to_vec() })
    }

    /// Applies a precomputed inverted-dropout mask (entries are either `0` or
    /// `1/(1-p)`), recorded so backward reuses the same mask.
    pub fn dropout_with_mask(&self, x: Var, mask: Tensor) -> Var {
        let mut timer = self.prof_op("dropout");
        let vx = self.value_rc(x);
        enforce(shape::dropout(vx.shape(), mask.shape()));
        timer.set_cost(cost::zip(vx.len(), 1));
        let out = vx.zip_map(&mask, |a, m| a * m);
        self.push_with_aux(out, Op::Dropout { x: x.index() }, Some(mask), None)
    }

    /// Column-wise concatenation of rank-2 tensors.
    pub fn concat_cols(&self, parts: &[Var]) -> Var {
        let mut timer = self.prof_op("concat_cols");
        let values: Vec<Rc<Tensor>> = parts.iter().map(|&p| self.value_rc(p)).collect();
        let shapes: Vec<&[usize]> = values.iter().map(|v| v.shape()).collect();
        enforce(shape::concat_cols(&shapes));
        timer.set_cost(cost::copy(values.iter().map(|v| v.len()).sum()));
        let refs: Vec<&Tensor> = values.iter().map(|v| v.as_ref()).collect();
        let out = Tensor::concat_cols(&refs);
        self.push(out, Op::ConcatCols(parts.iter().map(|p| p.index()).collect()))
    }

    /// Column slice `[start, end)` of a rank-2 tensor.
    pub fn slice_cols(&self, x: Var, start: usize, end: usize) -> Var {
        let mut timer = self.prof_op("slice_cols");
        let vx = self.value_rc(x);
        enforce(shape::slice_cols(vx.shape(), start, end));
        timer.set_cost(cost::copy(vx.rows() * (end - start)));
        let out = vx.slice_cols(start, end);
        self.push(out, Op::SliceCols { x: x.index(), start })
    }

    /// Mean over all elements.
    pub fn mean_all(&self, x: Var) -> Var {
        let mut timer = self.prof_op("mean_all");
        let vx = self.value_rc(x);
        timer.set_cost(cost::map(vx.len(), 1));
        let out = Tensor::scalar(vx.mean());
        self.push(out, Op::MeanAll(x.index()))
    }

    /// Sum over all elements.
    pub fn sum_all(&self, x: Var) -> Var {
        let mut timer = self.prof_op("sum_all");
        let vx = self.value_rc(x);
        timer.set_cost(cost::map(vx.len(), 1));
        let out = Tensor::scalar(vx.sum());
        self.push(out, Op::SumAll(x.index()))
    }

    /// Mean cross-entropy between `[n, classes]` logits and integer targets.
    ///
    /// Positions with `targets[i] < 0` are ignored (padding / special
    /// tokens). The mean is taken over non-ignored positions.
    pub fn cross_entropy(&self, logits: Var, targets: &[i64]) -> Var {
        let mut timer = self.prof_op("cross_entropy");
        let vl = self.value_rc(logits);
        let max_target = targets.iter().copied().filter(|&t| t >= 0).max();
        enforce(shape::cross_entropy(vl.shape(), targets.len(), max_target));
        timer.set_cost(cost::cross_entropy(targets.len(), vl.cols()));
        let probs = vl.softmax_last_dim();
        let mut total = 0.0f64;
        let mut count = 0usize;
        for (i, &t) in targets.iter().enumerate() {
            if t < 0 {
                continue;
            }
            let t = t as usize;
            let p = probs.at2(i, t).max(1e-12);
            total -= (p as f64).ln();
            count += 1;
        }
        let loss = if count == 0 { 0.0 } else { (total / count as f64) as f32 };
        self.push_with_aux(
            Tensor::scalar(loss),
            Op::CrossEntropy { logits: logits.index(), targets: targets.to_vec() },
            Some(probs),
            None,
        )
    }

    /// Runs reverse-mode differentiation from `loss` (which must be scalar)
    /// and returns the gradient of every reached node.
    pub fn backward(&self, loss: Var) -> Grads {
        let nodes = self.nodes.borrow();
        let n = nodes.len();
        assert!(loss.index() < n, "loss var not on this tape");
        assert_eq!(nodes[loss.index()].value.len(), 1, "backward requires a scalar loss");

        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        grads[loss.index()] =
            Some(Tensor::from_vec(nodes[loss.index()].value.shape().to_vec(), vec![1.0]));

        for idx in (0..n).rev() {
            let Some(gout) = grads[idx].take() else { continue };
            // Reinsert so callers can read intermediate grads too.
            let node = &nodes[idx];
            let gout_len = gout.len();
            let prof_start = if self.prof { Some(Instant::now()) } else { None };
            if self.sanitize && self.first_issue.borrow().is_none() {
                if let Some(kind) = sanitize::scan(gout.data()) {
                    *self.first_issue.borrow_mut() = Some(NumericIssue {
                        node: idx,
                        op: op_name(&node.op),
                        scope: self.scopes.borrow()[node.scope as usize].clone(),
                        label: node.label.clone(),
                        kind,
                        phase: SanitizePhase::Backward,
                    });
                }
            }
            match &node.op {
                Op::Leaf { requires_grad } => {
                    // Keep gradients only for trainable leaves; constants
                    // (position ids, masks) drop theirs to save memory.
                    if *requires_grad {
                        grads[idx] = Some(gout);
                    }
                    continue;
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, gout.clone());
                    accumulate(&mut grads, *b, gout.clone());
                }
                Op::AddBias(x, bias) => {
                    accumulate(&mut grads, *bias, gout.col_sum());
                    accumulate(&mut grads, *x, gout.clone());
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, gout.clone());
                    accumulate(&mut grads, *b, gout.map(|g| -g));
                }
                Op::Mul(a, b) => {
                    let (va, vb) = (&nodes[*a].value, &nodes[*b].value);
                    accumulate(&mut grads, *a, gout.zip_map(vb, |g, y| g * y));
                    accumulate(&mut grads, *b, gout.zip_map(va, |g, x| g * x));
                }
                Op::Scale(a, c) => {
                    accumulate(&mut grads, *a, gout.map(|g| g * c));
                }
                Op::MatMul(a, b) => {
                    let (va, vb) = (&nodes[*a].value, &nodes[*b].value);
                    // dA = dY B^T ; dB = A^T dY
                    accumulate(&mut grads, *a, gout.matmul_transb(vb));
                    accumulate(&mut grads, *b, va.matmul_transa(&gout));
                }
                Op::MatMulTransB(a, b) => {
                    let (va, vb) = (&nodes[*a].value, &nodes[*b].value);
                    // Y = A B^T : dA = dY B ; dB = dY^T A
                    accumulate(&mut grads, *a, gout.matmul(vb));
                    accumulate(&mut grads, *b, gout.matmul_transa(va));
                }
                Op::Relu(a) => {
                    let va = &nodes[*a].value;
                    accumulate(
                        &mut grads,
                        *a,
                        gout.zip_map(va, |g, x| if x > 0.0 { g } else { 0.0 }),
                    );
                }
                Op::Gelu(a) => {
                    let va = &nodes[*a].value;
                    accumulate(&mut grads, *a, va.gelu_backward(&gout));
                }
                Op::Tanh(a) => {
                    // value is tanh(x); grad = (1 - value^2)
                    accumulate(&mut grads, *a, gout.zip_map(&node.value, |g, y| g * (1.0 - y * y)));
                }
                Op::SoftmaxLastDim(a) => {
                    let s = &node.value; // softmax output
                    let d = *s.shape().last().expect("softmax shape");
                    let rows = s.len() / d;
                    let mut gin = arena::alloc_zeroed(s.len());
                    let (s_data, g_all) = (s.data(), gout.data());
                    let bw_row = |r: usize, gin_row: &mut [f32]| {
                        let srow = &s_data[r * d..(r + 1) * d];
                        let grow = &g_all[r * d..(r + 1) * d];
                        let dot: f32 = srow.iter().zip(grow).map(|(&sv, &gv)| sv * gv).sum();
                        for j in 0..d {
                            gin_row[j] = srow[j] * (grow[j] - dot);
                        }
                    };
                    if rows_par_worthwhile(rows, s.len()) {
                        let gin_p = SendPtr(gin.as_mut_ptr());
                        gs_par::for_each_index(rows, |r| unsafe {
                            bw_row(r, gin_p.slice_mut(r * d, d));
                        });
                    } else {
                        for r in 0..rows {
                            bw_row(r, &mut gin[r * d..(r + 1) * d]);
                        }
                    }
                    accumulate(&mut grads, *a, Tensor::from_vec(s.shape().to_vec(), gin));
                }
                Op::LayerNorm { x, gamma, beta } => {
                    let xhat = node.aux.as_ref().expect("layer_norm aux");
                    let inv_std = node.aux2.as_ref().expect("layer_norm aux2");
                    let vg = &nodes[*gamma].value;
                    let d = *xhat.shape().last().expect("ln shape");
                    let rows = xhat.len() / d;
                    let mut gx = arena::alloc_zeroed(xhat.len());
                    let mut ggamma = arena::alloc_zeroed(d);
                    let mut gbeta = arena::alloc_zeroed(d);
                    // `gx` rows are independent; `ggamma`/`gbeta` reduce
                    // *across* rows, so they stay on this thread, summed in
                    // ascending row order regardless of thread count (the
                    // determinism contract forbids accumulating floats in
                    // thread arrival order).
                    let (xh_data, go_data, istd_data, vg_data) =
                        (xhat.data(), gout.data(), inv_std.data(), vg.data());
                    let gx_row = |r: usize, gx_row: &mut [f32]| {
                        let xh = &xh_data[r * d..(r + 1) * d];
                        let go = &go_data[r * d..(r + 1) * d];
                        let istd = istd_data[r];
                        // dxhat = dY * gamma
                        let mut sum_dxhat = 0.0f32;
                        let mut sum_dxhat_xhat = 0.0f32;
                        for j in 0..d {
                            let dxh = go[j] * vg_data[j];
                            sum_dxhat += dxh;
                            sum_dxhat_xhat += dxh * xh[j];
                        }
                        let inv_d = 1.0 / d as f32;
                        for j in 0..d {
                            let dxh = go[j] * vg_data[j];
                            gx_row[j] =
                                istd * (dxh - inv_d * sum_dxhat - xh[j] * inv_d * sum_dxhat_xhat);
                        }
                    };
                    if rows_par_worthwhile(rows, xhat.len()) {
                        let gx_p = SendPtr(gx.as_mut_ptr());
                        gs_par::for_each_index(rows, |r| unsafe {
                            gx_row(r, gx_p.slice_mut(r * d, d));
                        });
                    } else {
                        for r in 0..rows {
                            gx_row(r, &mut gx[r * d..(r + 1) * d]);
                        }
                    }
                    for r in 0..rows {
                        let xh = &xhat.data()[r * d..(r + 1) * d];
                        let go = &gout.data()[r * d..(r + 1) * d];
                        for j in 0..d {
                            ggamma[j] += go[j] * xh[j];
                            gbeta[j] += go[j];
                        }
                    }
                    accumulate(&mut grads, *x, Tensor::from_vec(xhat.shape().to_vec(), gx));
                    accumulate(&mut grads, *gamma, Tensor::from_vec(vec![d], ggamma));
                    accumulate(&mut grads, *beta, Tensor::from_vec(vec![d], gbeta));
                }
                Op::EmbedGather { table, ids } => {
                    let vt = &nodes[*table].value;
                    let (r, c) = (vt.rows(), vt.cols());
                    let mut gt = Tensor::zeros(&[r, c]);
                    for (pos, &id) in ids.iter().enumerate() {
                        let src = &gout.data()[pos * c..(pos + 1) * c];
                        let dst = gt.row_mut(id);
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    accumulate(&mut grads, *table, gt);
                }
                Op::Dropout { x } => {
                    let mask = node.aux.as_ref().expect("dropout mask");
                    accumulate(&mut grads, *x, gout.zip_map(mask, |g, m| g * m));
                }
                Op::ConcatCols(parts) => {
                    let mut start = 0usize;
                    for &p in parts {
                        let w = nodes[p].value.cols();
                        accumulate(&mut grads, p, gout.slice_cols(start, start + w));
                        start += w;
                    }
                }
                Op::SliceCols { x, start } => {
                    let vx = &nodes[*x].value;
                    let (r, c) = (vx.rows(), vx.cols());
                    let w = gout.cols();
                    let mut gx = Tensor::zeros(&[r, c]);
                    for i in 0..r {
                        let dst = &mut gx.row_mut(i)[*start..*start + w];
                        dst.copy_from_slice(gout.row(i));
                    }
                    accumulate(&mut grads, *x, gx);
                }
                Op::MeanAll(x) => {
                    let vx = &nodes[*x].value;
                    let g = gout.item() / vx.len() as f32;
                    accumulate(&mut grads, *x, Tensor::full(vx.shape(), g));
                }
                Op::SumAll(x) => {
                    let vx = &nodes[*x].value;
                    accumulate(&mut grads, *x, Tensor::full(vx.shape(), gout.item()));
                }
                Op::CrossEntropy { logits, targets } => {
                    let probs = node.aux.as_ref().expect("ce probs");
                    let count = targets.iter().filter(|&&t| t >= 0).count().max(1) as f32;
                    let scale = gout.item() / count;
                    let classes = probs.cols();
                    let mut gl = arena::alloc_zeroed(probs.len());
                    let ce_row = |i: usize, grow: &mut [f32]| {
                        let t = targets[i];
                        if t < 0 {
                            return;
                        }
                        let prow = probs.row(i);
                        for j in 0..classes {
                            grow[j] = scale * prow[j];
                        }
                        grow[t as usize] -= scale;
                    };
                    if rows_par_worthwhile(targets.len(), probs.len()) {
                        let gl_p = SendPtr(gl.as_mut_ptr());
                        gs_par::for_each_index(targets.len(), |i| unsafe {
                            ce_row(i, gl_p.slice_mut(i * classes, classes));
                        });
                    } else {
                        for i in 0..targets.len() {
                            ce_row(i, &mut gl[i * classes..(i + 1) * classes]);
                        }
                    }
                    accumulate(&mut grads, *logits, Tensor::from_vec(probs.shape().to_vec(), gl));
                }
            }
            if let Some(start) = prof_start {
                let ns = start.elapsed().as_nanos() as u64;
                let scopes = self.scopes.borrow();
                prof::record_at(
                    &scopes[node.scope as usize],
                    bwd_name(&node.op),
                    ns,
                    bwd_cost(&node.op, &nodes, gout_len),
                );
            }
        }
        Grads { grads }
    }

    /// Exports the recorded program as a [`Graph`] for static analysis.
    ///
    /// Data-carrying ops are summarized by what their shape rules need;
    /// every node keeps its concrete shape, scope, and label.
    pub fn export_graph(&self) -> Graph {
        let nodes = self.nodes.borrow();
        let graph_nodes = nodes
            .iter()
            .map(|node| GraphNode {
                kind: export_kind(node),
                shape: Some(node.value.shape().to_vec()),
                scope: node.scope,
                label: node.label.clone(),
            })
            .collect();
        Graph { nodes: graph_nodes, scopes: self.scopes.borrow().clone() }
    }
}

fn export_kind(node: &Node) -> OpKind {
    match &node.op {
        Op::Leaf { requires_grad } => OpKind::Leaf { requires_grad: *requires_grad },
        Op::Add(a, b) => OpKind::Add { a: *a, b: *b },
        Op::AddBias(x, bias) => OpKind::AddBias { x: *x, bias: *bias },
        Op::Sub(a, b) => OpKind::Sub { a: *a, b: *b },
        Op::Mul(a, b) => OpKind::Mul { a: *a, b: *b },
        Op::Scale(x, factor) => OpKind::Scale { x: *x, factor: *factor },
        Op::MatMul(a, b) => OpKind::MatMul { a: *a, b: *b },
        Op::MatMulTransB(a, b) => OpKind::MatMulTransB { a: *a, b: *b },
        Op::Relu(x) => OpKind::Relu { x: *x },
        Op::Gelu(x) => OpKind::Gelu { x: *x },
        Op::Tanh(x) => OpKind::Tanh { x: *x },
        Op::SoftmaxLastDim(x) => OpKind::SoftmaxLastDim { x: *x },
        Op::LayerNorm { x, gamma, beta } => OpKind::LayerNorm { x: *x, gamma: *gamma, beta: *beta },
        Op::EmbedGather { table, ids } => OpKind::EmbedGather {
            table: *table,
            num_ids: ids.len(),
            max_id: ids.iter().copied().max(),
        },
        Op::Dropout { x } => OpKind::Dropout {
            x: *x,
            mask_shape: node.aux.as_ref().expect("dropout mask").shape().to_vec(),
        },
        Op::ConcatCols(parts) => OpKind::ConcatCols { parts: parts.clone() },
        Op::SliceCols { x, start } => {
            OpKind::SliceCols { x: *x, start: *start, end: *start + node.value.cols() }
        }
        Op::MeanAll(x) => OpKind::MeanAll { x: *x },
        Op::SumAll(x) => OpKind::SumAll { x: *x },
        Op::CrossEntropy { logits, targets } => OpKind::CrossEntropy {
            logits: *logits,
            num_targets: targets.len(),
            max_target: targets.iter().copied().filter(|&t| t >= 0).max(),
        },
    }
}

/// The op surface shared by the eager [`Tape`] and shape-only recorders.
///
/// Model code written against this trait (e.g. `TokenClassifier::forward`)
/// can run eagerly for training *and* be traced symbolically by gs-check's
/// `SymTape` to validate every shape in milliseconds without touching tensor
/// data. Methods mirror the inherent `Tape` API one-to-one.
pub trait TapeOps {
    /// Records a trainable leaf.
    fn leaf(&self, value: Tensor) -> Var;
    /// Records a constant leaf.
    fn constant(&self, value: Tensor) -> Var;
    /// Records a trainable leaf with a parameter label.
    fn leaf_labeled(&self, value: &Tensor, label: &str) -> Var;
    /// Records a labeled constant leaf.
    fn constant_labeled(&self, value: &Tensor, label: &str) -> Var;
    /// Elementwise `a + b`.
    fn add(&self, a: Var, b: Var) -> Var;
    /// `[n, d] + [d]` broadcast.
    fn add_bias(&self, x: Var, bias: Var) -> Var;
    /// Elementwise `a - b`.
    fn sub(&self, a: Var, b: Var) -> Var;
    /// Elementwise `a * b`.
    fn mul(&self, a: Var, b: Var) -> Var;
    /// Multiplication by a scalar constant.
    fn scale(&self, a: Var, c: f32) -> Var;
    /// `[m, k] x [k, n]`.
    fn matmul(&self, a: Var, b: Var) -> Var;
    /// `[m, k] x [n, k]^T`.
    fn matmul_transb(&self, a: Var, b: Var) -> Var;
    /// Elementwise ReLU.
    fn relu(&self, a: Var) -> Var;
    /// Elementwise GELU.
    fn gelu(&self, a: Var) -> Var;
    /// Elementwise tanh.
    fn tanh(&self, a: Var) -> Var;
    /// Softmax over the last dimension.
    fn softmax_last_dim(&self, a: Var) -> Var;
    /// Layer normalization with learned gain/bias.
    fn layer_norm(&self, x: Var, gamma: Var, beta: Var) -> Var;
    /// Row gather from an embedding table.
    fn embed_gather(&self, table: Var, ids: &[usize]) -> Var;
    /// Inverted dropout with a precomputed mask.
    fn dropout_with_mask(&self, x: Var, mask: Tensor) -> Var;
    /// Column-wise concatenation.
    fn concat_cols(&self, parts: &[Var]) -> Var;
    /// Column slice `[start, end)`.
    fn slice_cols(&self, x: Var, start: usize, end: usize) -> Var;
    /// Mean over all elements.
    fn mean_all(&self, x: Var) -> Var;
    /// Sum over all elements.
    fn sum_all(&self, x: Var) -> Var;
    /// Token-masked mean cross-entropy.
    fn cross_entropy(&self, logits: Var, targets: &[i64]) -> Var;
    /// Enters a named provenance scope.
    fn push_scope(&self, name: &str);
    /// Leaves the innermost scope.
    fn pop_scope(&self);
}

impl TapeOps for Tape {
    fn leaf(&self, value: Tensor) -> Var {
        Tape::leaf(self, value)
    }
    fn constant(&self, value: Tensor) -> Var {
        Tape::constant(self, value)
    }
    fn leaf_labeled(&self, value: &Tensor, label: &str) -> Var {
        Tape::leaf_labeled(self, value, label)
    }
    fn constant_labeled(&self, value: &Tensor, label: &str) -> Var {
        Tape::constant_labeled(self, value, label)
    }
    fn add(&self, a: Var, b: Var) -> Var {
        Tape::add(self, a, b)
    }
    fn add_bias(&self, x: Var, bias: Var) -> Var {
        Tape::add_bias(self, x, bias)
    }
    fn sub(&self, a: Var, b: Var) -> Var {
        Tape::sub(self, a, b)
    }
    fn mul(&self, a: Var, b: Var) -> Var {
        Tape::mul(self, a, b)
    }
    fn scale(&self, a: Var, c: f32) -> Var {
        Tape::scale(self, a, c)
    }
    fn matmul(&self, a: Var, b: Var) -> Var {
        Tape::matmul(self, a, b)
    }
    fn matmul_transb(&self, a: Var, b: Var) -> Var {
        Tape::matmul_transb(self, a, b)
    }
    fn relu(&self, a: Var) -> Var {
        Tape::relu(self, a)
    }
    fn gelu(&self, a: Var) -> Var {
        Tape::gelu(self, a)
    }
    fn tanh(&self, a: Var) -> Var {
        Tape::tanh(self, a)
    }
    fn softmax_last_dim(&self, a: Var) -> Var {
        Tape::softmax_last_dim(self, a)
    }
    fn layer_norm(&self, x: Var, gamma: Var, beta: Var) -> Var {
        Tape::layer_norm(self, x, gamma, beta)
    }
    fn embed_gather(&self, table: Var, ids: &[usize]) -> Var {
        Tape::embed_gather(self, table, ids)
    }
    fn dropout_with_mask(&self, x: Var, mask: Tensor) -> Var {
        Tape::dropout_with_mask(self, x, mask)
    }
    fn concat_cols(&self, parts: &[Var]) -> Var {
        Tape::concat_cols(self, parts)
    }
    fn slice_cols(&self, x: Var, start: usize, end: usize) -> Var {
        Tape::slice_cols(self, x, start, end)
    }
    fn mean_all(&self, x: Var) -> Var {
        Tape::mean_all(self, x)
    }
    fn sum_all(&self, x: Var) -> Var {
        Tape::sum_all(self, x)
    }
    fn cross_entropy(&self, logits: Var, targets: &[i64]) -> Var {
        Tape::cross_entropy(self, logits, targets)
    }
    fn push_scope(&self, name: &str) {
        Tape::push_scope(self, name)
    }
    fn pop_scope(&self) {
        Tape::pop_scope(self)
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, g: Tensor) {
    match &mut grads[idx] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks `d loss / d input` for a scalar-producing graph.
    fn finite_diff_check(input: Tensor, build: impl Fn(&Tape, Var) -> Var, tol: f32) {
        let tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = build(&tape, x);
        let grads = tape.backward(loss);
        let analytic = grads.get(x).expect("input grad").clone();

        let h = 1e-2f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += h;
            let mut minus = input.clone();
            minus.data_mut()[i] -= h;
            let tp = Tape::new();
            let lp = build(&tp, tp.leaf(plus));
            let tm = Tape::new();
            let lm = build(&tm, tm.leaf(minus));
            let fd = (tp.value(lp).item() - tm.value(lm).item()) / (2.0 * h);
            let a = analytic.data()[i];
            assert!(
                (a - fd).abs() <= tol * (1.0 + fd.abs()),
                "element {}: analytic {} vs finite-diff {}",
                i,
                a,
                fd
            );
        }
    }

    fn sample_matrix() -> Tensor {
        Tensor::matrix(&[vec![0.5, -1.2, 0.3], vec![1.1, 0.0, -0.7]])
    }

    #[test]
    fn grad_add_mul_chain() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let y = t.mul(x, x); // x^2
                let z = t.add(y, x); // x^2 + x
                t.sum_all(z)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_sub_scale() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let y = t.scale(x, 3.0);
                let z = t.sub(y, x);
                t.mean_all(z)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let w =
                    t.constant(Tensor::matrix(&[vec![0.2, -0.5], vec![1.0, 0.3], vec![-0.7, 0.8]]));
                let y = t.matmul(x, w);
                t.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_weight_side() {
        // Check gradient flowing into the right operand of a matmul.
        finite_diff_check(
            Tensor::matrix(&[vec![0.1, -0.4], vec![0.9, 0.2], vec![-0.3, 0.6]]),
            |t, w| {
                let x = t.constant(Tensor::matrix(&[vec![1.0, 2.0, -1.0], vec![0.5, -0.5, 2.0]]));
                let y = t.matmul(x, w);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_matmul_transb() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let b = t.constant(Tensor::matrix(&[vec![0.3, -0.2, 0.9], vec![1.5, 0.4, -0.6]]));
                let y = t.matmul_transb(x, b);
                let y2 = t.mul(y, y);
                t.mean_all(y2)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_activations() {
        for act in ["relu", "gelu", "tanh"] {
            finite_diff_check(
                Tensor::matrix(&[vec![0.5, -1.2, 0.3], vec![1.1, 0.25, -0.7]]),
                |t, x| {
                    let y = match act {
                        "relu" => t.relu(x),
                        "gelu" => t.gelu(x),
                        _ => t.tanh(x),
                    };
                    let y2 = t.mul(y, y);
                    t.sum_all(y2)
                },
                3e-2,
            );
        }
    }

    #[test]
    fn grad_softmax() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let s = t.softmax_last_dim(x);
                let w = t.constant(Tensor::matrix(&[vec![1.0, -2.0, 0.5], vec![0.3, 0.9, -1.1]]));
                let p = t.mul(s, w);
                t.sum_all(p)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_layer_norm_input() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let gamma = t.constant(Tensor::vector(&[1.2, 0.8, 1.0]));
                let beta = t.constant(Tensor::vector(&[0.1, -0.2, 0.0]));
                let y = t.layer_norm(x, gamma, beta);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_layer_norm_gamma_beta() {
        let tape = Tape::new();
        let x = tape.constant(sample_matrix());
        let gamma = tape.leaf(Tensor::vector(&[1.2, 0.8, 1.0]));
        let beta = tape.leaf(Tensor::vector(&[0.1, -0.2, 0.0]));
        let y = tape.layer_norm(x, gamma, beta);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        // d(sum)/d(beta_j) = number of rows (each row adds beta_j once)
        let gb = grads.get(beta).expect("beta grad");
        for &g in gb.data() {
            assert!((g - 2.0).abs() < 1e-4, "beta grad {}", g);
        }
        // gamma grad = column sums of xhat, which are ~0 per row-normalized
        // columns only when rows are symmetric; just check finiteness here.
        let gg = grads.get(gamma).expect("gamma grad");
        assert!(!gg.has_non_finite());
    }

    #[test]
    fn grad_embed_gather_scatters() {
        let tape = Tape::new();
        let table = tape.leaf(Tensor::matrix(&[vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]]));
        let e = tape.embed_gather(table, &[1, 1, 2]);
        let loss = tape.sum_all(e);
        let grads = tape.backward(loss);
        let gt = grads.get(table).expect("table grad");
        assert_eq!(gt.row(0), &[0.0, 0.0]);
        assert_eq!(gt.row(1), &[2.0, 2.0]); // gathered twice
        assert_eq!(gt.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn grad_concat_slice_roundtrip() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let left = t.slice_cols(x, 0, 2);
                let right = t.slice_cols(x, 2, 3);
                let back = t.concat_cols(&[right, left]);
                let sq = t.mul(back, back);
                t.sum_all(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_cross_entropy() {
        finite_diff_check(
            Tensor::matrix(&[vec![0.2, -0.3, 0.8], vec![1.5, 0.1, -0.9]]),
            |t, x| t.cross_entropy(x, &[2, 0]),
            2e-2,
        );
    }

    #[test]
    fn cross_entropy_ignores_negative_targets() {
        let tape = Tape::new();
        let logits =
            tape.leaf(Tensor::matrix(&[vec![10.0, 0.0], vec![0.0, 10.0], vec![-5.0, 5.0]]));
        // Only the first row counts; it is confidently correct, so the loss
        // should be near zero regardless of the other rows.
        let loss = tape.cross_entropy(logits, &[0, -1, -1]);
        assert!(tape.value(loss).item() < 1e-3);
        let grads = tape.backward(loss);
        let gl = grads.get(logits).expect("logit grad");
        // Ignored rows must receive exactly zero gradient.
        assert_eq!(gl.row(1), &[0.0, 0.0]);
        assert_eq!(gl.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn cross_entropy_all_ignored_is_zero() {
        let tape = Tape::new();
        let logits = tape.leaf(Tensor::matrix(&[vec![1.0, 2.0]]));
        let loss = tape.cross_entropy(logits, &[-1]);
        assert_eq!(tape.value(loss).item(), 0.0);
    }

    #[test]
    fn dropout_mask_applies_and_backprops() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::vector(&[1.0, 2.0, 3.0, 4.0]).reshaped(&[2, 2]));
        let mask = Tensor::from_vec(vec![2, 2], vec![2.0, 0.0, 2.0, 0.0]);
        let y = tape.dropout_with_mask(x, mask);
        assert_eq!(tape.value(y).data(), &[2.0, 0.0, 6.0, 0.0]);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).expect("grad").data(), &[2.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_requires_scalar_loss() {
        let tape = Tape::new();
        let x = tape.leaf(sample_matrix());
        let y = tape.relu(x);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tape.backward(y);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn grad_accumulates_over_shared_subexpression() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(3.0));
        let y = tape.add(x, x); // 2x -> dy/dx = 2
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).expect("grad").item(), 2.0);
    }

    #[test]
    fn add_bias_broadcasts_and_backprops() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::matrix(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b = tape.leaf(Tensor::vector(&[10.0, 20.0]));
        let y = tape.add_bias(x, b);
        assert_eq!(tape.value(y).data(), &[11.0, 22.0, 13.0, 24.0]);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(b).expect("bias grad").data(), &[2.0, 2.0]);
        assert_eq!(grads.get(x).expect("x grad").data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn shape_violation_panics_with_rule_message() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::matrix(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b = tape.leaf(Tensor::matrix(&[vec![1.0, 2.0, 3.0]]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tape.matmul(a, b);
        }));
        let payload = *result.unwrap_err().downcast::<String>().expect("panic message");
        assert_eq!(
            payload,
            crate::shape::matmul(&[2, 2], &[1, 3]).unwrap_err().to_string(),
            "runtime panic must carry the shared rule's message"
        );
    }

    #[test]
    fn scopes_nest_and_intern() {
        let tape = Tape::new();
        tape.push_scope("l0");
        tape.push_scope("attn");
        let x = tape.leaf(Tensor::scalar(1.0));
        tape.pop_scope();
        tape.pop_scope();
        tape.push_scope("l0");
        tape.push_scope("attn");
        let y = tape.leaf(Tensor::scalar(2.0));
        tape.pop_scope();
        tape.pop_scope();
        let graph = tape.export_graph();
        assert_eq!(graph.scope_name(graph.nodes[x.index()].scope), "l0.attn");
        // Re-entering the same path reuses the interned id.
        assert_eq!(graph.nodes[x.index()].scope, graph.nodes[y.index()].scope);
    }

    #[test]
    fn export_graph_mirrors_ops_shapes_and_labels() {
        let tape = Tape::new();
        let table = tape.leaf_labeled(
            &Tensor::matrix(&[vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]]),
            "emb.tok",
        );
        let e = tape.embed_gather(table, &[2, 0, 2]);
        let loss = tape.cross_entropy(e, &[1, -1, 0]);
        let graph = tape.export_graph();
        assert_eq!(graph.len(), 3);
        assert_eq!(graph.nodes[table.index()].label.as_deref(), Some("emb.tok"));
        assert!(graph.nodes[table.index()].kind.is_param());
        assert_eq!(
            graph.nodes[e.index()].kind,
            OpKind::EmbedGather { table: table.index(), num_ids: 3, max_id: Some(2) }
        );
        assert_eq!(graph.nodes[e.index()].shape.as_deref(), Some(&[3, 2][..]));
        assert_eq!(
            graph.nodes[loss.index()].kind,
            OpKind::CrossEntropy { logits: e.index(), num_targets: 3, max_target: Some(1) }
        );
        assert_eq!(graph.nodes[loss.index()].shape.as_deref(), Some(&[][..]));
    }

    #[test]
    fn sanitizer_reports_first_forward_issue_with_provenance() {
        let tape = Tape::sanitized();
        assert!(tape.is_sanitizing());
        tape.push_scope("emb");
        let mut bad = Tensor::matrix(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        bad.data_mut()[1] = f32::NAN;
        let x = tape.leaf_labeled(&bad, "emb.tok");
        tape.pop_scope();
        // A later Inf must not displace the first NaN report.
        let _ = tape.scale(x, f32::INFINITY);
        let issue = tape.first_numeric_issue().expect("issue");
        assert_eq!(issue.node, x.index());
        assert_eq!(issue.op, "leaf");
        assert_eq!(issue.scope, "emb");
        assert_eq!(issue.label.as_deref(), Some("emb.tok"));
        assert_eq!(issue.kind, crate::sanitize::NumericKind::NaN);
        assert_eq!(issue.phase, SanitizePhase::Forward);
    }

    #[test]
    fn sanitizer_catches_backward_issue() {
        let tape = Tape::sanitized();
        let x = tape.leaf(Tensor::vector(&[1.0e-35]));
        // Forward stays finite (1e-35 -> 1e-5 -> 1e25), but the backward
        // chain multiplies the two scale factors: 1e30 * 1e30 overflows.
        let y = tape.scale(tape.scale(x, 1.0e30), 1.0e30);
        let loss = tape.sum_all(y);
        assert!(tape.first_numeric_issue().is_none(), "forward was clean");
        let _ = tape.backward(loss);
        let issue = tape.first_numeric_issue().expect("backward overflow");
        assert_eq!(issue.phase, SanitizePhase::Backward);
        assert_eq!(issue.kind, crate::sanitize::NumericKind::Inf);
    }

    #[test]
    fn profiler_attributes_forward_and_backward_ops() {
        // The profiler store is process-global; restrict assertions to the
        // unique scope path this test uses so parallel tests can't collide.
        gs_obs::prof::reset();
        gs_obs::prof::set_enabled(true);
        let tape = Tape::new();
        assert!(tape.is_profiling());
        tape.push_scope("prof_test_blk");
        let x = tape.leaf(sample_matrix());
        let w = tape.constant(Tensor::matrix(&[vec![0.2, -0.5], vec![1.0, 0.3], vec![-0.7, 0.8]]));
        let y = tape.matmul(x, w);
        let s = tape.softmax_last_dim(y);
        let loss = tape.mean_all(s);
        tape.pop_scope();
        let _ = tape.backward(loss);
        gs_obs::prof::set_enabled(false);
        let snap = gs_obs::prof::snapshot();
        let find = |op: &str| {
            snap.rows
                .iter()
                .find(|r| r.op == op && r.path == "prof_test_blk")
                .unwrap_or_else(|| panic!("missing profiled op {op}"))
        };
        let mm = find("matmul");
        assert_eq!(mm.calls, 1);
        assert_eq!(mm.flops, 2 * 2 * 3 * 2); // [2,3] x [3,2]
        let bwd = find("matmul.bwd");
        assert_eq!(bwd.flops, 2 * mm.flops);
        find("leaf");
        find("softmax_last_dim");
        find("softmax_last_dim.bwd");
        find("mean_all.bwd");
        gs_obs::prof::reset();
    }

    #[test]
    fn sanitizer_off_reports_nothing() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::vector(&[f32::NAN]));
        let _ = tape.scale(x, 2.0);
        assert!(!tape.is_sanitizing());
        assert!(tape.first_numeric_issue().is_none());
    }
}
