//! Reverse-mode automatic differentiation on a flat tape.
//!
//! A [`Tape`] records every operation as a [`Node`] holding the forward
//! value, the operation kind, and (where needed) auxiliary buffers for the
//! backward pass. [`Var`] is a copyable handle into the tape. Calling
//! [`Tape::backward`] walks the nodes in reverse topological order (which is
//! simply reverse insertion order, since operands always precede results)
//! and accumulates gradients.
//!
//! The op set is exactly what a transformer encoder with a token
//! classification head needs; each op's backward rule is unit-tested against
//! finite differences in this module's tests.

use crate::tensor::{gelu, gelu_grad, Tensor};
use std::cell::RefCell;
use std::rc::Rc;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// The node index within its tape.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Operation kinds recorded on the tape.
#[derive(Debug)]
enum Op {
    /// Input with no parents. `requires_grad` distinguishes parameters from
    /// constants so backward can skip constant subtrees.
    Leaf { requires_grad: bool },
    /// Elementwise `a + b` for equal shapes.
    Add(usize, usize),
    /// `[n, d] + [d]` broadcast (bias add).
    AddBias(usize, usize),
    /// Elementwise `a - b`.
    Sub(usize, usize),
    /// Elementwise `a * b`.
    Mul(usize, usize),
    /// `a * c` for a scalar constant `c`.
    Scale(usize, f32),
    /// `[m,k] x [k,n]`.
    MatMul(usize, usize),
    /// `[m,k] x [n,k]^T` (attention scores).
    MatMulTransB(usize, usize),
    /// Elementwise ReLU.
    Relu(usize),
    /// Elementwise GELU (tanh approximation).
    Gelu(usize),
    /// Elementwise tanh.
    Tanh(usize),
    /// Softmax over the last dimension.
    SoftmaxLastDim(usize),
    /// Layer normalization over the last dimension with learned gain/bias.
    LayerNorm { x: usize, gamma: usize, beta: usize },
    /// Row gather from an embedding table: output `[ids.len, d]`.
    EmbedGather { table: usize, ids: Vec<usize> },
    /// Inverted-dropout: multiply by a fixed 0/(1/(1-p)) mask.
    Dropout { x: usize },
    /// Column-wise concatenation of rank-2 tensors with equal row counts.
    ConcatCols(Vec<usize>),
    /// Column slice `[start, end)` of a rank-2 tensor.
    SliceCols { x: usize, start: usize },
    /// Mean over all elements -> scalar.
    MeanAll(usize),
    /// Sum over all elements -> scalar.
    SumAll(usize),
    /// Token-masked mean cross-entropy over `[n, classes]` logits.
    /// `targets[i] < 0` marks an ignored position.
    CrossEntropy { logits: usize, targets: Vec<i64> },
}

struct Node {
    value: Rc<Tensor>,
    op: Op,
    /// Auxiliary forward buffers needed by backward:
    /// - `SoftmaxLastDim`: none (value suffices)
    /// - `LayerNorm`: normalized activations and per-row inverse stddev
    /// - `Dropout`: the scaled mask
    /// - `CrossEntropy`: softmax probabilities
    aux: Option<Tensor>,
    /// Second auxiliary buffer (LayerNorm inverse stddev per row).
    aux2: Option<Tensor>,
}

/// Gradient results of a backward pass, indexed by [`Var`].
pub struct Grads {
    grads: Vec<Option<Tensor>>,
}

impl Grads {
    /// The gradient of the loss with respect to `var`, if it was reached.
    pub fn get(&self, var: Var) -> Option<&Tensor> {
        self.grads.get(var.index()).and_then(Option::as_ref)
    }

    /// Takes ownership of a gradient, leaving `None` in its place.
    pub fn take(&mut self, var: Var) -> Option<Tensor> {
        self.grads.get_mut(var.index()).and_then(Option::take)
    }
}

/// A flat autograd tape.
///
/// Tapes are cheap to create; training loops build one per step and drop it
/// after applying gradients.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    fn push(&self, value: Tensor, op: Op) -> Var {
        self.push_with_aux(value, op, None, None)
    }

    fn push_with_aux(
        &self,
        value: Tensor,
        op: Op,
        aux: Option<Tensor>,
        aux2: Option<Tensor>,
    ) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value: Rc::new(value), op, aux, aux2 });
        Var(nodes.len() - 1)
    }

    fn value_rc(&self, var: Var) -> Rc<Tensor> {
        Rc::clone(&self.nodes.borrow()[var.index()].value)
    }

    /// The forward value of a node (cheap `Rc` clone).
    pub fn value(&self, var: Var) -> Rc<Tensor> {
        self.value_rc(var)
    }

    /// Records a trainable leaf (parameter) on the tape.
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf { requires_grad: true })
    }

    /// Records a constant leaf; backward will not propagate into it.
    pub fn constant(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf { requires_grad: false })
    }

    /// Elementwise addition of equal shapes.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        let out = va.zip_map(&vb, |x, y| x + y);
        self.push(out, Op::Add(a.index(), b.index()))
    }

    /// Adds a `[d]` bias to every row of `[n, d]`.
    pub fn add_bias(&self, x: Var, bias: Var) -> Var {
        let (vx, vb) = (self.value_rc(x), self.value_rc(bias));
        assert_eq!(vx.rank(), 2, "add_bias expects rank-2 input");
        assert_eq!(vb.rank(), 1, "add_bias expects rank-1 bias");
        assert_eq!(vx.cols(), vb.len(), "add_bias width mismatch");
        let mut out = (*vx).clone();
        let c = out.cols();
        for i in 0..out.rows() {
            for (o, &bv) in out.row_mut(i).iter_mut().zip(vb.data()) {
                *o += bv;
            }
        }
        let _ = c;
        self.push(out, Op::AddBias(x.index(), bias.index()))
    }

    /// Elementwise subtraction of equal shapes.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        let out = va.zip_map(&vb, |x, y| x - y);
        self.push(out, Op::Sub(a.index(), b.index()))
    }

    /// Elementwise multiplication of equal shapes.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        let out = va.zip_map(&vb, |x, y| x * y);
        self.push(out, Op::Mul(a.index(), b.index()))
    }

    /// Multiplication by a scalar constant.
    pub fn scale(&self, a: Var, c: f32) -> Var {
        let va = self.value_rc(a);
        let out = va.map(|x| x * c);
        self.push(out, Op::Scale(a.index(), c))
    }

    /// Matrix product `[m,k] x [k,n]`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        let out = va.matmul(&vb);
        self.push(out, Op::MatMul(a.index(), b.index()))
    }

    /// Matrix product against a transposed right operand `[m,k] x [n,k]^T`.
    pub fn matmul_transb(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        let out = va.matmul_transb(&vb);
        self.push(out, Op::MatMulTransB(a.index(), b.index()))
    }

    /// Elementwise ReLU.
    pub fn relu(&self, a: Var) -> Var {
        let out = self.value_rc(a).map(|x| x.max(0.0));
        self.push(out, Op::Relu(a.index()))
    }

    /// Elementwise GELU.
    pub fn gelu(&self, a: Var) -> Var {
        let out = self.value_rc(a).map(gelu);
        self.push(out, Op::Gelu(a.index()))
    }

    /// Elementwise tanh.
    pub fn tanh(&self, a: Var) -> Var {
        let out = self.value_rc(a).map(f32::tanh);
        self.push(out, Op::Tanh(a.index()))
    }

    /// Softmax over the last dimension.
    pub fn softmax_last_dim(&self, a: Var) -> Var {
        let out = self.value_rc(a).softmax_last_dim();
        self.push(out, Op::SoftmaxLastDim(a.index()))
    }

    /// Layer normalization over the last dimension with learned `gamma` and
    /// `beta` (both rank-1 of the last-dimension width).
    pub fn layer_norm(&self, x: Var, gamma: Var, beta: Var) -> Var {
        const EPS: f32 = 1e-5;
        let vx = self.value_rc(x);
        let vg = self.value_rc(gamma);
        let vb = self.value_rc(beta);
        let d = *vx.shape().last().expect("layer_norm on rank-0");
        assert_eq!(vg.len(), d, "layer_norm gamma width");
        assert_eq!(vb.len(), d, "layer_norm beta width");
        let n = vx.len() / d;
        let mut xhat = vec![0.0f32; vx.len()];
        let mut inv_std = vec![0.0f32; n];
        let mut out = vec![0.0f32; vx.len()];
        for r in 0..n {
            let row = &vx.data()[r * d..(r + 1) * d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std[r] = istd;
            for j in 0..d {
                let xh = (row[j] - mean) * istd;
                xhat[r * d + j] = xh;
                out[r * d + j] = xh * vg.data()[j] + vb.data()[j];
            }
        }
        self.push_with_aux(
            Tensor::from_vec(vx.shape().to_vec(), out),
            Op::LayerNorm { x: x.index(), gamma: gamma.index(), beta: beta.index() },
            Some(Tensor::from_vec(vx.shape().to_vec(), xhat)),
            Some(Tensor::from_vec(vec![n], inv_std)),
        )
    }

    /// Gathers rows `ids` from an embedding `table` (rank-2), producing
    /// `[ids.len(), d]`. Gradients scatter-add back into the table.
    pub fn embed_gather(&self, table: Var, ids: &[usize]) -> Var {
        let vt = self.value_rc(table);
        let out = vt.gather_rows(ids);
        self.push(out, Op::EmbedGather { table: table.index(), ids: ids.to_vec() })
    }

    /// Applies a precomputed inverted-dropout mask (entries are either `0` or
    /// `1/(1-p)`), recorded so backward reuses the same mask.
    pub fn dropout_with_mask(&self, x: Var, mask: Tensor) -> Var {
        let vx = self.value_rc(x);
        assert_eq!(vx.shape(), mask.shape(), "dropout mask shape mismatch");
        let out = vx.zip_map(&mask, |a, m| a * m);
        self.push_with_aux(out, Op::Dropout { x: x.index() }, Some(mask), None)
    }

    /// Column-wise concatenation of rank-2 tensors.
    pub fn concat_cols(&self, parts: &[Var]) -> Var {
        let values: Vec<Rc<Tensor>> = parts.iter().map(|&p| self.value_rc(p)).collect();
        let refs: Vec<&Tensor> = values.iter().map(|v| v.as_ref()).collect();
        let out = Tensor::concat_cols(&refs);
        self.push(out, Op::ConcatCols(parts.iter().map(|p| p.index()).collect()))
    }

    /// Column slice `[start, end)` of a rank-2 tensor.
    pub fn slice_cols(&self, x: Var, start: usize, end: usize) -> Var {
        let out = self.value_rc(x).slice_cols(start, end);
        self.push(out, Op::SliceCols { x: x.index(), start })
    }

    /// Mean over all elements.
    pub fn mean_all(&self, x: Var) -> Var {
        let out = Tensor::scalar(self.value_rc(x).mean());
        self.push(out, Op::MeanAll(x.index()))
    }

    /// Sum over all elements.
    pub fn sum_all(&self, x: Var) -> Var {
        let out = Tensor::scalar(self.value_rc(x).sum());
        self.push(out, Op::SumAll(x.index()))
    }

    /// Mean cross-entropy between `[n, classes]` logits and integer targets.
    ///
    /// Positions with `targets[i] < 0` are ignored (padding / special
    /// tokens). The mean is taken over non-ignored positions.
    pub fn cross_entropy(&self, logits: Var, targets: &[i64]) -> Var {
        let vl = self.value_rc(logits);
        assert_eq!(vl.rank(), 2, "cross_entropy expects rank-2 logits");
        assert_eq!(vl.rows(), targets.len(), "cross_entropy target count");
        let probs = vl.softmax_last_dim();
        let classes = vl.cols();
        let mut total = 0.0f64;
        let mut count = 0usize;
        for (i, &t) in targets.iter().enumerate() {
            if t < 0 {
                continue;
            }
            let t = t as usize;
            assert!(t < classes, "target {} out of {} classes", t, classes);
            let p = probs.at2(i, t).max(1e-12);
            total -= (p as f64).ln();
            count += 1;
        }
        let loss = if count == 0 { 0.0 } else { (total / count as f64) as f32 };
        self.push_with_aux(
            Tensor::scalar(loss),
            Op::CrossEntropy { logits: logits.index(), targets: targets.to_vec() },
            Some(probs),
            None,
        )
    }

    /// Runs reverse-mode differentiation from `loss` (which must be scalar)
    /// and returns the gradient of every reached node.
    pub fn backward(&self, loss: Var) -> Grads {
        let nodes = self.nodes.borrow();
        let n = nodes.len();
        assert!(loss.index() < n, "loss var not on this tape");
        assert_eq!(nodes[loss.index()].value.len(), 1, "backward requires a scalar loss");

        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        grads[loss.index()] =
            Some(Tensor::from_vec(nodes[loss.index()].value.shape().to_vec(), vec![1.0]));

        for idx in (0..n).rev() {
            let Some(gout) = grads[idx].take() else { continue };
            // Reinsert so callers can read intermediate grads too.
            let node = &nodes[idx];
            match &node.op {
                Op::Leaf { requires_grad } => {
                    // Keep gradients only for trainable leaves; constants
                    // (position ids, masks) drop theirs to save memory.
                    if *requires_grad {
                        grads[idx] = Some(gout);
                    }
                    continue;
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, gout.clone());
                    accumulate(&mut grads, *b, gout.clone());
                }
                Op::AddBias(x, bias) => {
                    accumulate(&mut grads, *bias, gout.col_sum());
                    accumulate(&mut grads, *x, gout.clone());
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, gout.clone());
                    accumulate(&mut grads, *b, gout.map(|g| -g));
                }
                Op::Mul(a, b) => {
                    let (va, vb) = (&nodes[*a].value, &nodes[*b].value);
                    accumulate(&mut grads, *a, gout.zip_map(vb, |g, y| g * y));
                    accumulate(&mut grads, *b, gout.zip_map(va, |g, x| g * x));
                }
                Op::Scale(a, c) => {
                    accumulate(&mut grads, *a, gout.map(|g| g * c));
                }
                Op::MatMul(a, b) => {
                    let (va, vb) = (&nodes[*a].value, &nodes[*b].value);
                    // dA = dY B^T ; dB = A^T dY
                    accumulate(&mut grads, *a, gout.matmul_transb(vb));
                    accumulate(&mut grads, *b, va.matmul_transa(&gout));
                }
                Op::MatMulTransB(a, b) => {
                    let (va, vb) = (&nodes[*a].value, &nodes[*b].value);
                    // Y = A B^T : dA = dY B ; dB = dY^T A
                    accumulate(&mut grads, *a, gout.matmul(vb));
                    accumulate(&mut grads, *b, gout.matmul_transa(va));
                }
                Op::Relu(a) => {
                    let va = &nodes[*a].value;
                    accumulate(
                        &mut grads,
                        *a,
                        gout.zip_map(va, |g, x| if x > 0.0 { g } else { 0.0 }),
                    );
                }
                Op::Gelu(a) => {
                    let va = &nodes[*a].value;
                    accumulate(&mut grads, *a, gout.zip_map(va, |g, x| g * gelu_grad(x)));
                }
                Op::Tanh(a) => {
                    // value is tanh(x); grad = (1 - value^2)
                    accumulate(&mut grads, *a, gout.zip_map(&node.value, |g, y| g * (1.0 - y * y)));
                }
                Op::SoftmaxLastDim(a) => {
                    let s = &node.value; // softmax output
                    let d = *s.shape().last().expect("softmax shape");
                    let mut gin = vec![0.0f32; s.len()];
                    for r in 0..s.len() / d {
                        let srow = &s.data()[r * d..(r + 1) * d];
                        let grow = &gout.data()[r * d..(r + 1) * d];
                        let dot: f32 = srow.iter().zip(grow).map(|(&sv, &gv)| sv * gv).sum();
                        for j in 0..d {
                            gin[r * d + j] = srow[j] * (grow[j] - dot);
                        }
                    }
                    accumulate(&mut grads, *a, Tensor::from_vec(s.shape().to_vec(), gin));
                }
                Op::LayerNorm { x, gamma, beta } => {
                    let xhat = node.aux.as_ref().expect("layer_norm aux");
                    let inv_std = node.aux2.as_ref().expect("layer_norm aux2");
                    let vg = &nodes[*gamma].value;
                    let d = *xhat.shape().last().expect("ln shape");
                    let rows = xhat.len() / d;
                    let mut gx = vec![0.0f32; xhat.len()];
                    let mut ggamma = vec![0.0f32; d];
                    let mut gbeta = vec![0.0f32; d];
                    for r in 0..rows {
                        let xh = &xhat.data()[r * d..(r + 1) * d];
                        let go = &gout.data()[r * d..(r + 1) * d];
                        let istd = inv_std.data()[r];
                        // dxhat = dY * gamma
                        let mut sum_dxhat = 0.0f32;
                        let mut sum_dxhat_xhat = 0.0f32;
                        for j in 0..d {
                            let dxh = go[j] * vg.data()[j];
                            sum_dxhat += dxh;
                            sum_dxhat_xhat += dxh * xh[j];
                            ggamma[j] += go[j] * xh[j];
                            gbeta[j] += go[j];
                        }
                        let inv_d = 1.0 / d as f32;
                        for j in 0..d {
                            let dxh = go[j] * vg.data()[j];
                            gx[r * d + j] =
                                istd * (dxh - inv_d * sum_dxhat - xh[j] * inv_d * sum_dxhat_xhat);
                        }
                    }
                    accumulate(&mut grads, *x, Tensor::from_vec(xhat.shape().to_vec(), gx));
                    accumulate(&mut grads, *gamma, Tensor::from_vec(vec![d], ggamma));
                    accumulate(&mut grads, *beta, Tensor::from_vec(vec![d], gbeta));
                }
                Op::EmbedGather { table, ids } => {
                    let vt = &nodes[*table].value;
                    let (r, c) = (vt.rows(), vt.cols());
                    let mut gt = Tensor::zeros(&[r, c]);
                    for (pos, &id) in ids.iter().enumerate() {
                        let src = &gout.data()[pos * c..(pos + 1) * c];
                        let dst = gt.row_mut(id);
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    accumulate(&mut grads, *table, gt);
                }
                Op::Dropout { x } => {
                    let mask = node.aux.as_ref().expect("dropout mask");
                    accumulate(&mut grads, *x, gout.zip_map(mask, |g, m| g * m));
                }
                Op::ConcatCols(parts) => {
                    let mut start = 0usize;
                    for &p in parts {
                        let w = nodes[p].value.cols();
                        accumulate(&mut grads, p, gout.slice_cols(start, start + w));
                        start += w;
                    }
                }
                Op::SliceCols { x, start } => {
                    let vx = &nodes[*x].value;
                    let (r, c) = (vx.rows(), vx.cols());
                    let w = gout.cols();
                    let mut gx = Tensor::zeros(&[r, c]);
                    for i in 0..r {
                        let dst = &mut gx.row_mut(i)[*start..*start + w];
                        dst.copy_from_slice(gout.row(i));
                    }
                    accumulate(&mut grads, *x, gx);
                }
                Op::MeanAll(x) => {
                    let vx = &nodes[*x].value;
                    let g = gout.item() / vx.len() as f32;
                    accumulate(&mut grads, *x, Tensor::full(vx.shape(), g));
                }
                Op::SumAll(x) => {
                    let vx = &nodes[*x].value;
                    accumulate(&mut grads, *x, Tensor::full(vx.shape(), gout.item()));
                }
                Op::CrossEntropy { logits, targets } => {
                    let probs = node.aux.as_ref().expect("ce probs");
                    let count = targets.iter().filter(|&&t| t >= 0).count().max(1) as f32;
                    let scale = gout.item() / count;
                    let classes = probs.cols();
                    let mut gl = vec![0.0f32; probs.len()];
                    for (i, &t) in targets.iter().enumerate() {
                        if t < 0 {
                            continue;
                        }
                        let prow = probs.row(i);
                        let grow = &mut gl[i * classes..(i + 1) * classes];
                        for j in 0..classes {
                            grow[j] = scale * prow[j];
                        }
                        grow[t as usize] -= scale;
                    }
                    accumulate(&mut grads, *logits, Tensor::from_vec(probs.shape().to_vec(), gl));
                }
            }
        }
        Grads { grads }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, g: Tensor) {
    match &mut grads[idx] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks `d loss / d input` for a scalar-producing graph.
    fn finite_diff_check(input: Tensor, build: impl Fn(&Tape, Var) -> Var, tol: f32) {
        let tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = build(&tape, x);
        let grads = tape.backward(loss);
        let analytic = grads.get(x).expect("input grad").clone();

        let h = 1e-2f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += h;
            let mut minus = input.clone();
            minus.data_mut()[i] -= h;
            let tp = Tape::new();
            let lp = build(&tp, tp.leaf(plus));
            let tm = Tape::new();
            let lm = build(&tm, tm.leaf(minus));
            let fd = (tp.value(lp).item() - tm.value(lm).item()) / (2.0 * h);
            let a = analytic.data()[i];
            assert!(
                (a - fd).abs() <= tol * (1.0 + fd.abs()),
                "element {}: analytic {} vs finite-diff {}",
                i,
                a,
                fd
            );
        }
    }

    fn sample_matrix() -> Tensor {
        Tensor::matrix(&[vec![0.5, -1.2, 0.3], vec![1.1, 0.0, -0.7]])
    }

    #[test]
    fn grad_add_mul_chain() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let y = t.mul(x, x); // x^2
                let z = t.add(y, x); // x^2 + x
                t.sum_all(z)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_sub_scale() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let y = t.scale(x, 3.0);
                let z = t.sub(y, x);
                t.mean_all(z)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let w =
                    t.constant(Tensor::matrix(&[vec![0.2, -0.5], vec![1.0, 0.3], vec![-0.7, 0.8]]));
                let y = t.matmul(x, w);
                t.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_weight_side() {
        // Check gradient flowing into the right operand of a matmul.
        finite_diff_check(
            Tensor::matrix(&[vec![0.1, -0.4], vec![0.9, 0.2], vec![-0.3, 0.6]]),
            |t, w| {
                let x = t.constant(Tensor::matrix(&[vec![1.0, 2.0, -1.0], vec![0.5, -0.5, 2.0]]));
                let y = t.matmul(x, w);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_matmul_transb() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let b = t.constant(Tensor::matrix(&[vec![0.3, -0.2, 0.9], vec![1.5, 0.4, -0.6]]));
                let y = t.matmul_transb(x, b);
                let y2 = t.mul(y, y);
                t.mean_all(y2)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_activations() {
        for act in ["relu", "gelu", "tanh"] {
            finite_diff_check(
                Tensor::matrix(&[vec![0.5, -1.2, 0.3], vec![1.1, 0.25, -0.7]]),
                |t, x| {
                    let y = match act {
                        "relu" => t.relu(x),
                        "gelu" => t.gelu(x),
                        _ => t.tanh(x),
                    };
                    let y2 = t.mul(y, y);
                    t.sum_all(y2)
                },
                3e-2,
            );
        }
    }

    #[test]
    fn grad_softmax() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let s = t.softmax_last_dim(x);
                let w = t.constant(Tensor::matrix(&[vec![1.0, -2.0, 0.5], vec![0.3, 0.9, -1.1]]));
                let p = t.mul(s, w);
                t.sum_all(p)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_layer_norm_input() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let gamma = t.constant(Tensor::vector(&[1.2, 0.8, 1.0]));
                let beta = t.constant(Tensor::vector(&[0.1, -0.2, 0.0]));
                let y = t.layer_norm(x, gamma, beta);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_layer_norm_gamma_beta() {
        let tape = Tape::new();
        let x = tape.constant(sample_matrix());
        let gamma = tape.leaf(Tensor::vector(&[1.2, 0.8, 1.0]));
        let beta = tape.leaf(Tensor::vector(&[0.1, -0.2, 0.0]));
        let y = tape.layer_norm(x, gamma, beta);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        // d(sum)/d(beta_j) = number of rows (each row adds beta_j once)
        let gb = grads.get(beta).expect("beta grad");
        for &g in gb.data() {
            assert!((g - 2.0).abs() < 1e-4, "beta grad {}", g);
        }
        // gamma grad = column sums of xhat, which are ~0 per row-normalized
        // columns only when rows are symmetric; just check finiteness here.
        let gg = grads.get(gamma).expect("gamma grad");
        assert!(!gg.has_non_finite());
    }

    #[test]
    fn grad_embed_gather_scatters() {
        let tape = Tape::new();
        let table = tape.leaf(Tensor::matrix(&[vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]]));
        let e = tape.embed_gather(table, &[1, 1, 2]);
        let loss = tape.sum_all(e);
        let grads = tape.backward(loss);
        let gt = grads.get(table).expect("table grad");
        assert_eq!(gt.row(0), &[0.0, 0.0]);
        assert_eq!(gt.row(1), &[2.0, 2.0]); // gathered twice
        assert_eq!(gt.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn grad_concat_slice_roundtrip() {
        finite_diff_check(
            sample_matrix(),
            |t, x| {
                let left = t.slice_cols(x, 0, 2);
                let right = t.slice_cols(x, 2, 3);
                let back = t.concat_cols(&[right, left]);
                let sq = t.mul(back, back);
                t.sum_all(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_cross_entropy() {
        finite_diff_check(
            Tensor::matrix(&[vec![0.2, -0.3, 0.8], vec![1.5, 0.1, -0.9]]),
            |t, x| t.cross_entropy(x, &[2, 0]),
            2e-2,
        );
    }

    #[test]
    fn cross_entropy_ignores_negative_targets() {
        let tape = Tape::new();
        let logits =
            tape.leaf(Tensor::matrix(&[vec![10.0, 0.0], vec![0.0, 10.0], vec![-5.0, 5.0]]));
        // Only the first row counts; it is confidently correct, so the loss
        // should be near zero regardless of the other rows.
        let loss = tape.cross_entropy(logits, &[0, -1, -1]);
        assert!(tape.value(loss).item() < 1e-3);
        let grads = tape.backward(loss);
        let gl = grads.get(logits).expect("logit grad");
        // Ignored rows must receive exactly zero gradient.
        assert_eq!(gl.row(1), &[0.0, 0.0]);
        assert_eq!(gl.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn cross_entropy_all_ignored_is_zero() {
        let tape = Tape::new();
        let logits = tape.leaf(Tensor::matrix(&[vec![1.0, 2.0]]));
        let loss = tape.cross_entropy(logits, &[-1]);
        assert_eq!(tape.value(loss).item(), 0.0);
    }

    #[test]
    fn dropout_mask_applies_and_backprops() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::vector(&[1.0, 2.0, 3.0, 4.0]).reshaped(&[2, 2]));
        let mask = Tensor::from_vec(vec![2, 2], vec![2.0, 0.0, 2.0, 0.0]);
        let y = tape.dropout_with_mask(x, mask);
        assert_eq!(tape.value(y).data(), &[2.0, 0.0, 6.0, 0.0]);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).expect("grad").data(), &[2.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_requires_scalar_loss() {
        let tape = Tape::new();
        let x = tape.leaf(sample_matrix());
        let y = tape.relu(x);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tape.backward(y);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn grad_accumulates_over_shared_subexpression() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(3.0));
        let y = tape.add(x, x); // 2x -> dy/dx = 2
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).expect("grad").item(), 2.0);
    }

    #[test]
    fn add_bias_broadcasts_and_backprops() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::matrix(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b = tape.leaf(Tensor::vector(&[10.0, 20.0]));
        let y = tape.add_bias(x, b);
        assert_eq!(tape.value(y).data(), &[11.0, 22.0, 13.0, 24.0]);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(b).expect("bias grad").data(), &[2.0, 2.0]);
        assert_eq!(grads.get(x).expect("x grad").data(), &[1.0, 1.0, 1.0, 1.0]);
    }
}
