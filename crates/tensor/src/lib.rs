//! # gs-tensor
//!
//! A minimal dense-tensor and reverse-mode autodiff engine, built so the
//! GoalSpotter reproduction can fine-tune transformer encoders on CPU
//! without external ML frameworks.
//!
//! - [`Tensor`]: row-major `f32` tensors with the linear algebra a
//!   transformer needs (matmul variants, softmax, layer-norm helpers).
//! - [`Tape`] / [`Var`]: a flat autograd tape; every op's backward rule is
//!   verified against finite differences in unit tests.
//! - [`ParamStore`] / [`Optimizer`]: named parameters, gradient
//!   accumulation/clipping, SGD and Adam, warmup-linear LR schedules.
//! - [`serialize`]: JSON checkpoints.

#![warn(missing_docs)]

mod init;
mod optim;
mod tape;
mod tensor;

/// Checkpoint save/load for parameter stores.
pub mod serialize;

pub use init::{normal, ones, xavier_uniform, zeros};
pub use optim::{Binder, Optimizer, ParamId, ParamStore, WarmupLinearSchedule};
pub use tape::{Grads, Tape, Var};
pub use tensor::{gelu, gelu_grad, Tensor};
