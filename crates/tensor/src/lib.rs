//! # gs-tensor
//!
//! A minimal dense-tensor and reverse-mode autodiff engine, built so the
//! GoalSpotter reproduction can fine-tune transformer encoders on CPU
//! without external ML frameworks.
//!
//! - [`Tensor`]: row-major `f32` tensors with the linear algebra a
//!   transformer needs (matmul variants, softmax, layer-norm helpers).
//! - [`Tape`] / [`Var`]: a flat autograd tape; every op's backward rule is
//!   verified against finite differences in unit tests.
//! - [`ParamStore`] / [`Optimizer`]: named parameters, gradient
//!   accumulation/clipping, SGD and Adam, warmup-linear LR schedules.
//! - [`shape`] / [`graph`]: shape rules and an exportable graph mirror,
//!   shared with the gs-check static analyzer so runtime panics and static
//!   findings report identically.
//! - [`sanitize`]: opt-in NaN/Inf guards over op outputs and gradients with
//!   first-occurrence provenance.
//! - [`serialize`]: JSON checkpoints.

#![warn(missing_docs)]

mod init;
mod optim;
mod tape;
mod tensor;

/// Recycling buffer arena backing every kernel allocation.
pub mod arena;
/// Analytic flop/byte estimates for profiled kernels.
pub mod cost;
/// Exportable graph mirror of recorded tapes.
pub mod graph;
/// Cache-blocked GEMM micro-kernels and kernel/gelu mode switches.
pub mod kernels;
/// Numeric sanitizer plumbing (global flag, issue types).
pub mod sanitize;
/// Checkpoint save/load for parameter stores.
pub mod serialize;
/// Shape rules shared by runtime checks and static analysis.
pub mod shape;

pub use graph::{infer_shape, Graph, GraphNode, OpKind};
pub use init::{normal, ones, xavier_uniform, zeros};
pub use kernels::{exact_gelu, kernel_mode, set_exact_gelu, set_kernel_mode, KernelMode};
pub use optim::{Binder, Optimizer, ParamId, ParamStore, WarmupLinearSchedule};
pub use sanitize::{sanitize_enabled, set_sanitize, NumericIssue, NumericKind, SanitizePhase};
pub use shape::{ShapeError, ShapeResult};
pub use tape::{Grads, Tape, TapeOps, Var};
pub use tensor::{
    gelu, gelu_exact, gelu_fast, gelu_grad, gelu_grad_exact, gelu_grad_fast, tanh_fast, Tensor,
};
