//! Weight initialization schemes.

use crate::tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot uniform initialization for a rank-2 weight of shape
/// `[fan_in, fan_out]`: samples from `U(-limit, limit)` with
/// `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out).map(|_| rng.random_range(-limit..limit)).collect();
    Tensor::from_vec(vec![fan_in, fan_out], data)
}

/// Normal initialization with the given standard deviation (Box-Muller).
pub fn normal(rng: &mut impl Rng, shape: &[usize], std: f32) -> Tensor {
    let volume: usize = shape.iter().product();
    let mut data = Vec::with_capacity(volume);
    while data.len() < volume {
        let u1: f32 = rng.random_range(f32::EPSILON..1.0);
        let u2: f32 = rng.random_range(0.0..1.0);
        let mag = (-2.0 * u1.ln()).sqrt();
        data.push(mag * (2.0 * std::f32::consts::PI * u2).cos() * std);
        if data.len() < volume {
            data.push(mag * (2.0 * std::f32::consts::PI * u2).sin() * std);
        }
    }
    Tensor::from_vec(shape.to_vec(), data)
}

/// A zero-initialized tensor (for biases and LayerNorm betas).
pub fn zeros(shape: &[usize]) -> Tensor {
    Tensor::zeros(shape)
}

/// A one-initialized tensor (for LayerNorm gammas).
pub fn ones(shape: &[usize]) -> Tensor {
    Tensor::full(shape, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = xavier_uniform(&mut rng, 64, 64);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= limit));
        assert_eq!(w.shape(), &[64, 64]);
    }

    #[test]
    fn normal_has_roughly_requested_std() {
        let mut rng = StdRng::seed_from_u64(11);
        let w = normal(&mut rng, &[200, 50], 0.02);
        let mean = w.mean();
        let var: f32 =
            w.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 5e-4, "mean {}", mean);
        assert!((var.sqrt() - 0.02).abs() < 2e-3, "std {}", var.sqrt());
    }

    #[test]
    fn normal_is_deterministic_per_seed() {
        let a = normal(&mut StdRng::seed_from_u64(3), &[4, 4], 1.0);
        let b = normal(&mut StdRng::seed_from_u64(3), &[4, 4], 1.0);
        assert_eq!(a.data(), b.data());
    }
}
