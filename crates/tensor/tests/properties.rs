//! Property-based tests for the tensor algebra and autograd engine.

use gs_tensor::{Tape, Tensor};
use proptest::prelude::*;

/// A small matrix with bounded values (keeps float error manageable).
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(vec![rows, cols], data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Matrix multiplication is associative: (AB)C == A(BC).
    #[test]
    fn matmul_is_associative(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2), c in matrix_strategy(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-3), "{left:?} vs {right:?}");
    }

    /// The transposed-operand product variants agree with explicit
    /// transposition.
    #[test]
    fn matmul_variants_agree(a in matrix_strategy(3, 4), b in matrix_strategy(5, 4)) {
        let explicit = a.matmul(&b.transposed2());
        let fused = a.matmul_transb(&b);
        prop_assert!(explicit.approx_eq(&fused, 1e-4));

        let a_t = a.transposed2(); // [4,3]
        let explicit2 = a_t.transposed2().matmul(&b.transposed2());
        let fused2 = a_t.matmul_transa(&b.transposed2());
        prop_assert!(explicit2.approx_eq(&fused2, 1e-4));
    }

    /// Softmax rows are probability distributions and preserve ordering.
    #[test]
    fn softmax_rows_are_distributions(m in matrix_strategy(4, 6)) {
        let s = m.softmax_last_dim();
        for i in 0..4 {
            let row = s.row(i);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            // argmax is preserved
            let src = m.row(i);
            let arg_src = src.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(j, _)| j);
            let arg_out = row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(j, _)| j);
            prop_assert_eq!(arg_src, arg_out);
        }
    }

    /// Autograd linearity: grad of sum(a * x) w.r.t. x equals a.
    #[test]
    fn gradient_of_linear_form_is_the_coefficient(a in matrix_strategy(3, 3), x in matrix_strategy(3, 3)) {
        let tape = Tape::new();
        let xv = tape.leaf(x);
        let av = tape.constant(a.clone());
        let prod = tape.mul(av, xv);
        let loss = tape.sum_all(prod);
        let grads = tape.backward(loss);
        let gx = grads.get(xv).expect("grad");
        prop_assert!(gx.approx_eq(&a, 1e-5));
    }

    /// Backward through matmul satisfies the shape contract and produces
    /// finite gradients for bounded inputs.
    #[test]
    fn matmul_gradients_are_finite(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2)) {
        let tape = Tape::new();
        let av = tape.leaf(a);
        let bv = tape.leaf(b);
        let y = tape.matmul(av, bv);
        let sq = tape.mul(y, y);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        let ga = grads.get(av).expect("grad a");
        let gb = grads.get(bv).expect("grad b");
        prop_assert_eq!(ga.shape(), &[3, 4]);
        prop_assert_eq!(gb.shape(), &[4, 2]);
        prop_assert!(!ga.has_non_finite());
        prop_assert!(!gb.has_non_finite());
    }

    /// Layer norm output has (approximately) zero mean and unit variance
    /// per row when gamma=1, beta=0.
    #[test]
    fn layer_norm_standardizes_rows(m in matrix_strategy(3, 8)) {
        // Degenerate (near-constant) rows normalize to ~0 variance by
        // design of the epsilon; skip them.
        for i in 0..3 {
            let row = m.row(i);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            prop_assume!(var > 1e-2);
        }
        let tape = Tape::new();
        let x = tape.leaf(m);
        let gamma = tape.constant(Tensor::full(&[8], 1.0));
        let beta = tape.constant(Tensor::zeros(&[8]));
        let y = tape.layer_norm(x, gamma, beta);
        let out = tape.value(y);
        for i in 0..3 {
            let row = out.row(i);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            prop_assert!(mean.abs() < 1e-3, "mean {mean}");
            prop_assert!((var - 1.0).abs() < 0.05, "var {var}");
        }
    }
}
