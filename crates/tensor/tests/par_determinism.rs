//! Bit-identity of every parallelized kernel: running under a 4-thread
//! pool must produce byte-for-byte the same results as the serial path,
//! forward and backward. Shapes are chosen to straddle the dispatch
//! cutoffs so both the parallel and serial branches are exercised.

use gs_tensor::{Tape, Tensor};

/// Deterministic, rand-free pseudo-random fill (xorshift-ish on the
/// index) so the same data feeds both pool sizes.
fn fill(n: usize, salt: u32) -> Vec<f32> {
    (0..n as u32)
        .map(|i| {
            let mut x = i.wrapping_mul(0x9e37_79b9).wrapping_add(salt);
            x ^= x >> 16;
            x = x.wrapping_mul(0x85eb_ca6b);
            x ^= x >> 13;
            (x % 2000) as f32 / 1000.0 - 1.0
        })
        .collect()
}

fn tensor(rows: usize, cols: usize, salt: u32) -> Tensor {
    Tensor::from_vec(vec![rows, cols], fill(rows * cols, salt))
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Runs `f` at 1 and 4 threads and asserts bitwise-equal tensor output.
fn assert_par_identical(label: &str, f: impl Fn() -> Tensor) {
    let serial = gs_par::with_threads(1, &f);
    let parallel = gs_par::with_threads(4, &f);
    assert_eq!(serial.shape(), parallel.shape(), "{label}: shape diverged");
    assert_eq!(bits(&serial), bits(&parallel), "{label}: bits diverged");
}

// Shapes above and below the matmul flops cutoff (64 * 1024 multiply-adds)
// and the elementwise cutoff (16 * 1024 elements).
const BIG: usize = 96; // 96^3 and 96*96*... comfortably above both cutoffs
const SMALL: usize = 8; // far below every cutoff

#[test]
fn matmul_is_pool_size_invariant() {
    for &(m, k, n) in &[(BIG, BIG, BIG), (SMALL, SMALL, SMALL), (BIG, 3, BIG), (2, BIG, BIG)] {
        let a = tensor(m, k, 1);
        let b = tensor(k, n, 2);
        assert_par_identical(&format!("matmul {m}x{k}x{n}"), || a.matmul(&b));
    }
}

#[test]
fn matmul_transb_is_pool_size_invariant() {
    for &(m, k, n) in &[(BIG, BIG, BIG), (SMALL, SMALL, SMALL), (BIG, 5, 7)] {
        let a = tensor(m, k, 3);
        let b = tensor(n, k, 4);
        assert_par_identical(&format!("matmul_transb {m}x{k}x{n}"), || a.matmul_transb(&b));
    }
}

#[test]
fn matmul_transa_is_pool_size_invariant() {
    for &(k, m, n) in &[(BIG, BIG, BIG), (SMALL, SMALL, SMALL), (7, BIG, BIG)] {
        let a = tensor(k, m, 5);
        let b = tensor(k, n, 6);
        assert_par_identical(&format!("matmul_transa {k}x{m}x{n}"), || a.matmul_transa(&b));
    }
}

#[test]
fn elementwise_maps_are_pool_size_invariant() {
    for &(r, c) in &[(256, 96), (SMALL, SMALL)] {
        let a = tensor(r, c, 7);
        let b = tensor(r, c, 8);
        assert_par_identical(&format!("map {r}x{c}"), || a.map(|x| x * 1.5 - 0.25));
        assert_par_identical(&format!("zip_map {r}x{c}"), || a.zip_map(&b, |x, y| x * y + x));
    }
}

#[test]
fn softmax_is_pool_size_invariant() {
    for &(r, c) in &[(256, 96), (SMALL, SMALL)] {
        let a = tensor(r, c, 9);
        assert_par_identical(&format!("softmax {r}x{c}"), || a.softmax_last_dim());
    }
}

/// Forward + every gradient of a taped layer-norm → softmax → cross-entropy
/// stack, the exact row-parallel tape kernels used by the transformer.
fn taped_stack(rows: usize, d: usize) -> Vec<Tensor> {
    let tape = Tape::new();
    let x = tape.leaf(tensor(rows, d, 10));
    let gamma = tape.leaf(Tensor::from_vec(vec![d], fill(d, 11)));
    let beta = tape.leaf(Tensor::from_vec(vec![d], fill(d, 12)));
    let normed = tape.layer_norm(x, gamma, beta);
    let soft = tape.softmax_last_dim(normed);
    let targets: Vec<i64> =
        (0..rows).map(|r| if r % 5 == 0 { -1 } else { (r % d) as i64 }).collect();
    let loss = tape.cross_entropy(soft, &targets);
    let mut grads = tape.backward(loss);
    let mut out = vec![(*tape.value(loss)).clone(), (*tape.value(soft)).clone()];
    for var in [x, gamma, beta] {
        out.push(grads.take(var).expect("gradient reached leaf"));
    }
    out
}

#[test]
fn taped_forward_and_gradients_are_pool_size_invariant() {
    for &(rows, d) in &[(192, 96), (SMALL, SMALL)] {
        let serial = gs_par::with_threads(1, || taped_stack(rows, d));
        let parallel = gs_par::with_threads(4, || taped_stack(rows, d));
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(bits(s), bits(p), "stack output {i} diverged at {rows}x{d}");
        }
    }
}

#[test]
fn thread_count_two_and_eight_agree_with_serial() {
    let a = tensor(BIG, BIG, 13);
    let b = tensor(BIG, BIG, 14);
    let reference = gs_par::with_threads(1, || a.matmul(&b));
    for threads in [2, 8] {
        let t = gs_par::with_threads(threads, || a.matmul(&b));
        assert_eq!(bits(&reference), bits(&t), "{threads} threads diverged");
    }
}
