//! Disabled-path guard for the numeric sanitizer, mirroring
//! `crates/obs/tests/overhead.rs`: when sanitizing is off (the default),
//! each op must pay exactly one latched-bool branch — no scanning, no
//! reporting. This runs in its own integration-test process so nothing
//! else can have flipped the global flag.

use gs_tensor::{Tape, Tensor};
use std::hint::black_box;
use std::time::Instant;

#[test]
fn disabled_sanitizer_neither_scans_nor_reports() {
    assert!(!gs_tensor::sanitize_enabled(), "flag must be off in a fresh process");

    // Behavioral half: NaN flows through a non-sanitizing tape untouched.
    let tape = Tape::new();
    assert!(!tape.is_sanitizing());
    let x = tape.leaf(Tensor::vector(&[f32::NAN, 1.0]));
    let y = tape.relu(tape.scale(x, 2.0));
    let loss = tape.sum_all(y);
    let _ = tape.backward(loss);
    assert!(tape.first_numeric_issue().is_none(), "disabled sanitizer must not scan or report");

    // Timing half: per-op cost with the sanitizer disabled stays within a
    // deliberately generous bound (the op itself costs well under 10 us;
    // an accidental always-on scan of larger tensors would not).
    // Each op appends a [64, 64] node to the tape, so the count also keeps
    // peak memory modest.
    const ITERS: u32 = 2_000;
    let tape = Tape::new();
    let big = tape.leaf(Tensor::full(&[64, 64], 0.5));
    let start = Instant::now();
    for _ in 0..ITERS {
        black_box(tape.scale(black_box(big), 1.0001));
    }
    let elapsed = start.elapsed();
    let per_op_us = elapsed.as_micros() as f64 / f64::from(ITERS);
    assert!(
        per_op_us < 200.0,
        "disabled-sanitizer op costs {per_op_us:.1} us ({} ms for {ITERS} ops)",
        elapsed.as_millis()
    );
}
