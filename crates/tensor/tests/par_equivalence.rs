//! Property tests pinning parallel == serial bit-identically for every
//! parallelized kernel, over random shapes straddling the dispatch
//! cutoffs and random data. Complements `par_determinism.rs` (fixed
//! shapes) with randomized coverage.

use gs_tensor::{Tape, Tensor};
use proptest::prelude::*;

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn finite_f32() -> impl Strategy<Value = f32> {
    (-4.0f32..4.0).prop_map(|v| (v * 64.0).round() / 64.0)
}

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(finite_f32(), rows * cols)
        .prop_map(move |data| Tensor::from_vec(vec![rows, cols], data))
}

/// Dimensions that land on both sides of the matmul flops cutoff
/// (64 * 1024 multiply-adds) and the elementwise cutoff (16 * 1024).
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..6, 30usize..34, 90usize..100]
}

/// Contracted (`k`) dimensions straddling the cache-blocking tile edges:
/// the `MR`/`KU` micro-kernel sizes and the `KC` k-strip, each ±1, so a
/// panel remainder, a full panel, and a strip spill are all exercised.
fn blocked_k() -> impl Strategy<Value = usize> {
    use gs_tensor::kernels::{KC, KU, MR};
    prop_oneof![
        (MR - 1)..=(MR + 1),
        (KU - 1)..=(KU + 1),
        (KC - 1)..=(KC + 1),
        (2 * KC - 1)..=(2 * KC + 1),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_parallel_matches_serial(
        (m, k, n) in (dim(), dim(), dim()),
        seed in any::<u64>(),
    ) {
        let a_data: Vec<f32> = (0..m * k)
            .map(|i| ((seed.wrapping_add(i as u64).wrapping_mul(0x2545F4914F6CDD1D) >> 40) as i32 % 512) as f32 / 256.0)
            .collect();
        let b_data: Vec<f32> = (0..k * n)
            .map(|i| ((seed.wrapping_add(i as u64 + 7).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as i32 % 512) as f32 / 256.0)
            .collect();
        let a = Tensor::from_vec(vec![m, k], a_data);
        let b = Tensor::from_vec(vec![k, n], b_data);
        let serial = gs_par::with_threads(1, || a.matmul(&b));
        let parallel = gs_par::with_threads(4, || a.matmul(&b));
        prop_assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn matmul_blocked_boundaries_parallel_match_serial(
        m in 1usize..10,
        k in blocked_k(),
        n in 1usize..10,
        seed in any::<u64>(),
    ) {
        let a_data: Vec<f32> = (0..m * k)
            .map(|i| ((seed.wrapping_add(i as u64).wrapping_mul(0x2545F4914F6CDD1D) >> 40) as i32 % 512) as f32 / 256.0)
            .collect();
        let b_data: Vec<f32> = (0..k * n)
            .map(|i| ((seed.wrapping_add(i as u64 + 3).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as i32 % 512) as f32 / 256.0)
            .collect();
        let a = Tensor::from_vec(vec![m, k], a_data);
        let b = Tensor::from_vec(vec![k, n], b_data);
        let serial = gs_par::with_threads(1, || a.matmul(&b));
        let parallel = gs_par::with_threads(4, || a.matmul(&b));
        prop_assert_eq!(bits(&serial), bits(&parallel));
        // The blocked kernel must also agree with the naive reference
        // bitwise at every tile edge.
        prop_assert_eq!(bits(&serial), bits(&a.matmul_reference(&b)));
    }

    #[test]
    fn matmul_transb_parallel_matches_serial(
        a in tensor_strategy(70, 80),
        b in tensor_strategy(90, 80),
    ) {
        let serial = gs_par::with_threads(1, || a.matmul_transb(&b));
        let parallel = gs_par::with_threads(4, || a.matmul_transb(&b));
        prop_assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn matmul_transb_blocked_boundaries_parallel_match_serial(
        m in 1usize..8,
        k in blocked_k(),
        n in 1usize..8,
        salt in any::<u64>(),
    ) {
        let a_data: Vec<f32> = (0..m * k)
            .map(|i| ((salt.wrapping_add(i as u64).wrapping_mul(0x2545F4914F6CDD1D) >> 40) as i32 % 512) as f32 / 256.0)
            .collect();
        let b_data: Vec<f32> = (0..n * k)
            .map(|i| ((salt.wrapping_add(i as u64 + 11).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as i32 % 512) as f32 / 256.0)
            .collect();
        let a = Tensor::from_vec(vec![m, k], a_data);
        let b = Tensor::from_vec(vec![n, k], b_data);
        let serial = gs_par::with_threads(1, || a.matmul_transb(&b));
        let parallel = gs_par::with_threads(4, || a.matmul_transb(&b));
        prop_assert_eq!(bits(&serial), bits(&parallel));
        prop_assert_eq!(bits(&serial), bits(&a.matmul_transb_reference(&b)));
    }

    #[test]
    fn matmul_transa_parallel_matches_serial(
        a in tensor_strategy(80, 70),
        b in tensor_strategy(80, 90),
    ) {
        let serial = gs_par::with_threads(1, || a.matmul_transa(&b));
        let parallel = gs_par::with_threads(4, || a.matmul_transa(&b));
        prop_assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn matmul_transa_blocked_boundaries_parallel_match_serial(
        m in 1usize..8,
        k in blocked_k(),
        n in 1usize..8,
        salt in any::<u64>(),
    ) {
        // transa contracts over rows: a is [k, m], b is [k, n].
        let a_data: Vec<f32> = (0..k * m)
            .map(|i| ((salt.wrapping_add(i as u64).wrapping_mul(0x2545F4914F6CDD1D) >> 40) as i32 % 512) as f32 / 256.0)
            .collect();
        let b_data: Vec<f32> = (0..k * n)
            .map(|i| ((salt.wrapping_add(i as u64 + 17).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as i32 % 512) as f32 / 256.0)
            .collect();
        let a = Tensor::from_vec(vec![k, m], a_data);
        let b = Tensor::from_vec(vec![k, n], b_data);
        let serial = gs_par::with_threads(1, || a.matmul_transa(&b));
        let parallel = gs_par::with_threads(4, || a.matmul_transa(&b));
        prop_assert_eq!(bits(&serial), bits(&parallel));
        prop_assert_eq!(bits(&serial), bits(&a.matmul_transa_reference(&b)));
    }

    #[test]
    fn elementwise_parallel_matches_serial(
        rows in prop_oneof![2usize..4, 200usize..260],
        a in tensor_strategy(1, 96).prop_map(|t| t.data().to_vec()),
    ) {
        let data: Vec<f32> = (0..rows * 96).map(|i| a[i % a.len()] + i as f32 * 1e-4).collect();
        let x = Tensor::from_vec(vec![rows, 96], data.clone());
        let y = Tensor::from_vec(vec![rows, 96], data.iter().rev().copied().collect());
        let serial_map = gs_par::with_threads(1, || x.map(|v| v * 0.5 + 1.0));
        let parallel_map = gs_par::with_threads(4, || x.map(|v| v * 0.5 + 1.0));
        prop_assert_eq!(bits(&serial_map), bits(&parallel_map));
        let serial_zip = gs_par::with_threads(1, || x.zip_map(&y, |p, q| p * q - p));
        let parallel_zip = gs_par::with_threads(4, || x.zip_map(&y, |p, q| p * q - p));
        prop_assert_eq!(bits(&serial_zip), bits(&parallel_zip));
        let serial_soft = gs_par::with_threads(1, || x.softmax_last_dim());
        let parallel_soft = gs_par::with_threads(4, || x.softmax_last_dim());
        prop_assert_eq!(bits(&serial_soft), bits(&parallel_soft));
    }

    #[test]
    fn taped_gradients_parallel_match_serial(
        rows in prop_oneof![2usize..5, 180usize..200],
        x in tensor_strategy(1, 96).prop_map(|t| t.data().to_vec()),
        target_salt in 0usize..96,
    ) {
        let d = 96;
        let run = || {
            let tape = Tape::new();
            let data: Vec<f32> = (0..rows * d).map(|i| x[i % x.len()] * 0.5).collect();
            let vx = tape.leaf(Tensor::from_vec(vec![rows, d], data));
            let gamma = tape.leaf(Tensor::from_vec(vec![d], (0..d).map(|j| 1.0 + j as f32 * 1e-3).collect()));
            let beta = tape.leaf(Tensor::from_vec(vec![d], (0..d).map(|j| j as f32 * 1e-3).collect()));
            let normed = tape.layer_norm(vx, gamma, beta);
            let soft = tape.softmax_last_dim(normed);
            let targets: Vec<i64> = (0..rows)
                .map(|r| if r % 4 == 0 { -1 } else { ((r + target_salt) % d) as i64 })
                .collect();
            let loss = tape.cross_entropy(soft, &targets);
            let mut grads = tape.backward(loss);
            let mut out = vec![(*tape.value(loss)).clone()];
            for var in [vx, gamma, beta] {
                out.push(grads.take(var).expect("gradient"));
            }
            out
        };
        let serial = gs_par::with_threads(1, run);
        let parallel = gs_par::with_threads(4, run);
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(bits(s), bits(p));
        }
    }
}
