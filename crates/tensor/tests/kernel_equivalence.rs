//! The cache-blocked matmul kernels must be **bit-identical** to the naive
//! reference loops: every output element accumulates its k-products in
//! ascending order through a single dependency chain in both
//! implementations, so blocking may change *when* partial sums are computed
//! but never *what* is added in which order. These tests pin that contract
//! deterministically (no proptest) across shapes chosen to straddle every
//! blocking boundary — the `MR`-row micro-panel, the `KU` unroll, and the
//! `KC` k-strip — and across pool sizes, with the arena both on and off.

use gs_tensor::kernels::{KC, KU, MR};
use gs_tensor::{arena, Tensor};

/// Deterministic pseudo-random fill: a cheap integer hash mapped to
/// [-1, 1), so fixtures don't depend on any RNG crate.
fn synth(len: usize, salt: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let mut h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt);
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
            ((h % 2000) as f32 / 1000.0) - 1.0
        })
        .collect()
}

/// Shapes that straddle the blocking boundaries: one element, sub-panel,
/// exact multiples of MR/KU/KC, and each of those ±1.
fn boundary_shapes() -> Vec<(usize, usize, usize)> {
    let mut shapes = vec![
        (1, 1, 1),
        (2, 3, 4),
        (MR, KU, MR),
        (MR + 1, KU + 1, 5),
        (MR - 1, KU - 1, 3),
        (3, 17, 29),
        (8, 64, 12),
    ];
    for k in [KC - 1, KC, KC + 1, 2 * KC, 2 * KC + 3] {
        shapes.push((5, k, 7));
        shapes.push((MR, k, 2));
    }
    shapes
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn blocked_matmul_family_is_bit_identical_to_reference() {
    for (m, k, n) in boundary_shapes() {
        let a = Tensor::from_vec(vec![m, k], synth(m * k, 1));
        let b = Tensor::from_vec(vec![k, n], synth(k * n, 2));
        assert_eq!(
            bits(&a.matmul(&b)),
            bits(&a.matmul_reference(&b)),
            "matmul diverged at ({m},{k},{n})"
        );

        let bt = Tensor::from_vec(vec![n, k], synth(n * k, 3));
        assert_eq!(
            bits(&a.matmul_transb(&bt)),
            bits(&a.matmul_transb_reference(&bt)),
            "matmul_transb diverged at ({m},{k},{n})"
        );

        // transa: [k, m]^T x [k, n] — reuse k as the contracted dim.
        let at = Tensor::from_vec(vec![k, m], synth(k * m, 4));
        let b2 = Tensor::from_vec(vec![k, n], synth(k * n, 5));
        assert_eq!(
            bits(&at.matmul_transa(&b2)),
            bits(&at.matmul_transa_reference(&b2)),
            "matmul_transa diverged at ({m},{k},{n})"
        );
    }
}

#[test]
fn blocked_kernels_are_bit_identical_across_pool_sizes() {
    // Large enough to cross the parallel cutoff so row-block sharding kicks
    // in at 4 threads.
    let (m, k, n) = (96, KC + 5, 48);
    let a = Tensor::from_vec(vec![m, k], synth(m * k, 6));
    let b = Tensor::from_vec(vec![k, n], synth(k * n, 7));
    let bt = Tensor::from_vec(vec![n, k], synth(n * k, 8));
    let serial = gs_par::with_threads(1, || (bits(&a.matmul(&b)), bits(&a.matmul_transb(&bt))));
    for threads in [2usize, 4] {
        let parallel =
            gs_par::with_threads(threads, || (bits(&a.matmul(&b)), bits(&a.matmul_transb(&bt))));
        assert_eq!(serial, parallel, "kernels diverged at {threads} threads");
    }
}

#[test]
fn arena_recycling_does_not_change_results() {
    let (m, k, n) = (24, KC + 1, 18);
    let a = Tensor::from_vec(vec![m, k], synth(m * k, 9));
    let b = Tensor::from_vec(vec![k, n], synth(k * n, 10));
    let cold = bits(&a.matmul(&b));
    // Inside a scope, repeated products recycle each other's buffers; the
    // values must be byte-for-byte unchanged on every round.
    arena::scope(|| {
        for round in 0..8 {
            assert_eq!(bits(&a.matmul(&b)), cold, "arena round {round} diverged");
        }
    });
    assert_eq!(bits(&a.matmul(&b)), cold, "post-scope product diverged");
}

#[test]
fn zero_heavy_inputs_stay_bit_identical() {
    // The blocked kernel never skips zero products (the reference doesn't
    // either); sparse panels are where a skip shortcut would first diverge
    // on signed zeros.
    let (m, k, n) = (7, KC + 2, 9);
    let mut adata = synth(m * k, 11);
    for (i, v) in adata.iter_mut().enumerate() {
        if i % 3 != 0 {
            *v = 0.0;
        }
        if i % 7 == 0 {
            *v = -0.0;
        }
    }
    let a = Tensor::from_vec(vec![m, k], adata);
    let b = Tensor::from_vec(vec![k, n], synth(k * n, 12));
    assert_eq!(bits(&a.matmul(&b)), bits(&a.matmul_reference(&b)));
}
