//! Bounds the profiler's disabled-path cost on the tape itself: a tape
//! built while profiling is off must pay nothing beyond the latched bool
//! check per op — no path strings, no global-store lock, no rows.

use gs_obs::prof;
use gs_tensor::{Tape, Tensor};
use std::time::Instant;

#[test]
fn disabled_tape_ops_pay_no_profiler_cost() {
    prof::set_enabled(false);
    prof::reset();

    // A taped elementwise kernel on a small tensor: with profiling off the
    // tape must not accumulate any profiler rows, and per-op cost stays
    // bounded (the op itself dominates; a stray lock or path-string
    // allocation per op would blow well past this budget on any machine).
    let tape = Tape::new();
    assert!(!tape.is_profiling());
    let x = tape.leaf(Tensor::from_vec(vec![8], vec![1.0f32; 8]));
    let reps = 50_000u32;
    // Warmup, then the timed pass.
    for _ in 0..1000 {
        let y = tape.scale(x, 1.0001);
        std::hint::black_box(tape.value(y).len());
    }
    let start = Instant::now();
    for _ in 0..reps {
        let y = tape.scale(x, 1.0001);
        std::hint::black_box(tape.value(y).len());
    }
    let per_op_ns = start.elapsed().as_nanos() as f64 / f64::from(reps);
    assert!(per_op_ns < 40_000.0, "taped scale with profiling off costs {per_op_ns:.0}ns/op");
    assert!(prof::snapshot().rows.is_empty(), "profiling-off tape recorded rows");
}

#[test]
fn tape_latches_profiling_state_at_construction() {
    // A tape born while profiling is off never records, even if profiling
    // turns on mid-flight — so long-lived inference tapes cannot start
    // paying mid-request.
    prof::set_enabled(false);
    let tape = Tape::new();
    prof::set_enabled(true);
    let before = prof::snapshot().rows.len();
    let x = tape.leaf(Tensor::from_vec(vec![4], vec![2.0f32; 4]));
    let y = tape.scale(x, 0.5);
    std::hint::black_box(tape.value(y).len());
    prof::set_enabled(false);
    let after = prof::snapshot().rows.len();
    assert!(!tape.is_profiling());
    assert_eq!(before, after, "profiling-off tape recorded rows after a mid-flight enable");
    prof::reset();
}
