//! Word-level pre-tokenization with offsets.
//!
//! Algorithm 1 in the paper operates on word-level tokens (Table 3 shows
//! `co`, `-`, `founded` as separate tokens), so the pre-tokenizer splits on
//! whitespace and treats each punctuation character as its own token.
//! Offsets into the original string are preserved so decoded entities can be
//! mapped back to the source text.

use crate::span::Span;
use serde::{Deserialize, Serialize};

/// A word-level token with its source span.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreToken {
    /// The token text (owned; always equal to `span.slice(source)`).
    pub text: String,
    /// Byte span in the source string.
    pub span: Span,
}

impl PreToken {
    /// Convenience constructor.
    pub fn new(text: impl Into<String>, start: usize, end: usize) -> Self {
        PreToken { text: text.into(), span: Span::new(start, end) }
    }
}

/// Character classes the pre-tokenizer distinguishes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CharClass {
    Space,
    Punct,
    Word,
}

fn classify(c: char) -> CharClass {
    if c.is_whitespace() {
        CharClass::Space
    } else if c.is_alphanumeric() {
        CharClass::Word
    } else {
        CharClass::Punct
    }
}

/// Splits text into word and punctuation tokens with byte offsets.
///
/// Runs of alphanumeric characters form one token; every punctuation
/// character is its own token; whitespace separates tokens and is dropped.
/// `"co-founded"` therefore becomes `["co", "-", "founded"]`, matching the
/// paper's Table 3.
pub fn pretokenize(text: &str) -> Vec<PreToken> {
    let mut tokens = Vec::new();
    let mut word_start: Option<usize> = None;
    for (i, c) in text.char_indices() {
        match classify(c) {
            CharClass::Word => {
                if word_start.is_none() {
                    word_start = Some(i);
                }
            }
            CharClass::Space | CharClass::Punct => {
                if let Some(start) = word_start.take() {
                    tokens.push(PreToken::new(&text[start..i], start, i));
                }
                if classify(c) == CharClass::Punct {
                    let end = i + c.len_utf8();
                    tokens.push(PreToken::new(&text[i..end], i, end));
                }
            }
        }
    }
    if let Some(start) = word_start {
        tokens.push(PreToken::new(&text[start..], start, text.len()));
    }
    tokens
}

/// Lowercased token texts, for case-insensitive matching policies.
pub fn lowercased_texts(tokens: &[PreToken]) -> Vec<String> {
    tokens.iter().map(|t| t.text.to_lowercase()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(tokens: &[PreToken]) -> Vec<&str> {
        tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn splits_paper_example_like_table3() {
        let toks = pretokenize(
            "We co-founded The Climate Pledge, a commitment to reach net-zero carbon by 2040.",
        );
        assert_eq!(
            texts(&toks),
            vec![
                "We",
                "co",
                "-",
                "founded",
                "The",
                "Climate",
                "Pledge",
                ",",
                "a",
                "commitment",
                "to",
                "reach",
                "net",
                "-",
                "zero",
                "carbon",
                "by",
                "2040",
                "."
            ]
        );
    }

    #[test]
    fn offsets_roundtrip_to_source() {
        let text = "Reduce energy consumption by 20% by 2025 (baseline 2017).";
        for tok in pretokenize(text) {
            assert_eq!(tok.span.slice(text), tok.text);
        }
    }

    #[test]
    fn percent_stays_attached_to_nothing() {
        let toks = pretokenize("20% by 2025");
        assert_eq!(texts(&toks), vec!["20", "%", "by", "2025"]);
    }

    #[test]
    fn handles_unicode_words() {
        let toks = pretokenize("Zurich Zürich naïve");
        assert_eq!(texts(&toks), vec!["Zurich", "Zürich", "naïve"]);
        let text = "Zurich Zürich naïve";
        for tok in pretokenize(text) {
            assert_eq!(tok.span.slice(text), tok.text);
        }
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(pretokenize("").is_empty());
        assert!(pretokenize("   \t\n ").is_empty());
    }

    #[test]
    fn consecutive_punctuation_splits() {
        let toks = pretokenize("goals...done");
        assert_eq!(texts(&toks), vec!["goals", ".", ".", ".", "done"]);
    }

    #[test]
    fn numbers_are_single_tokens() {
        let toks = pretokenize("CO2 37871 2040");
        assert_eq!(texts(&toks), vec!["CO2", "37871", "2040"]);
    }
}
