//! The full tokenization pipeline: normalize, pre-tokenize, subword-encode,
//! and map to vocabulary ids — while remembering which word each subword
//! came from, so token-level labels can be projected between the word level
//! (where Algorithm 1 operates) and the subword level (where the transformer
//! operates).

use crate::bpe::Bpe;
use crate::normalize::Normalizer;
use crate::pretokenize::{pretokenize, PreToken};
use crate::vocab::{Vocab, UNK};
use crate::wordpiece::WordPiece;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Subword segmentation backends.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum SubwordModel {
    /// Byte-pair encoding (RoBERTa-style).
    Bpe(Bpe),
    /// WordPiece (BERT-style).
    WordPiece(WordPiece),
    /// No subword splitting: each word is one token (CRF/HMM feature level).
    Word,
}

/// The result of encoding one text.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Encoding {
    /// The normalized text all offsets refer to.
    pub text: String,
    /// Word-level tokens with offsets into `text`.
    pub pretokens: Vec<PreToken>,
    /// Subword piece strings, in order.
    pub pieces: Vec<String>,
    /// Vocabulary ids, parallel to `pieces`.
    pub ids: Vec<u32>,
    /// For each piece, the index of the pre-token it came from.
    pub word_index: Vec<usize>,
}

impl Encoding {
    /// Number of subword tokens.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the encoding contains no tokens.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The piece indices belonging to word `w`.
    pub fn pieces_of_word(&self, w: usize) -> impl Iterator<Item = usize> + '_ {
        self.word_index.iter().enumerate().filter(move |(_, &wi)| wi == w).map(|(i, _)| i)
    }
}

/// A trained tokenizer: normalizer + subword model + closed vocabulary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Tokenizer {
    normalizer: Normalizer,
    model: SubwordModel,
    vocab: Vocab,
}

impl Tokenizer {
    /// Trains a BPE tokenizer on a corpus of raw texts.
    pub fn train_bpe(corpus: &[&str], normalizer: Normalizer, num_merges: usize) -> Self {
        let counts = word_counts(corpus, &normalizer);
        let pairs: Vec<(&str, u64)> = counts.iter().map(|(w, c)| (w.as_str(), *c)).collect();
        let bpe = Bpe::train(pairs.iter().copied(), num_merges);
        let mut vocab = Vocab::with_specials();
        for symbol in bpe.symbol_set(counts.keys().map(String::as_str)) {
            vocab.add(&symbol);
        }
        Tokenizer { normalizer, model: SubwordModel::Bpe(bpe), vocab }
    }

    /// Trains a WordPiece tokenizer on a corpus of raw texts.
    pub fn train_wordpiece(corpus: &[&str], normalizer: Normalizer, vocab_budget: usize) -> Self {
        let counts = word_counts(corpus, &normalizer);
        let pairs: Vec<(&str, u64)> = counts.iter().map(|(w, c)| (w.as_str(), *c)).collect();
        let wp = WordPiece::train(pairs.iter().copied(), vocab_budget);
        let mut vocab = Vocab::with_specials();
        for piece in wp.pieces() {
            vocab.add(&piece);
        }
        Tokenizer { normalizer, model: SubwordModel::WordPiece(wp), vocab }
    }

    /// Builds a word-level tokenizer whose vocabulary is every word seen at
    /// least `min_count` times in the corpus.
    pub fn train_word_level(corpus: &[&str], normalizer: Normalizer, min_count: u64) -> Self {
        let counts = word_counts(corpus, &normalizer);
        let mut vocab = Vocab::with_specials();
        let mut words: Vec<(&String, &u64)> = counts.iter().collect();
        words.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (w, c) in words {
            if *c >= min_count {
                vocab.add(w);
            }
        }
        Tokenizer { normalizer, model: SubwordModel::Word, vocab }
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The normalizer.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Encodes a raw text into subword ids with word alignment.
    pub fn encode(&self, raw: &str) -> Encoding {
        let text = self.normalizer.normalize(raw);
        let pretokens = pretokenize(&text);
        let mut pieces = Vec::new();
        let mut ids = Vec::new();
        let mut word_index = Vec::new();
        for (w, tok) in pretokens.iter().enumerate() {
            let word_pieces: Vec<String> = match &self.model {
                SubwordModel::Bpe(bpe) => bpe.encode_word(&tok.text),
                SubwordModel::WordPiece(wp) => {
                    wp.encode_word(&tok.text).unwrap_or_else(|| vec![UNK.to_string()])
                }
                SubwordModel::Word => vec![tok.text.clone()],
            };
            for piece in word_pieces {
                ids.push(self.vocab.id_or_unk(&piece));
                pieces.push(piece);
                word_index.push(w);
            }
        }
        if gs_obs::enabled() {
            gs_obs::counter("text.tokenize.calls", 1);
            gs_obs::counter("text.tokenize.pieces", pieces.len() as u64);
            gs_obs::counter("text.tokenize.words", pretokens.len() as u64);
            gs_obs::emit(
                "tokenize",
                "text.tokenize",
                vec![("pieces", pieces.len().into()), ("words", pretokens.len().into())],
            );
        }
        Encoding { text, pretokens, pieces, ids, word_index }
    }

    /// Restores internal lookup tables after deserialization.
    pub fn rebuild_index(&mut self) {
        self.vocab.rebuild_index();
        if let SubwordModel::Bpe(bpe) = &mut self.model {
            bpe.rebuild_ranks();
        }
    }
}

fn word_counts(corpus: &[&str], normalizer: &Normalizer) -> HashMap<String, u64> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for line in corpus {
        let text = normalizer.normalize(line);
        for tok in pretokenize(&text) {
            *counts.entry(tok.text).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "Reduce energy consumption by 20% by 2025.",
            "Reach net-zero carbon emissions by 2040.",
            "Restore 100% of our global water use by 2025.",
            "Reduce carbon emissions across all operations.",
        ]
    }

    #[test]
    fn bpe_encoding_aligns_words() {
        let tok = Tokenizer::train_bpe(&corpus(), Normalizer::default(), 100);
        let enc = tok.encode("Reduce carbon emissions by 2040.");
        assert!(!enc.is_empty());
        assert_eq!(enc.ids.len(), enc.pieces.len());
        assert_eq!(enc.ids.len(), enc.word_index.len());
        // word_index must be non-decreasing and cover all pretokens
        for w in enc.word_index.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*enc.word_index.last().expect("tokens"), enc.pretokens.len() - 1);
    }

    #[test]
    fn wordpiece_encoding_handles_unseen_chars() {
        let tok = Tokenizer::train_wordpiece(&corpus(), Normalizer::default(), 300);
        let enc = tok.encode("Reduce 东京 emissions");
        // The unseen word maps to a single UNK piece.
        let unk_count = enc.ids.iter().filter(|&&id| id == tok.vocab().unk_id()).count();
        assert_eq!(unk_count, 1);
    }

    #[test]
    fn word_level_is_one_piece_per_word() {
        let tok = Tokenizer::train_word_level(&corpus(), Normalizer::default(), 1);
        let enc = tok.encode("Reduce energy consumption");
        assert_eq!(enc.pieces.len(), enc.pretokens.len());
        assert_eq!(enc.word_index, vec![0, 1, 2]);
    }

    #[test]
    fn rare_words_fall_out_of_word_level_vocab() {
        let tok = Tokenizer::train_word_level(&corpus(), Normalizer::default(), 2);
        let enc = tok.encode("Restore water");
        // "Restore" occurs once -> UNK; "water" occurs once -> UNK too.
        assert!(enc.ids.iter().any(|&id| id == tok.vocab().unk_id()));
    }

    #[test]
    fn pieces_of_word_selects_alignment() {
        let tok = Tokenizer::train_bpe(&corpus(), Normalizer::default(), 30);
        let enc = tok.encode("consumption");
        let indices: Vec<usize> = enc.pieces_of_word(0).collect();
        assert_eq!(indices.len(), enc.pieces.len());
    }

    #[test]
    fn encoding_known_ids_are_not_unk() {
        let tok = Tokenizer::train_bpe(&corpus(), Normalizer::default(), 200);
        let enc = tok.encode("Reduce carbon emissions by 2040.");
        let unk = tok.vocab().unk_id();
        assert!(
            enc.ids.iter().all(|&id| id != unk),
            "training-corpus words must be encodable without UNK: {:?}",
            enc.pieces
        );
    }

    #[test]
    fn serde_roundtrip_encodes_identically() {
        let tok = Tokenizer::train_bpe(&corpus(), Normalizer::default(), 100);
        let json = serde_json::to_string(&tok).expect("serialize");
        let mut back: Tokenizer = serde_json::from_str(&json).expect("deserialize");
        back.rebuild_index();
        let a = tok.encode("Restore 100% of our global water use by 2025.");
        let b = back.encode("Restore 100% of our global water use by 2025.");
        assert_eq!(a, b);
    }
}
