//! Offset-preserving sentence segmentation.
//!
//! [`sentence_spans`] splits a flat text into sentence [`Span`]s without
//! copying: every span slices the original text on UTF-8 boundaries, so
//! downstream consumers (detection, extraction, provenance) can always map
//! a sentence back to its source bytes.
//!
//! A boundary is a terminal punctuation run (`.`, `!`, `?`, optionally
//! followed by closing quotes/brackets) followed by whitespace and then an
//! uppercase letter, digit, or opening quote/bracket — so decimals
//! (`50.5%`), abbreviations followed by lowercase (`e.g. emissions`), and
//! mid-token periods never split. Trailing text without terminal
//! punctuation forms one final sentence.
//!
//! **Known limitation (by design):** the splitter sees only punctuation,
//! not layout. Flat text that concatenates list items loses the item
//! boundary whenever a bullet lacks terminal punctuation — "Reduce
//! emissions 50%\n• Improve recycling." fuses into one sentence. Document
//! ingestion (`gs-ingest`) therefore segments *per block*, where list-item
//! boundaries are structural, not punctuational; the fused behavior here
//! is pinned by `fuses_across_unpunctuated_list_items_in_flat_text`.

use crate::span::Span;

/// Closing characters that may trail terminal punctuation.
fn is_closer(c: char) -> bool {
    matches!(c, '"' | '\'' | ')' | ']' | '\u{201d}' | '\u{2019}')
}

/// Characters that can start a new sentence after a boundary.
fn starts_sentence(c: char) -> bool {
    c.is_uppercase()
        || c.is_ascii_digit()
        || matches!(c, '"' | '\'' | '(' | '[' | '\u{201c}' | '\u{2018}' | '\u{2022}' | '-' | '*')
}

/// Splits `text` into trimmed, non-empty sentence spans covering the
/// original bytes. Offsets always lie on UTF-8 character boundaries;
/// `span.slice(text)` never panics for a returned span.
pub fn sentence_spans(text: &str) -> Vec<Span> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    let mut chars = text.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if start.is_none() {
            if c.is_whitespace() {
                continue;
            }
            start = Some(i);
        }
        if !matches!(c, '.' | '!' | '?') {
            continue;
        }
        // Absorb a run of terminal punctuation and trailing closers, then
        // decide whether what follows opens a new sentence.
        let mut end = i + c.len_utf8();
        while let Some(&(j, c2)) = chars.peek() {
            if matches!(c2, '.' | '!' | '?') || is_closer(c2) {
                end = j + c2.len_utf8();
                chars.next();
            } else {
                break;
            }
        }
        let rest = &text[end..];
        let mut rest_chars = rest.chars();
        let boundary = match rest_chars.next() {
            None => true,
            Some(ws) if ws.is_whitespace() => {
                match rest.trim_start().chars().next() {
                    // Whitespace to end-of-text closes the sentence too.
                    None => true,
                    Some(next) => starts_sentence(next),
                }
            }
            Some(_) => false,
        };
        if boundary {
            push_trimmed(&mut out, text, start.take().unwrap_or(i), end);
        }
    }
    if let Some(s) = start {
        push_trimmed(&mut out, text, s, text.len());
    }
    out
}

/// Pushes `[start, end)` shrunk to its non-whitespace extent, if any.
fn push_trimmed(out: &mut Vec<Span>, text: &str, start: usize, end: usize) {
    let slice = &text[start..end];
    let trimmed = slice.trim_end();
    if trimmed.is_empty() {
        return;
    }
    let lead = slice.len() - slice.trim_start().len();
    out.push(Span::new(start + lead, start + trimmed.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(s: &str) -> Vec<&str> {
        sentence_spans(s).iter().map(|sp| sp.slice(s)).collect()
    }

    #[test]
    fn splits_on_terminal_punctuation_before_uppercase() {
        assert_eq!(
            texts("Reduce emissions by 50% by 2030. Improve recycling rates."),
            vec!["Reduce emissions by 50% by 2030.", "Improve recycling rates."]
        );
    }

    #[test]
    fn decimals_and_lowercase_abbreviations_do_not_split() {
        assert_eq!(
            texts("Cut usage by 12.5% vs. the baseline."),
            vec!["Cut usage by 12.5% vs. the baseline."]
        );
        assert_eq!(
            texts("Targets cover e.g. emissions and waste."),
            vec!["Targets cover e.g. emissions and waste."]
        );
    }

    #[test]
    fn trailing_text_without_punctuation_is_one_sentence() {
        assert_eq!(texts("Reduce emissions 50%"), vec!["Reduce emissions 50%"]);
    }

    /// The regression the ingest path exists to avoid: in flat text, a
    /// bullet without terminal punctuation fuses with the next item. The
    /// ingest layer segments per block so this cannot happen there (see
    /// `crates/ingest`); here the flat-text behavior is pinned.
    #[test]
    fn fuses_across_unpunctuated_list_items_in_flat_text() {
        let flat = "Reduce emissions 50%\nImprove recycling rates.";
        assert_eq!(texts(flat), vec!["Reduce emissions 50%\nImprove recycling rates."]);
    }

    #[test]
    fn offsets_are_utf8_safe_on_multibyte_text() {
        let s = "Curb CO\u{2082} by 30%. R\u{e9}duire \u{201c}more\u{201d}! Done";
        let spans = sentence_spans(s);
        // Every span slices without panicking and round-trips its bytes.
        for sp in &spans {
            assert!(!sp.slice(s).is_empty());
        }
        assert_eq!(spans.len(), 3, "{:?}", texts(s));
    }

    #[test]
    fn quotes_and_closers_stay_with_their_sentence() {
        assert_eq!(
            texts("He said \"done.\" Next goal follows."),
            vec!["He said \"done.\"", "Next goal follows."]
        );
    }

    #[test]
    fn empty_and_whitespace_inputs_yield_nothing() {
        assert!(sentence_spans("").is_empty());
        assert!(sentence_spans("  \n\t  ").is_empty());
        assert_eq!(texts("..."), vec!["..."]);
    }
}
