//! Trainable byte-pair encoding (Sennrich et al. 2016), the subword scheme
//! RoBERTa-style encoders use (paper §3.2 cites BPE as the robust subword
//! mechanism for rare words and domain terminology).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// End-of-word marker appended to the last symbol of every word so merges
/// can distinguish word-final pieces (`est</w>` vs `est`).
const EOW: &str = "</w>";

/// A trained BPE model: an ordered list of merges plus the symbol set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Bpe {
    merges: Vec<(String, String)>,
    #[serde(skip)]
    ranks: HashMap<(String, String), usize>,
}

impl Bpe {
    /// Learns `num_merges` merges from an iterator of (word, count) pairs.
    ///
    /// Words should be pre-tokenized units (no whitespace). Training stops
    /// early if no pair occurs at least twice.
    pub fn train<'a>(
        word_counts: impl IntoIterator<Item = (&'a str, u64)>,
        num_merges: usize,
    ) -> Self {
        // Represent each distinct word as its current symbol sequence.
        let mut words: Vec<(Vec<String>, u64)> = word_counts
            .into_iter()
            .filter(|(w, _)| !w.is_empty())
            .map(|(w, c)| (word_symbols(w), c))
            .collect();

        let mut merges = Vec::with_capacity(num_merges);
        for _ in 0..num_merges {
            let mut pair_counts: HashMap<(&str, &str), u64> = HashMap::new();
            for (syms, count) in &words {
                for pair in syms.windows(2) {
                    *pair_counts.entry((pair[0].as_str(), pair[1].as_str())).or_insert(0) += count;
                }
            }
            // Deterministic tie-break: highest count, then lexicographic.
            let best = pair_counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .map(|(&(a, b), &c)| ((a.to_string(), b.to_string()), c));
            let Some(((left, right), count)) = best else { break };
            if count < 2 {
                break;
            }
            let merged = format!("{left}{right}");
            for (syms, _) in &mut words {
                apply_merge(syms, &left, &right, &merged);
            }
            merges.push((left, right));
        }

        let mut bpe = Bpe { merges, ranks: HashMap::new() };
        bpe.rebuild_ranks();
        bpe
    }

    /// Number of learned merges.
    pub fn num_merges(&self) -> usize {
        self.merges.len()
    }

    /// Rebuilds the rank map after deserialization.
    pub fn rebuild_ranks(&mut self) {
        self.ranks =
            self.merges.iter().enumerate().map(|(i, (a, b))| ((a.clone(), b.clone()), i)).collect();
    }

    /// Encodes a single word into subword symbols. The final symbol carries
    /// the `</w>` marker.
    pub fn encode_word(&self, word: &str) -> Vec<String> {
        if word.is_empty() {
            return Vec::new();
        }
        let mut syms = word_symbols(word);
        // Repeatedly apply the lowest-rank applicable merge, as in the
        // original BPE encoder.
        loop {
            let mut best: Option<(usize, usize)> = None; // (rank, position)
            for (i, pair) in syms.windows(2).enumerate() {
                if let Some(&rank) = self.ranks.get(&(pair[0].clone(), pair[1].clone())) {
                    if best.is_none_or(|(r, _)| rank < r) {
                        best = Some((rank, i));
                    }
                }
            }
            let Some((_, pos)) = best else { break };
            let merged = format!("{}{}", syms[pos], syms[pos + 1]);
            syms[pos] = merged;
            syms.remove(pos + 1);
        }
        syms
    }

    /// All symbols the encoder can emit over the given training words —
    /// used to build a closed vocabulary.
    pub fn symbol_set<'a>(&self, words: impl IntoIterator<Item = &'a str>) -> Vec<String> {
        let mut set = std::collections::BTreeSet::new();
        for w in words {
            for s in self.encode_word(w) {
                set.insert(s);
            }
        }
        set.into_iter().collect()
    }
}

fn word_symbols(word: &str) -> Vec<String> {
    let chars: Vec<char> = word.chars().collect();
    let n = chars.len();
    chars
        .iter()
        .enumerate()
        .map(|(i, c)| if i + 1 == n { format!("{c}{EOW}") } else { c.to_string() })
        .collect()
}

fn apply_merge(syms: &mut Vec<String>, left: &str, right: &str, merged: &str) {
    let mut i = 0;
    while i + 1 < syms.len() {
        if syms[i] == left && syms[i + 1] == right {
            syms[i] = merged.to_string();
            syms.remove(i + 1);
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_corpus() -> Vec<(&'static str, u64)> {
        vec![
            ("low", 5),
            ("lower", 2),
            ("newest", 6),
            ("widest", 3),
            ("emission", 8),
            ("emissions", 7),
        ]
    }

    #[test]
    fn training_learns_frequent_pairs() {
        let bpe = Bpe::train(sample_corpus(), 50);
        assert!(bpe.num_merges() > 0);
        // "emission" occurs 15 times in total (with plural); after enough
        // merges it should encode to very few symbols.
        let pieces = bpe.encode_word("emission");
        assert!(pieces.len() <= 3, "pieces: {:?}", pieces);
    }

    #[test]
    fn encode_unseen_word_falls_back_to_pieces() {
        let bpe = Bpe::train(sample_corpus(), 30);
        let pieces = bpe.encode_word("lowest");
        // Must reconstruct the word when markers are stripped.
        let joined: String =
            pieces.iter().map(|p| p.trim_end_matches(EOW)).collect::<Vec<_>>().join("");
        assert_eq!(joined, "lowest");
        assert!(pieces.last().expect("non-empty").ends_with(EOW));
    }

    #[test]
    fn encode_is_deterministic() {
        let bpe = Bpe::train(sample_corpus(), 30);
        assert_eq!(bpe.encode_word("emissions"), bpe.encode_word("emissions"));
    }

    #[test]
    fn zero_merges_yields_characters() {
        let bpe = Bpe::train(sample_corpus(), 0);
        let pieces = bpe.encode_word("net");
        assert_eq!(pieces, vec!["n".to_string(), "e".to_string(), format!("t{EOW}")]);
    }

    #[test]
    fn empty_word_encodes_to_nothing() {
        let bpe = Bpe::train(sample_corpus(), 10);
        assert!(bpe.encode_word("").is_empty());
    }

    #[test]
    fn single_char_word_has_eow() {
        let bpe = Bpe::train(sample_corpus(), 10);
        assert_eq!(bpe.encode_word("a"), vec![format!("a{EOW}")]);
    }

    #[test]
    fn training_is_deterministic() {
        let a = Bpe::train(sample_corpus(), 40);
        let b = Bpe::train(sample_corpus(), 40);
        assert_eq!(a.merges, b.merges);
    }

    #[test]
    fn symbol_set_covers_training_words() {
        let bpe = Bpe::train(sample_corpus(), 20);
        let symbols = bpe.symbol_set(sample_corpus().iter().map(|(w, _)| *w));
        assert!(!symbols.is_empty());
        for (w, _) in sample_corpus() {
            for piece in bpe.encode_word(w) {
                assert!(symbols.contains(&piece), "missing {piece}");
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let bpe = Bpe::train(sample_corpus(), 25);
        let json = serde_json::to_string(&bpe).expect("serialize");
        let mut back: Bpe = serde_json::from_str(&json).expect("deserialize");
        back.rebuild_ranks();
        assert_eq!(back.encode_word("newest"), bpe.encode_word("newest"));
    }
}
