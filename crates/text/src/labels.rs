//! IOB sequence-labeling schemes (paper §3.2, Table 2).
//!
//! A [`LabelSet`] fixes the entity kinds for a task (e.g. `Action`, `Amount`,
//! `Qualifier`, `Baseline`, `Deadline`) and maps IOB tags to dense class ids
//! for model heads: id 0 is `O`, then `B-k`/`I-k` pairs in kind order.

use serde::{Deserialize, Serialize};

/// A token-level IOB tag. The `usize` is an index into a [`LabelSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tag {
    /// Outside any entity.
    O,
    /// Beginning of an entity of the given kind.
    B(usize),
    /// Inside (continuation) of an entity of the given kind.
    I(usize),
}

impl Tag {
    /// The entity kind index, if any.
    pub fn kind(&self) -> Option<usize> {
        match self {
            Tag::O => None,
            Tag::B(k) | Tag::I(k) => Some(*k),
        }
    }
}

/// A decoded entity: a contiguous run of tokens sharing one kind.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagSpan {
    /// Entity kind index into the [`LabelSet`].
    pub kind: usize,
    /// First token index (inclusive).
    pub start: usize,
    /// Last token index (exclusive).
    pub end: usize,
}

/// The set of entity kinds for a labeling task.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelSet {
    kinds: Vec<String>,
}

impl LabelSet {
    /// Creates a label set from kind names (order defines ids).
    ///
    /// # Panics
    /// Panics on duplicate kind names.
    pub fn new(kinds: &[&str]) -> Self {
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(seen.insert(*k), "duplicate label kind {k:?}");
        }
        LabelSet { kinds: kinds.iter().map(|s| s.to_string()).collect() }
    }

    /// The paper's five sustainability detail fields (Table 1).
    pub fn sustainability_goals() -> Self {
        LabelSet::new(&["Action", "Amount", "Qualifier", "Baseline", "Deadline"])
    }

    /// The NetZeroFacts-style emission goal fields (paper §4.1).
    pub fn netzerofacts() -> Self {
        LabelSet::new(&["TargetValue", "ReferenceYear", "TargetYear"])
    }

    /// Number of entity kinds.
    pub fn num_kinds(&self) -> usize {
        self.kinds.len()
    }

    /// Number of dense class ids (`O` + `B-`/`I-` per kind).
    pub fn num_classes(&self) -> usize {
        1 + 2 * self.kinds.len()
    }

    /// Kind name by index.
    pub fn kind_name(&self, kind: usize) -> &str {
        &self.kinds[kind]
    }

    /// Kind index by name.
    pub fn kind_index(&self, name: &str) -> Option<usize> {
        self.kinds.iter().position(|k| k == name)
    }

    /// All kind names in id order.
    pub fn kind_names(&self) -> impl Iterator<Item = &str> {
        self.kinds.iter().map(String::as_str)
    }

    /// Dense class id of a tag.
    pub fn class_id(&self, tag: Tag) -> usize {
        match tag {
            Tag::O => 0,
            Tag::B(k) => {
                assert!(k < self.kinds.len());
                1 + 2 * k
            }
            Tag::I(k) => {
                assert!(k < self.kinds.len());
                2 + 2 * k
            }
        }
    }

    /// Tag from a dense class id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn tag_of(&self, class_id: usize) -> Tag {
        assert!(class_id < self.num_classes(), "class id {} out of range", class_id);
        if class_id == 0 {
            Tag::O
        } else if class_id % 2 == 1 {
            Tag::B((class_id - 1) / 2)
        } else {
            Tag::I((class_id - 2) / 2)
        }
    }

    /// Human-readable tag string (`O`, `B-Action`, `I-Deadline`, ...).
    pub fn tag_string(&self, tag: Tag) -> String {
        match tag {
            Tag::O => "O".to_string(),
            Tag::B(k) => format!("B-{}", self.kinds[k]),
            Tag::I(k) => format!("I-{}", self.kinds[k]),
        }
    }

    /// Parses a tag string.
    pub fn parse_tag(&self, s: &str) -> Option<Tag> {
        if s == "O" {
            return Some(Tag::O);
        }
        let (prefix, name) = s.split_once('-')?;
        let kind = self.kind_index(name)?;
        match prefix {
            "B" => Some(Tag::B(kind)),
            "I" => Some(Tag::I(kind)),
            _ => None,
        }
    }
}

/// Decodes a tag sequence into entity spans.
///
/// Follows CoNLL conventions: a span starts at `B-k` (or at an `I-k` that
/// does not continue a span of kind `k` — the common "lenient" repair for
/// model output) and extends over following `I-k` tags.
pub fn decode_spans(tags: &[Tag]) -> Vec<TagSpan> {
    let mut spans = Vec::new();
    let mut open: Option<TagSpan> = None;
    for (i, tag) in tags.iter().enumerate() {
        match tag {
            Tag::O => {
                if let Some(s) = open.take() {
                    spans.push(s);
                }
            }
            Tag::B(k) => {
                if let Some(s) = open.take() {
                    spans.push(s);
                }
                open = Some(TagSpan { kind: *k, start: i, end: i + 1 });
            }
            Tag::I(k) => match &mut open {
                Some(s) if s.kind == *k => s.end = i + 1,
                _ => {
                    if let Some(s) = open.take() {
                        spans.push(s);
                    }
                    open = Some(TagSpan { kind: *k, start: i, end: i + 1 });
                }
            },
        }
    }
    if let Some(s) = open {
        spans.push(s);
    }
    spans
}

/// Encodes entity spans into a tag sequence of the given length.
///
/// Later spans overwrite earlier ones on overlap; spans must lie within
/// `len`.
pub fn encode_spans(len: usize, spans: &[TagSpan]) -> Vec<Tag> {
    let mut tags = vec![Tag::O; len];
    for span in spans {
        assert!(span.start < span.end && span.end <= len, "span {:?} out of {}", span, len);
        tags[span.start] = Tag::B(span.kind);
        for t in tags.iter_mut().take(span.end).skip(span.start + 1) {
            *t = Tag::I(span.kind);
        }
    }
    tags
}

/// Repairs an invalid IOB sequence in place: any `I-k` not preceded by a
/// `B-k`/`I-k` of the same kind becomes `B-k`.
pub fn repair_iob(tags: &mut [Tag]) {
    for i in 0..tags.len() {
        if let Tag::I(k) = tags[i] {
            let valid = i > 0
                && match tags[i - 1] {
                    Tag::B(p) | Tag::I(p) => p == k,
                    Tag::O => false,
                };
            if !valid {
                tags[i] = Tag::B(k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> LabelSet {
        LabelSet::sustainability_goals()
    }

    #[test]
    fn class_ids_roundtrip() {
        let ls = labels();
        assert_eq!(ls.num_classes(), 11);
        for id in 0..ls.num_classes() {
            assert_eq!(ls.class_id(ls.tag_of(id)), id);
        }
    }

    #[test]
    fn tag_strings_match_conll_format() {
        let ls = labels();
        assert_eq!(ls.tag_string(Tag::O), "O");
        assert_eq!(ls.tag_string(Tag::B(0)), "B-Action");
        assert_eq!(ls.tag_string(Tag::I(4)), "I-Deadline");
        assert_eq!(ls.parse_tag("B-Amount"), Some(Tag::B(1)));
        assert_eq!(ls.parse_tag("I-Qualifier"), Some(Tag::I(2)));
        assert_eq!(ls.parse_tag("X-Nope"), None);
        assert_eq!(ls.parse_tag("B-Nope"), None);
    }

    #[test]
    fn decode_simple_spans() {
        // Mirrors Table 2: "Albert Einstein was born in Germany ."
        let per = 0;
        let loc = 1;
        let tags = vec![Tag::B(per), Tag::I(per), Tag::O, Tag::O, Tag::O, Tag::B(loc), Tag::O];
        let spans = decode_spans(&tags);
        assert_eq!(
            spans,
            vec![TagSpan { kind: per, start: 0, end: 2 }, TagSpan { kind: loc, start: 5, end: 6 }]
        );
    }

    #[test]
    fn decode_adjacent_b_tags_split_entities() {
        let tags = vec![Tag::B(0), Tag::B(0), Tag::I(0)];
        let spans = decode_spans(&tags);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], TagSpan { kind: 0, start: 0, end: 1 });
        assert_eq!(spans[1], TagSpan { kind: 0, start: 1, end: 3 });
    }

    #[test]
    fn decode_is_lenient_about_orphan_i() {
        let tags = vec![Tag::O, Tag::I(2), Tag::I(2), Tag::O];
        let spans = decode_spans(&tags);
        assert_eq!(spans, vec![TagSpan { kind: 2, start: 1, end: 3 }]);
    }

    #[test]
    fn kind_change_without_b_starts_new_span() {
        let tags = vec![Tag::B(0), Tag::I(1)];
        let spans = decode_spans(&tags);
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let spans =
            vec![TagSpan { kind: 1, start: 2, end: 4 }, TagSpan { kind: 3, start: 6, end: 7 }];
        let tags = encode_spans(8, &spans);
        assert_eq!(decode_spans(&tags), spans);
    }

    #[test]
    fn repair_fixes_orphan_i() {
        let mut tags = vec![Tag::O, Tag::I(0), Tag::I(0), Tag::B(1), Tag::I(0)];
        repair_iob(&mut tags);
        assert_eq!(tags[1], Tag::B(0));
        assert_eq!(tags[2], Tag::I(0));
        assert_eq!(tags[4], Tag::B(0));
    }

    #[test]
    fn netzerofacts_label_set() {
        let ls = LabelSet::netzerofacts();
        assert_eq!(ls.num_kinds(), 3);
        assert_eq!(ls.kind_index("TargetYear"), Some(2));
    }

    #[test]
    #[should_panic(expected = "duplicate label kind")]
    fn duplicate_kinds_rejected() {
        let _ = LabelSet::new(&["A", "A"]);
    }
}
