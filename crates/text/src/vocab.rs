//! Token vocabularies with special tokens.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Padding token (id 0).
pub const PAD: &str = "<pad>";
/// Unknown token (id 1).
pub const UNK: &str = "<unk>";
/// Begin-of-sequence token (id 2), like RoBERTa's `<s>` / BERT's `[CLS]`.
pub const BOS: &str = "<s>";
/// End-of-sequence token (id 3), like RoBERTa's `</s>` / BERT's `[SEP]`.
pub const EOS: &str = "</s>";
/// Mask token (id 4), reserved for MLM-style extensions.
pub const MASK: &str = "<mask>";

/// Bidirectional token <-> id mapping. Ids `0..5` are always the special
/// tokens above, in that order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vocab {
    tokens: Vec<String>,
    #[serde(skip)]
    ids: HashMap<String, u32>,
}

impl Vocab {
    /// Creates a vocabulary containing only the special tokens.
    pub fn with_specials() -> Self {
        let mut v = Vocab { tokens: Vec::new(), ids: HashMap::new() };
        for s in [PAD, UNK, BOS, EOS, MASK] {
            v.add(s);
        }
        v
    }

    /// Adds a token if absent; returns its id either way.
    pub fn add(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = self.tokens.len() as u32;
        self.tokens.push(token.to_string());
        self.ids.insert(token.to_string(), id);
        id
    }

    /// The id of `token`, or `None` if unknown.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// The id of `token`, falling back to [`UNK`].
    pub fn id_or_unk(&self, token: &str) -> u32 {
        self.id(token).unwrap_or(1)
    }

    /// The token with the given id.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.tokens.get(id as usize).map(String::as_str)
    }

    /// Number of tokens including specials.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocab holds nothing (never true after `with_specials`).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Id of the pad token.
    pub fn pad_id(&self) -> u32 {
        0
    }

    /// Id of the unknown token.
    pub fn unk_id(&self) -> u32 {
        1
    }

    /// Id of the begin-of-sequence token.
    pub fn bos_id(&self) -> u32 {
        2
    }

    /// Id of the end-of-sequence token.
    pub fn eos_id(&self) -> u32 {
        3
    }

    /// Rebuilds the token->id map after deserialization.
    pub fn rebuild_index(&mut self) {
        self.ids = self.tokens.iter().enumerate().map(|(i, t)| (t.clone(), i as u32)).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_have_fixed_ids() {
        let v = Vocab::with_specials();
        assert_eq!(v.id(PAD), Some(0));
        assert_eq!(v.id(UNK), Some(1));
        assert_eq!(v.id(BOS), Some(2));
        assert_eq!(v.id(EOS), Some(3));
        assert_eq!(v.id(MASK), Some(4));
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocab::with_specials();
        let a = v.add("carbon");
        let b = v.add("carbon");
        assert_eq!(a, b);
        assert_eq!(v.len(), 6);
        assert_eq!(v.token(a), Some("carbon"));
    }

    #[test]
    fn unknown_tokens_fall_back() {
        let v = Vocab::with_specials();
        assert_eq!(v.id_or_unk("never-seen"), v.unk_id());
    }

    #[test]
    fn serde_roundtrip_with_index_rebuild() {
        let mut v = Vocab::with_specials();
        v.add("net");
        v.add("zero");
        let json = serde_json::to_string(&v).expect("serialize");
        let mut back: Vocab = serde_json::from_str(&json).expect("deserialize");
        back.rebuild_index();
        assert_eq!(back.id("zero"), v.id("zero"));
    }
}
