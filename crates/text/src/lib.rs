//! # gs-text
//!
//! Text-processing substrate for the GoalSpotter reproduction: deterministic
//! normalization (paper §3.2's preprocessing), word-level pre-tokenization
//! with source offsets (the level Algorithm 1 labels at), trainable
//! subword tokenizers (BPE for RoBERTa-style models, WordPiece for
//! BERT-style models), closed vocabularies, and IOB label schemes with
//! span encode/decode/repair.

#![warn(missing_docs)]

mod bpe;
mod conll;
mod normalize;
mod pretokenize;
mod sentence;
mod span;
mod tokenizer;
mod vocab;
mod wordpiece;

/// IOB label schemes and span conversion.
pub mod labels;

pub use bpe::Bpe;
pub use conll::{bioes_to_iob, from_conll, iob_to_bioes, to_conll, BioesTag, ConllSentence};
pub use normalize::{match_key, Normalizer, NormalizerConfig};
pub use pretokenize::{lowercased_texts, pretokenize, PreToken};
pub use sentence::sentence_spans;
pub use span::Span;
pub use tokenizer::{Encoding, SubwordModel, Tokenizer};
pub use vocab::{Vocab, BOS, EOS, MASK, PAD, UNK};
pub use wordpiece::{WordPiece, CONT};
