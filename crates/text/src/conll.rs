//! CoNLL-2003-style interchange (paper §3.2, Table 2): reading and writing
//! token-per-line files with IOB tags, plus conversion to the BIOES scheme
//! some sequence labelers prefer.

use crate::labels::{LabelSet, Tag};
use serde::{Deserialize, Serialize};

/// A BIOES tag (Begin / Inside / Outside / End / Single).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BioesTag {
    /// Outside any entity.
    O,
    /// First token of a multi-token entity.
    B(usize),
    /// Middle token of a multi-token entity.
    I(usize),
    /// Last token of a multi-token entity.
    E(usize),
    /// Single-token entity.
    S(usize),
}

/// Converts an IOB sequence to BIOES.
pub fn iob_to_bioes(tags: &[Tag]) -> Vec<BioesTag> {
    let n = tags.len();
    (0..n)
        .map(|i| {
            let same_kind_continues =
                |j: usize, k: usize| matches!(tags.get(j), Some(Tag::I(p)) if *p == k);
            match tags[i] {
                Tag::O => BioesTag::O,
                Tag::B(k) => {
                    if same_kind_continues(i + 1, k) {
                        BioesTag::B(k)
                    } else {
                        BioesTag::S(k)
                    }
                }
                Tag::I(k) => {
                    if same_kind_continues(i + 1, k) {
                        BioesTag::I(k)
                    } else {
                        BioesTag::E(k)
                    }
                }
            }
        })
        .collect()
}

/// Converts a BIOES sequence back to IOB.
pub fn bioes_to_iob(tags: &[BioesTag]) -> Vec<Tag> {
    tags.iter()
        .map(|t| match t {
            BioesTag::O => Tag::O,
            BioesTag::B(k) | BioesTag::S(k) => Tag::B(*k),
            BioesTag::I(k) | BioesTag::E(k) => Tag::I(*k),
        })
        .collect()
}

/// Writes sentences as CoNLL lines: one `token<TAB>tag` pair per line,
/// blank line between sentences.
pub fn to_conll(sentences: &[(Vec<String>, Vec<Tag>)], labels: &LabelSet) -> String {
    let mut out = String::new();
    for (tokens, tags) in sentences {
        assert_eq!(tokens.len(), tags.len(), "token/tag mismatch");
        for (tok, tag) in tokens.iter().zip(tags) {
            out.push_str(tok);
            out.push('\t');
            out.push_str(&labels.tag_string(*tag));
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// A parsed CoNLL sentence: tokens and their tags.
pub type ConllSentence = (Vec<String>, Vec<Tag>);

/// Parses CoNLL lines back into sentences. Unknown tags become `O`;
/// malformed lines are reported as errors.
pub fn from_conll(input: &str, labels: &LabelSet) -> Result<Vec<ConllSentence>, String> {
    let mut sentences = Vec::new();
    let mut tokens: Vec<String> = Vec::new();
    let mut tags: Vec<Tag> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            if !tokens.is_empty() {
                sentences.push((std::mem::take(&mut tokens), std::mem::take(&mut tags)));
            }
            continue;
        }
        let (tok, tag_str) = line
            .rsplit_once(['\t', ' '])
            .ok_or_else(|| format!("line {}: expected `token<sep>tag`: {line:?}", lineno + 1))?;
        let tag = labels
            .parse_tag(tag_str.trim())
            .ok_or_else(|| format!("line {}: unknown tag {tag_str:?}", lineno + 1))?;
        tokens.push(tok.trim().to_string());
        tags.push(tag);
    }
    if !tokens.is_empty() {
        sentences.push((tokens, tags));
    }
    Ok(sentences)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> LabelSet {
        LabelSet::new(&["PER", "LOC"])
    }

    #[test]
    fn bioes_roundtrip_on_table2_example() {
        // Albert/B-PER Einstein/I-PER was/O born/O in/O Germany/B-LOC ./O
        let iob = vec![Tag::B(0), Tag::I(0), Tag::O, Tag::O, Tag::O, Tag::B(1), Tag::O];
        let bioes = iob_to_bioes(&iob);
        assert_eq!(
            bioes,
            vec![
                BioesTag::B(0),
                BioesTag::E(0),
                BioesTag::O,
                BioesTag::O,
                BioesTag::O,
                BioesTag::S(1),
                BioesTag::O
            ]
        );
        assert_eq!(bioes_to_iob(&bioes), iob);
    }

    #[test]
    fn bioes_middle_tokens() {
        let iob = vec![Tag::B(0), Tag::I(0), Tag::I(0)];
        assert_eq!(iob_to_bioes(&iob), vec![BioesTag::B(0), BioesTag::I(0), BioesTag::E(0)]);
    }

    #[test]
    fn conll_roundtrip() {
        let ls = labels();
        let sentences = vec![
            (
                vec!["Albert".into(), "Einstein".into(), "was".into()],
                vec![Tag::B(0), Tag::I(0), Tag::O],
            ),
            (vec!["Germany".into()], vec![Tag::B(1)]),
        ];
        let text = to_conll(&sentences, &ls);
        assert!(text.contains("Albert\tB-PER"));
        let back = from_conll(&text, &ls).expect("parse");
        assert_eq!(back, sentences);
    }

    #[test]
    fn from_conll_rejects_malformed_lines() {
        let ls = labels();
        assert!(from_conll("just_a_token_no_tag", &ls).is_err());
        assert!(from_conll("token\tB-NOPE", &ls).is_err());
    }

    #[test]
    fn from_conll_accepts_space_separator() {
        let ls = labels();
        let back = from_conll("Albert B-PER\n\n", &ls).expect("parse");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].1, vec![Tag::B(0)]);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(from_conll("", &labels()).expect("parse").is_empty());
    }
}
