//! WordPiece-style subword tokenization (BERT's scheme): greedy
//! longest-match-first segmentation with `##` continuation pieces.
//!
//! The trainer here is a frequency-based approximation of the original
//! likelihood-driven WordPiece learner: it scores every substring of the
//! training words by `frequency * (length - 1)` and keeps the top pieces.
//! That preserves the property the experiments depend on — frequent domain
//! terms become single pieces, rare words decompose — without reproducing
//! Google's exact training code.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Continuation prefix for non-initial pieces.
pub const CONT: &str = "##";

/// A trained WordPiece model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WordPiece {
    /// Word-initial pieces (no `##`).
    initial: HashSet<String>,
    /// Continuation pieces (stored without the `##` prefix).
    continuation: HashSet<String>,
    /// Longest piece length, bounding the greedy search.
    max_piece_len: usize,
}

impl WordPiece {
    /// Learns a vocabulary of roughly `vocab_budget` pieces from
    /// (word, count) pairs. All single characters seen in training are always
    /// included so segmentation cannot fail on training data.
    pub fn train<'a>(
        word_counts: impl IntoIterator<Item = (&'a str, u64)>,
        vocab_budget: usize,
    ) -> Self {
        let words: Vec<(String, u64)> = word_counts
            .into_iter()
            .filter(|(w, _)| !w.is_empty())
            .map(|(w, c)| (w.to_string(), c))
            .collect();

        // Score substrings. Key: (is_initial, piece).
        let mut scores: HashMap<(bool, String), u64> = HashMap::new();
        let mut initial = HashSet::new();
        let mut continuation = HashSet::new();
        for (word, count) in &words {
            let chars: Vec<char> = word.chars().collect();
            // Guarantee coverage: every character seen in training is a
            // valid piece in both positions, so any word over the training
            // alphabet segments successfully.
            for c in &chars {
                initial.insert(c.to_string());
                continuation.insert(c.to_string());
            }
            let max_len = chars.len().min(16);
            for start in 0..chars.len() {
                for len in 2..=max_len.min(chars.len() - start) {
                    let piece: String = chars[start..start + len].iter().collect();
                    let weight = *count * (len as u64 - 1);
                    *scores.entry((start == 0, piece)).or_insert(0) += weight;
                }
            }
        }

        let mut ranked: Vec<((bool, String), u64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0 .1.cmp(&b.0 .1)));
        for ((is_initial, piece), _) in ranked.into_iter().take(vocab_budget) {
            if is_initial {
                initial.insert(piece);
            } else {
                continuation.insert(piece);
            }
        }

        let max_piece_len =
            initial.iter().chain(continuation.iter()).map(|p| p.chars().count()).max().unwrap_or(1);
        WordPiece { initial, continuation, max_piece_len }
    }

    /// Segments a word greedily into pieces; non-initial pieces carry the
    /// `##` prefix. Returns `None` when a character has no piece (only
    /// possible for characters never seen in training).
    pub fn encode_word(&self, word: &str) -> Option<Vec<String>> {
        if word.is_empty() {
            return Some(Vec::new());
        }
        let chars: Vec<char> = word.chars().collect();
        let mut pieces = Vec::new();
        let mut pos = 0;
        while pos < chars.len() {
            let table = if pos == 0 { &self.initial } else { &self.continuation };
            let mut matched = None;
            let longest = self.max_piece_len.min(chars.len() - pos);
            for len in (1..=longest).rev() {
                let cand: String = chars[pos..pos + len].iter().collect();
                if table.contains(&cand) {
                    matched = Some((cand, len));
                    break;
                }
            }
            let (piece, len) = matched?;
            if pos == 0 {
                pieces.push(piece);
            } else {
                pieces.push(format!("{CONT}{piece}"));
            }
            pos += len;
        }
        Some(pieces)
    }

    /// Approximate vocabulary size (initial + continuation pieces).
    pub fn vocab_size(&self) -> usize {
        self.initial.len() + self.continuation.len()
    }

    /// All pieces (with `##` prefixes on continuations), sorted, for building
    /// a closed vocabulary.
    pub fn pieces(&self) -> Vec<String> {
        let mut all: Vec<String> = self
            .initial
            .iter()
            .cloned()
            .chain(self.continuation.iter().map(|p| format!("{CONT}{p}")))
            .collect();
        all.sort();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<(&'static str, u64)> {
        vec![
            ("emission", 20),
            ("emissions", 15),
            ("reduce", 25),
            ("reduction", 10),
            ("carbon", 30),
            ("net", 12),
            ("zero", 12),
        ]
    }

    #[test]
    fn frequent_words_become_single_pieces() {
        let wp = WordPiece::train(corpus(), 200);
        assert_eq!(wp.encode_word("carbon"), Some(vec!["carbon".to_string()]));
    }

    #[test]
    fn continuation_pieces_are_marked() {
        let wp = WordPiece::train(corpus(), 50);
        let pieces = wp.encode_word("emissions").expect("encodable");
        assert!(!pieces[0].starts_with(CONT));
        for p in &pieces[1..] {
            assert!(p.starts_with(CONT), "piece {p} missing ##");
        }
        let rebuilt: String = pieces.iter().map(|p| p.trim_start_matches(CONT)).collect();
        assert_eq!(rebuilt, "emissions");
    }

    #[test]
    fn unseen_characters_fail_gracefully() {
        let wp = WordPiece::train(corpus(), 50);
        assert_eq!(wp.encode_word("日本"), None);
    }

    #[test]
    fn seen_characters_always_segment() {
        let wp = WordPiece::train(corpus(), 10);
        // "nozder" uses only characters present in training words.
        assert!(wp.encode_word("nozder").is_some());
    }

    #[test]
    fn empty_word_is_empty() {
        let wp = WordPiece::train(corpus(), 10);
        assert_eq!(wp.encode_word(""), Some(vec![]));
    }

    #[test]
    fn training_is_deterministic() {
        let a = WordPiece::train(corpus(), 80);
        let b = WordPiece::train(corpus(), 80);
        assert_eq!(a.pieces(), b.pieces());
    }

    #[test]
    fn budget_bounds_vocab_growth() {
        let small = WordPiece::train(corpus(), 10);
        let large = WordPiece::train(corpus(), 500);
        assert!(small.vocab_size() < large.vocab_size());
    }
}
