//! Character-offset spans over an original text.

use serde::{Deserialize, Serialize};

/// A half-open byte range `[start, end)` into the text a token or entity was
/// extracted from. Offsets always lie on UTF-8 character boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
}

impl Span {
    /// Creates a span; `start` must not exceed `end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "span start {} > end {}", start, end);
        Span { start, end }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether two spans share at least one byte. Empty spans overlap
    /// nothing.
    pub fn overlaps(&self, other: &Span) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// Whether `self` fully contains `other`.
    pub fn contains(&self, other: &Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// The smallest span covering both inputs.
    pub fn cover(&self, other: &Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Slices the span out of `text`.
    ///
    /// # Panics
    /// Panics if offsets are out of bounds or off char boundaries.
    pub fn slice<'a>(&self, text: &'a str) -> &'a str {
        &text[self.start..self.end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_semantics() {
        let a = Span::new(0, 5);
        let b = Span::new(4, 8);
        let c = Span::new(5, 8);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching spans do not overlap");
        assert!(!a.overlaps(&Span::new(3, 3)), "empty spans overlap nothing");
    }

    #[test]
    fn contains_and_cover() {
        let outer = Span::new(2, 10);
        let inner = Span::new(4, 6);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert_eq!(inner.cover(&Span::new(8, 12)), Span::new(4, 12));
    }

    #[test]
    fn slice_extracts_text() {
        let text = "reach net-zero carbon";
        assert_eq!(Span::new(6, 14).slice(text), "net-zero");
    }

    #[test]
    #[should_panic(expected = "span start")]
    fn rejects_inverted_span() {
        let _ = Span::new(5, 2);
    }
}
