//! Text normalization following GoalSpotter's preprocessing strategy:
//! normalize input texts and remove unnecessary characters to reduce
//! superficial noise (paper §3.2).

use serde::{Deserialize, Serialize};

/// Configuration for [`Normalizer`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NormalizerConfig {
    /// Lowercase the text (BERT-uncased style). RoBERTa-style pipelines keep
    /// case; the default therefore preserves it.
    pub lowercase: bool,
    /// Collapse runs of whitespace (including newlines/tabs) to one space.
    pub collapse_whitespace: bool,
    /// Drop control characters and other non-printing code points.
    pub strip_control: bool,
    /// Map typographic quotes/dashes/ellipses to ASCII equivalents.
    pub ascii_punctuation: bool,
    /// Trim leading/trailing whitespace.
    pub trim: bool,
}

impl Default for NormalizerConfig {
    fn default() -> Self {
        NormalizerConfig {
            lowercase: false,
            collapse_whitespace: true,
            strip_control: true,
            ascii_punctuation: true,
            trim: true,
        }
    }
}

/// Deterministic text normalizer.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Normalizer {
    config: NormalizerConfig,
}

impl Normalizer {
    /// Creates a normalizer with the given configuration.
    pub fn new(config: NormalizerConfig) -> Self {
        Normalizer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &NormalizerConfig {
        &self.config
    }

    /// Normalizes `text` into a fresh string.
    pub fn normalize(&self, text: &str) -> String {
        let mut out = String::with_capacity(text.len());
        let mut last_was_space = false;
        for ch in text.chars() {
            let mapped: Option<char> = if self.config.ascii_punctuation {
                match ch {
                    '\u{2018}' | '\u{2019}' | '\u{201A}' | '\u{2032}' => Some('\''),
                    '\u{201C}' | '\u{201D}' | '\u{201E}' | '\u{2033}' => Some('"'),
                    '\u{2010}'..='\u{2015}' | '\u{2212}' => Some('-'),
                    '\u{2026}' => {
                        out.push_str("...");
                        last_was_space = false;
                        continue;
                    }
                    '\u{00A0}' | '\u{2007}' | '\u{202F}' => Some(' '),
                    _ => Some(ch),
                }
            } else {
                Some(ch)
            };
            let Some(mut ch) = mapped else { continue };
            if self.config.strip_control && ch.is_control() && ch != '\n' && ch != '\t' {
                continue;
            }
            if self.config.collapse_whitespace && ch.is_whitespace() {
                if last_was_space {
                    continue;
                }
                ch = ' ';
                last_was_space = true;
            } else {
                last_was_space = false;
            }
            if self.config.lowercase {
                for lc in ch.to_lowercase() {
                    out.push(lc);
                }
            } else {
                out.push(ch);
            }
        }
        if self.config.trim {
            out.trim().to_string()
        } else {
            out
        }
    }
}

/// Normalization used when comparing annotation values to objective text
/// under the "normalized" matching policy: lowercase, collapse whitespace,
/// strip surrounding punctuation.
pub fn match_key(text: &str) -> String {
    let n = Normalizer::new(NormalizerConfig { lowercase: true, ..Default::default() });
    n.normalize(text)
        .trim_matches(|c: char| c.is_ascii_punctuation() && c != '%')
        .trim()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapses_whitespace_and_trims() {
        let n = Normalizer::default();
        assert_eq!(n.normalize("  Reduce \t\n energy   use  "), "Reduce energy use");
    }

    #[test]
    fn maps_typographic_punctuation() {
        let n = Normalizer::default();
        assert_eq!(n.normalize("\u{201C}net\u{2013}zero\u{201D}"), "\"net-zero\"");
        assert_eq!(n.normalize("wait\u{2026}"), "wait...");
    }

    #[test]
    fn strips_control_characters() {
        let n = Normalizer::default();
        assert_eq!(n.normalize("a\u{0000}b\u{0007}c"), "abc");
    }

    #[test]
    fn lowercase_option() {
        let n = Normalizer::new(NormalizerConfig { lowercase: true, ..Default::default() });
        assert_eq!(n.normalize("Reduce CO2 Emissions"), "reduce co2 emissions");
    }

    #[test]
    fn preserves_case_by_default() {
        let n = Normalizer::default();
        assert_eq!(n.normalize("The Climate Pledge"), "The Climate Pledge");
    }

    #[test]
    fn match_key_ignores_case_and_outer_punct() {
        assert_eq!(match_key("Net-Zero,"), "net-zero");
        assert_eq!(match_key("  100%  "), "100%");
        assert_eq!(match_key("\u{201C}carbon\u{201D}"), "carbon");
    }

    #[test]
    fn empty_input_stays_empty() {
        assert_eq!(Normalizer::default().normalize(""), "");
        assert_eq!(match_key(""), "");
    }
}
