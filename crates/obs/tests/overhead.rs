//! Disabled-path overhead guard: with no collector installed, instrumented
//! call sites must cost no more than a relaxed atomic load each.
//!
//! This runs in its own integration-test process, so no other test can have
//! installed a global collector. The bound is deliberately generous (the
//! real cost is ~1-2 ns/op; we allow 250 ns/op) so the assertion stays
//! meaningful without being flaky on loaded CI machines.

use std::hint::black_box;
use std::time::Instant;

#[test]
fn disabled_instrumentation_is_effectively_free() {
    assert!(!gs_obs::enabled());

    const ITERS: u64 = 1_000_000;
    let start = Instant::now();
    for i in 0..ITERS {
        gs_obs::counter(black_box("text.tokenize.pieces"), black_box(i));
        gs_obs::observe(black_box("span.extract"), black_box(i as f64));
        let span = gs_obs::span(black_box("pipeline.extract"));
        black_box(&span);
    }
    let elapsed = start.elapsed();

    let per_op_ns = elapsed.as_nanos() as f64 / (3 * ITERS) as f64;
    assert!(
        per_op_ns < 250.0,
        "disabled telemetry costs {per_op_ns:.1} ns/op ({}ms total for {} ops)",
        elapsed.as_millis(),
        3 * ITERS
    );
}
