//! Disabled-path overhead guard: with no collector installed, instrumented
//! call sites must cost no more than a relaxed atomic load each.
//!
//! This runs in its own integration-test process, so no other test can have
//! installed a global collector. The bound is deliberately generous (the
//! real cost is ~1-2 ns/op; we allow 250 ns/op) so the assertion stays
//! meaningful without being flaky on loaded CI machines.

use std::hint::black_box;
use std::time::Instant;

#[test]
fn disabled_instrumentation_is_effectively_free() {
    assert!(!gs_obs::enabled());

    const ITERS: u64 = 1_000_000;
    let start = Instant::now();
    for i in 0..ITERS {
        gs_obs::counter(black_box("text.tokenize.pieces"), black_box(i));
        gs_obs::observe(black_box("span.extract"), black_box(i as f64));
        let span = gs_obs::span(black_box("pipeline.extract"));
        black_box(&span);
    }
    let elapsed = start.elapsed();

    let per_op_ns = elapsed.as_nanos() as f64 / (3 * ITERS) as f64;
    assert!(
        per_op_ns < 250.0,
        "disabled telemetry costs {per_op_ns:.1} ns/op ({}ms total for {} ops)",
        elapsed.as_millis(),
        3 * ITERS
    );
}

/// Same bound for the op profiler: with profiling off, an instrumented
/// kernel pays one relaxed atomic load per timer/scope and must not read
/// the clock, allocate, or touch the global store.
#[test]
fn disabled_profiler_is_effectively_free() {
    assert!(!gs_obs::prof::enabled());

    const ITERS: u64 = 1_000_000;
    let start = Instant::now();
    for i in 0..ITERS {
        let mut timer = gs_obs::prof::op(black_box("matmul"));
        timer.set_cost(gs_obs::prof::Cost::new(black_box(i), black_box(i)));
        black_box(&timer);
        let scope = gs_obs::prof::scope(black_box("l0.attn"));
        black_box(&scope);
        gs_obs::prof::record_at(black_box("l0.attn"), "matmul.bwd", i, gs_obs::prof::Cost::zero());
    }
    let elapsed = start.elapsed();

    let per_op_ns = elapsed.as_nanos() as f64 / (3 * ITERS) as f64;
    assert!(
        per_op_ns < 250.0,
        "disabled profiler costs {per_op_ns:.1} ns/op ({}ms total for {} ops)",
        elapsed.as_millis(),
        3 * ITERS
    );
    assert!(gs_obs::prof::snapshot().rows.is_empty(), "disabled profiler recorded ops");
}
