//! Property tests for histogram math: merging two histograms built from
//! the same bucket layout must preserve total counts and min/max bounds,
//! and must equal the histogram of the concatenated sample stream.

use gs_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn bounds() -> Vec<f64> {
    // Powers of two from 1/64 to 64.
    (0..13).map(|i| 2f64.powi(i - 6)).collect()
}

fn build(samples: &[f64]) -> HistogramSnapshot {
    let h = Histogram::new(bounds());
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn merge_preserves_count_and_extrema(
        a in prop::collection::vec(1e-3..1e3f64, 0..64),
        b in prop::collection::vec(1e-3..1e3f64, 0..64),
    ) {
        let sa = build(&a);
        let sb = build(&b);
        let merged = sa.merge(&sb);

        // Total count is preserved.
        prop_assert_eq!(merged.total, (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.counts.iter().sum::<u64>(), merged.total);

        // Min/max are the combined extrema.
        prop_assert_eq!(merged.min, sa.min.min(sb.min));
        prop_assert_eq!(merged.max, sa.max.max(sb.max));

        // The sum is additive (floating-point associativity holds here
        // because both operands were accumulated the same way).
        prop_assert!((merged.sum - (sa.sum + sb.sum)).abs() <= 1e-9 * (1.0 + merged.sum.abs()));

        // Merging is equivalent to observing the concatenated stream,
        // bucket by bucket.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let direct = build(&all);
        prop_assert_eq!(&merged.counts, &direct.counts);
        prop_assert_eq!(merged.total, direct.total);
        if !all.is_empty() {
            prop_assert_eq!(merged.min, direct.min);
            prop_assert_eq!(merged.max, direct.max);
        }
    }

    #[test]
    fn quantiles_stay_within_observed_range(
        samples in prop::collection::vec(1e-4..1e4f64, 1..128),
        q in 0.0..1.0f64,
    ) {
        let s = build(&samples);
        let v = s.quantile(q);
        prop_assert!(v >= s.min && v <= s.max, "q{q} -> {v} outside [{}, {}]", s.min, s.max);
    }

    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(1e-3..1e3f64, 0..32),
        b in prop::collection::vec(1e-3..1e3f64, 0..32),
    ) {
        let sa = build(&a);
        let sb = build(&b);
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }
}
