//! Bounds the profiler's disabled-path cost. Every tape op, packed-forward
//! kernel, and optimizer step consults `prof::enabled()` before doing any
//! profiler work; when profiling is off that must stay in the
//! "one relaxed atomic load and a branch" regime, not "allocate a path
//! string and take a global lock". The bounds here are two orders of
//! magnitude above the expected cost, so they hold on slow shared CI
//! boxes while still catching an accidental lock or allocation (which
//! costs microseconds, not nanoseconds).

use gs_obs::prof;
use std::sync::Mutex;
use std::time::Instant;

/// The profiler state is process-global; tests that touch it serialize.
static PROF_LOCK: Mutex<()> = Mutex::new(());

const CALLS: u32 = 1_000_000;
/// Generous per-call budget for the disabled path, in nanoseconds.
const DISABLED_NS_PER_CALL: f64 = 250.0;

fn per_call_ns(f: impl Fn(u32)) -> f64 {
    // One warmup pass, then the timed pass.
    for i in 0..1000 {
        f(i);
    }
    let start = Instant::now();
    for i in 0..CALLS {
        f(i);
    }
    start.elapsed().as_nanos() as f64 / f64::from(CALLS)
}

#[test]
fn disabled_profiler_stays_off_the_hot_path() {
    let _guard = PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    prof::set_enabled(false);
    prof::reset();

    let op = per_call_ns(|i| {
        let timer = prof::op("overhead_probe");
        std::hint::black_box(&timer);
        std::hint::black_box(i);
    });
    let scope = per_call_ns(|i| {
        let s = prof::scope("overhead_scope");
        std::hint::black_box(&s);
        std::hint::black_box(i);
    });
    let record = per_call_ns(|i| {
        prof::record_at("overhead", "probe", 10, prof::Cost::new(1, 1));
        std::hint::black_box(i);
    });

    assert!(op < DISABLED_NS_PER_CALL, "disabled op() costs {op:.1}ns/call");
    assert!(scope < DISABLED_NS_PER_CALL, "disabled scope() costs {scope:.1}ns/call");
    assert!(record < DISABLED_NS_PER_CALL, "disabled record_at() costs {record:.1}ns/call");

    // And none of it left a trace in the store.
    assert!(prof::snapshot().rows.is_empty(), "disabled profiler recorded rows");
}

#[test]
fn enabling_then_disabling_leaves_a_clean_disabled_path() {
    let _guard = PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    prof::set_enabled(true);
    {
        let mut timer = prof::op("toggle_probe");
        timer.set_cost(prof::Cost::new(1, 1));
    }
    assert!(!prof::snapshot().rows.is_empty());
    prof::set_enabled(false);
    prof::reset();
    // Post-toggle, the disabled path records nothing and stays cheap.
    let op = per_call_ns(|i| {
        let timer = prof::op("toggle_probe");
        std::hint::black_box(&timer);
        std::hint::black_box(i);
    });
    assert!(op < DISABLED_NS_PER_CALL, "post-toggle disabled op() costs {op:.1}ns/call");
    assert!(prof::snapshot().rows.is_empty());
}
