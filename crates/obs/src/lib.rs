//! # gs-obs
//!
//! Structured observability for the GoalSpotter pipeline: hierarchical
//! spans (scoped RAII timers), a metrics registry (counters, gauges,
//! fixed-bucket histograms with percentile summaries), and pluggable sinks
//! (in-memory, human-readable report, JSONL).
//!
//! ## Design
//!
//! A process has at most one installed [`Collector`]. Instrumented code
//! calls the free functions in this module ([`span`], [`counter`],
//! [`observe`], [`emit`], ...), which short-circuit on a single relaxed
//! atomic load when nothing is installed — the instrumented hot paths cost
//! nothing in production unless someone is watching.
//!
//! ```
//! let sink = gs_obs::MemorySink::new();
//! gs_obs::install(gs_obs::Collector::with_sink(Box::new(sink.clone())));
//! {
//!     let mut span = gs_obs::span("demo");
//!     span.add("items", 3);
//!     gs_obs::counter("demo.calls", 1);
//! }
//! let collector = gs_obs::uninstall().expect("was installed");
//! assert_eq!(collector.registry().counter("demo.calls").get(), 1);
//! assert_eq!(sink.of_kind("span").len(), 1);
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod metrics;
pub mod prof;
pub mod report;
pub mod sink;
pub mod span;

pub use clock::{time_it, Stopwatch};
pub use event::{Event, FieldValue};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use report::render_report;
pub use sink::{JsonlSink, MemorySink, Sink};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// The telemetry hub: a metrics [`Registry`] plus any number of event
/// [`Sink`]s, with a shared epoch for event timestamps.
pub struct Collector {
    epoch: Instant,
    registry: Registry,
    sinks: Vec<Box<dyn Sink>>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A collector with metrics only (no event sinks).
    pub fn new() -> Self {
        Collector { epoch: Instant::now(), registry: Registry::new(), sinks: Vec::new() }
    }

    /// A collector with one event sink.
    pub fn with_sink(sink: Box<dyn Sink>) -> Self {
        let mut c = Self::new();
        c.add_sink(sink);
        c
    }

    /// Adds an event sink (builder-time, before [`install`]).
    pub fn add_sink(&mut self, sink: Box<dyn Sink>) {
        self.sinks.push(sink);
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Microseconds elapsed since the collector was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Delivers an event to every sink.
    pub fn emit(&self, event: Event) {
        for sink in &self.sinks {
            sink.record(&event);
        }
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }

    /// Renders the human-readable end-of-run report.
    pub fn report(&self) -> String {
        report::render_report(&self.registry.snapshot())
    }
}

/// Fast-path switch: true iff a collector is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed collector (if any).
static COLLECTOR: RwLock<Option<Arc<Collector>>> = RwLock::new(None);

/// Whether a collector is installed. One relaxed atomic load — this is the
/// only cost instrumented code pays when telemetry is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `collector` as the process-global telemetry hub, replacing any
/// previous one, and returns a handle to it.
pub fn install(collector: Collector) -> Arc<Collector> {
    let arc = Arc::new(collector);
    *COLLECTOR.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&arc));
    ENABLED.store(true, Ordering::SeqCst);
    arc
}

/// Uninstalls the global collector, flushing its sinks. Returns the
/// collector so callers can read final metrics.
pub fn uninstall() -> Option<Arc<Collector>> {
    ENABLED.store(false, Ordering::SeqCst);
    let taken = COLLECTOR.write().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(c) = &taken {
        c.flush();
    }
    taken
}

/// Runs `f` against the installed collector, or returns `None` without
/// touching the lock when telemetry is off.
#[inline]
pub fn with_collector<R>(f: impl FnOnce(&Collector) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    let guard = COLLECTOR.read().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|c| f(c))
}

/// Opens a hierarchical span named `name`; a no-op guard when telemetry is
/// off.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span::noop();
    }
    let guard = COLLECTOR.read().unwrap_or_else(|e| e.into_inner());
    match guard.as_ref() {
        Some(c) => Span::enter(name, Arc::clone(c)),
        None => Span::noop(),
    }
}

/// Adds `delta` to the counter `name`.
#[inline]
pub fn counter(name: &str, delta: u64) {
    with_collector(|c| c.registry().counter(name).add(delta));
}

/// Sets the gauge `name`.
#[inline]
pub fn gauge(name: &str, value: f64) {
    with_collector(|c| c.registry().gauge(name).set(value));
}

/// Records `value` into the histogram `name` (default duration buckets).
#[inline]
pub fn observe(name: &str, value: f64) {
    with_collector(|c| c.registry().histogram(name).record(value));
}

/// Records `value` into the histogram `name`, creating it with the given
/// bucket `bounds` on first use (bounds are ignored once the histogram
/// exists, matching [`Registry::histogram_with`]).
#[inline]
pub fn observe_with(name: &str, value: f64, bounds: &[f64]) {
    with_collector(|c| c.registry().histogram_with(name, bounds).record(value));
}

/// Emits a structured event to every installed sink.
#[inline]
pub fn emit(kind: &str, name: &str, fields: Vec<(&str, FieldValue)>) {
    with_collector(|c| {
        let mut event = Event::new(kind, name, c.now_us());
        for (key, value) in fields {
            event.fields.push((key.to_string(), value));
        }
        c.emit(event);
    });
}

/// A snapshot of the installed collector's metrics.
pub fn snapshot() -> Option<MetricsSnapshot> {
    with_collector(|c| c.registry().snapshot())
}

/// The human-readable report of the installed collector.
pub fn global_report() -> Option<String> {
    with_collector(Collector::report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that install the process-global collector.
    static GLOBAL_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_global<R>(f: impl FnOnce() -> R) -> R {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = uninstall();
        let out = f();
        let _ = uninstall();
        out
    }

    #[test]
    fn disabled_free_functions_are_noops() {
        with_global(|| {
            assert!(!enabled());
            counter("x", 1);
            gauge("g", 1.0);
            observe("h", 1.0);
            emit("k", "n", vec![]);
            let mut s = span("dead");
            s.add("items", 1);
            assert!(!s.is_enabled());
            assert_eq!(s.path(), "");
            drop(s);
            assert!(snapshot().is_none());
            assert!(global_report().is_none());
        });
    }

    #[test]
    fn install_enables_and_uninstall_returns_collector() {
        with_global(|| {
            let handle = install(Collector::new());
            assert!(enabled());
            counter("hits", 2);
            counter("hits", 3);
            assert_eq!(handle.registry().counter("hits").get(), 5);
            let back = uninstall().expect("collector");
            assert!(!enabled());
            assert_eq!(back.registry().counter("hits").get(), 5);
            assert!(uninstall().is_none());
        });
    }

    #[test]
    fn spans_nest_and_emit_ordered_events() {
        with_global(|| {
            let sink = MemorySink::new();
            install(Collector::with_sink(Box::new(sink.clone())));
            {
                let _outer = span("develop");
                {
                    let mut inner = span("tokenize");
                    inner.add("tokens", 10);
                    inner.add("tokens", 5);
                    assert_eq!(inner.path(), "develop/tokenize");
                }
                let _sibling = span("train");
                assert_eq!(_sibling.path(), "develop/train");
            }
            // A root span opened after everything closed has no parent.
            {
                let s = span("extract");
                assert_eq!(s.path(), "extract");
            }
            let events = sink.events();
            let paths: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
            // Children close before parents.
            assert_eq!(paths, vec!["develop/tokenize", "develop/train", "develop", "extract"]);
            // Per-span counters merged into the end event.
            let tokenize = &events[0];
            assert_eq!(tokenize.field("tokens").and_then(FieldValue::as_f64), Some(15.0));
            // Durations are recorded as histograms under span.<name>.
            let collector = uninstall().expect("collector");
            let snap = collector.registry().snapshot();
            for name in ["span.develop", "span.tokenize", "span.train", "span.extract"] {
                assert_eq!(snap.histogram(name).expect(name).total, 1, "{name}");
            }
            // Timestamps are monotone in emission order.
            for pair in events.windows(2) {
                assert!(pair[0].at_us <= pair[1].at_us);
            }
        });
    }

    #[test]
    fn span_durations_are_positive_and_nested_spans_are_shorter() {
        with_global(|| {
            install(Collector::new());
            {
                let _outer = span("outer");
                std::thread::sleep(std::time::Duration::from_millis(2));
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let collector = uninstall().expect("collector");
            let snap = collector.registry().snapshot();
            let outer = snap.histogram("span.outer").expect("outer");
            let inner = snap.histogram("span.inner").expect("inner");
            assert!(outer.max >= inner.max, "outer {} inner {}", outer.max, inner.max);
            assert!(inner.min > 0.0);
        });
    }

    #[test]
    fn events_flow_to_all_sinks() {
        with_global(|| {
            let a = MemorySink::new();
            let b = MemorySink::new();
            let mut collector = Collector::with_sink(Box::new(a.clone()));
            collector.add_sink(Box::new(b.clone()));
            install(collector);
            emit("tokenize", "text.tokenize", vec![("pieces", 12usize.into())]);
            uninstall();
            assert_eq!(a.len(), 1);
            assert_eq!(b.len(), 1);
            assert_eq!(a.events()[0].field("pieces").and_then(FieldValue::as_f64), Some(12.0));
        });
    }

    #[test]
    fn reinstall_replaces_collector() {
        with_global(|| {
            install(Collector::new());
            counter("c", 1);
            let first = install(Collector::new());
            counter("c", 1);
            assert_eq!(first.registry().counter("c").get(), 1);
        });
    }
}
