//! Human-readable end-of-run report over a [`MetricsSnapshot`].

use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

/// Formats a metric value compactly: integers plainly, small values in
/// scientific notation, everything else with limited precision.
fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        return "-".to_string();
    }
    let a = v.abs();
    if v == v.trunc() && a < 1e12 {
        format!("{}", v as i64)
    } else if a > 0.0 && a < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders the snapshot as an aligned plain-text report: counters, gauges,
/// and histogram summaries (count/mean/p50/p95/p99/min/max).
pub fn render_report(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== observability report ==");
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "-- counters --");
        let width = snapshot.counters.keys().map(String::len).max().unwrap_or(0);
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "-- gauges --");
        let width = snapshot.gauges.keys().map(String::len).max().unwrap_or(0);
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "  {name:<width$}  {}", fmt_value(*value));
        }
    }
    if !snapshot.histograms.is_empty() {
        let _ = writeln!(out, "-- histograms --");
        let width = snapshot.histograms.keys().map(String::len).max().unwrap_or(0);
        for (name, h) in &snapshot.histograms {
            let _ = writeln!(
                out,
                "  {name:<width$}  n={} mean={} p50={} p95={} p99={} min={} max={}",
                h.total,
                fmt_value(h.mean()),
                fmt_value(h.quantile(0.5)),
                fmt_value(h.quantile(0.95)),
                fmt_value(h.quantile(0.99)),
                fmt_value(if h.total == 0 { 0.0 } else { h.min }),
                fmt_value(if h.total == 0 { 0.0 } else { h.max }),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn report_lists_all_metric_families() {
        let r = Registry::new();
        r.counter("text.tokenize.pieces").add(42);
        r.gauge("train.lr").set(1e-4);
        r.histogram("span.extract").record(0.002);
        let report = render_report(&r.snapshot());
        assert!(report.contains("text.tokenize.pieces"));
        assert!(report.contains("42"));
        assert!(report.contains("train.lr"));
        assert!(report.contains("span.extract"));
        assert!(report.contains("p95="));
    }

    #[test]
    fn empty_snapshot_renders_header_only() {
        let report = render_report(&MetricsSnapshot::default());
        assert!(report.contains("observability report"));
        assert!(!report.contains("counters"));
    }

    #[test]
    fn value_formatting_is_compact() {
        assert_eq!(fmt_value(5.0), "5");
        assert_eq!(fmt_value(0.25), "0.2500");
        assert!(fmt_value(2.5e-6).contains('e'));
        assert_eq!(fmt_value(f64::NAN), "-");
    }
}
