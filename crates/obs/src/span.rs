//! Hierarchical spans: scoped RAII timers with parent/child nesting and
//! per-span counters.
//!
//! A [`Span`] is created with [`crate::span`]; while it lives, spans opened
//! on the same thread become its children (their `path` is prefixed with the
//! parent chain, `"a/b/c"` style). Dropping the span records its duration
//! into the histogram `span.<name>` and emits a `"span"` event carrying the
//! full path, the duration in microseconds, and any per-span counters.
//!
//! When no collector is installed, [`crate::span`] returns a no-op guard
//! without reading the clock or allocating.

use crate::event::Event;
use crate::Collector;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// Paths of the enabled spans currently open on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A scoped timer; see the module docs. Must be dropped on the thread that
/// created it (enforced by `!Send`).
pub struct Span {
    inner: Option<SpanInner>,
    /// Spans manipulate a thread-local stack, so they must not cross
    /// threads.
    _not_send: PhantomData<*const ()>,
}

struct SpanInner {
    name: &'static str,
    path: String,
    depth: usize,
    start: Instant,
    counters: Vec<(&'static str, u64)>,
    collector: Arc<Collector>,
}

impl Span {
    /// A disabled span: every operation is a no-op.
    pub(crate) fn noop() -> Self {
        Span { inner: None, _not_send: PhantomData }
    }

    /// Opens a span under the current thread's innermost open span.
    pub(crate) fn enter(name: &'static str, collector: Arc<Collector>) -> Self {
        let (path, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            (path, stack.len())
        });
        Span {
            inner: Some(SpanInner {
                name,
                path,
                depth,
                start: Instant::now(),
                counters: Vec::new(),
                collector,
            }),
            _not_send: PhantomData,
        }
    }

    /// Whether this span is live (a collector was installed at creation).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The full `parent/child` path (empty for disabled spans).
    pub fn path(&self) -> &str {
        self.inner.as_ref().map_or("", |i| i.path.as_str())
    }

    /// Adds `n` to a per-span counter, reported in the span's end event.
    pub fn add(&mut self, key: &'static str, n: u64) {
        let Some(inner) = &mut self.inner else { return };
        match inner.counters.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v += n,
            None => inner.counters.push((key, n)),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let seconds = inner.start.elapsed().as_secs_f64();
        // Unwind this span and anything left open beneath it (a child
        // leaked across scopes must not corrupt deeper frames).
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.truncate(inner.depth.saturating_sub(1));
        });
        let registry = inner.collector.registry();
        registry.histogram(&format!("span.{}", inner.name)).record(seconds);
        let mut event = Event::new("span", &inner.path, inner.collector.now_us())
            .with("seconds", seconds)
            .with("depth", inner.depth);
        for (key, value) in inner.counters {
            event = event.with(key, value);
        }
        inner.collector.emit(event);
    }
}
