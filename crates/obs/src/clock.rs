//! Wall-clock timing plus the "simulated minutes" accounting used for the
//! LLM-prompting baselines' efficiency column (see DESIGN.md).
//!
//! This is the single source of wall-clock truth for the workspace:
//! `gs-eval::timing` re-exports these types, and span durations
//! ([`crate::Span`]) read the same monotonic clock.

use std::time::{Duration, Instant};

/// A stopwatch that can also accumulate *simulated* time, so baselines that
/// stand in for remote LLM calls can charge a per-call latency without
/// actually sleeping.
#[derive(Clone, Debug)]
pub struct Stopwatch {
    started: Instant,
    simulated: Duration,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Starts a stopwatch now.
    pub fn start() -> Self {
        Stopwatch { started: Instant::now(), simulated: Duration::ZERO }
    }

    /// Adds simulated time (e.g. one LLM round-trip).
    pub fn charge(&mut self, d: Duration) {
        self.simulated += d;
    }

    /// Real elapsed wall-clock time.
    pub fn elapsed_real(&self) -> Duration {
        self.started.elapsed()
    }

    /// Simulated time charged so far.
    pub fn elapsed_simulated(&self) -> Duration {
        self.simulated
    }

    /// Real + simulated time, the number reported in Table 4's T column.
    pub fn elapsed_total(&self) -> Duration {
        self.started.elapsed() + self.simulated
    }
}

/// Measures the wall-clock seconds a closure takes, returning its result.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_simulated_time() {
        let mut sw = Stopwatch::start();
        sw.charge(Duration::from_secs(3));
        sw.charge(Duration::from_secs(4));
        assert_eq!(sw.elapsed_simulated(), Duration::from_secs(7));
        assert!(sw.elapsed_total() >= Duration::from_secs(7));
    }

    #[test]
    fn time_it_returns_result_and_seconds() {
        let (value, secs) = time_it(|| 6 * 7);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }
}
