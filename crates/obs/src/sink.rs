//! Pluggable event sinks: where telemetry events go.
//!
//! - [`MemorySink`]: collects events in memory (tests, programmatic
//!   inspection). Cloning shares the underlying buffer, so keep a clone
//!   before handing the sink to a collector.
//! - [`JsonlSink`]: writes one JSON object per line, suitable for feeding
//!   `results/BENCH_*.json` post-processing or external tooling.

use crate::event::Event;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

/// A destination for telemetry events. Implementations must be cheap and
/// must never panic: telemetry failure must not take the pipeline down.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Flushes buffered output (end of run).
    fn flush(&self) {}
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// In-memory event collector for tests.
#[derive(Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        lock(&self.events).clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        lock(&self.events).len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: &str) -> Vec<Event> {
        lock(&self.events).iter().filter(|e| e.kind == kind).cloned().collect()
    }

    /// Event counts per kind.
    pub fn kind_counts(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for e in lock(&self.events).iter() {
            *out.entry(e.kind.clone()).or_insert(0) += 1;
        }
        out
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        lock(&self.events).push(event.clone());
    }
}

/// Writes events as JSON Lines to any `Write` destination. I/O errors are
/// swallowed (telemetry must never fail the run).
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Wraps an arbitrary writer.
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        JsonlSink { out: Mutex::new(Box::new(writer)) }
    }

    /// Creates (truncates) a file and writes buffered JSONL to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut out = lock(&self.out);
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = lock(&self.out).flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_collects_and_filters() {
        let sink = MemorySink::new();
        sink.record(&Event::new("a", "x", 0));
        sink.record(&Event::new("b", "y", 1));
        sink.record(&Event::new("a", "z", 2));
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.of_kind("a").len(), 2);
        assert_eq!(sink.kind_counts()["a"], 2);
        assert_eq!(sink.kind_counts()["b"], 1);
        // Clones share the buffer.
        let clone = sink.clone();
        clone.record(&Event::new("c", "w", 3));
        assert_eq!(sink.len(), 4);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buffer: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buffer").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Shared(Arc::clone(&buffer)));
        sink.record(&Event::new("a", "x", 0).with("v", 1usize));
        sink.record(&Event::new("b", "y", 1));
        sink.flush();
        let text = String::from_utf8(buffer.lock().expect("buffer").clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"a\""));
        assert!(lines[1].contains("\"kind\":\"b\""));
    }
}
