//! Op-level kernel profiler: per-op wall time, flop, and byte accounting
//! with roofline columns and flamegraph-compatible collapsed-stack output.
//!
//! Where [`crate::span`] answers "which pipeline stage is slow", this module
//! answers "which *kernel* the milliseconds go to": every instrumented op
//! (matmul, softmax, layer-norm, ...) records its wall time together with an
//! estimate of the floating-point work and memory traffic it performed, keyed
//! by the provenance path it ran under (`l0.attn`, `head`, ...). The
//! aggregate exposes % of total, flops/s, and arithmetic intensity
//! (flops/byte) per op — the inputs to a roofline argument about whether a
//! kernel is compute- or bandwidth-bound.
//!
//! Profiling is off by default and costs instrumented code one relaxed
//! atomic load (or one plain-bool branch where call sites latch the flag,
//! as the tape does) while disabled. Enabling it is global to the process:
//! records from every thread — including gs-par pool workers — merge into
//! one table behind a mutex, so profiling mode is a measurement tool, not
//! something to leave on in production serving.
//!
//! ```
//! gs_obs::prof::reset();
//! gs_obs::prof::set_enabled(true);
//! {
//!     let _scope = gs_obs::prof::scope("demo");
//!     let mut op = gs_obs::prof::op("matmul");
//!     op.set_cost(gs_obs::prof::Cost::new(1_000_000, 12_000));
//! }
//! gs_obs::prof::set_enabled(false);
//! let snap = gs_obs::prof::snapshot();
//! assert_eq!(snap.rows.len(), 1);
//! assert_eq!(snap.rows[0].path, "demo");
//! assert_eq!(snap.rows[0].op, "matmul");
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Fast-path switch: true iff profiling is on.
static PROF_ENABLED: AtomicBool = AtomicBool::new(false);

/// Per-`(path, op)` accumulators. A plain global mutex: profiling mode
/// optimizes for attribution fidelity, not throughput.
static STORE: Mutex<BTreeMap<(String, &'static str), StatCell>> = Mutex::new(BTreeMap::new());

#[derive(Default, Clone, Copy)]
struct StatCell {
    calls: u64,
    ns: u64,
    flops: u64,
    bytes: u64,
}

thread_local! {
    /// Full profiler scope paths currently open on this thread.
    static PROF_PATH: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Whether profiling is on. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    PROF_ENABLED.load(Ordering::Relaxed)
}

/// Turns profiling on or off process-wide. Accumulated stats are kept;
/// call [`reset`] to clear them.
pub fn set_enabled(on: bool) {
    PROF_ENABLED.store(on, Ordering::SeqCst);
}

/// Clears every accumulated op record.
pub fn reset() {
    STORE.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Estimated work performed by one op invocation: floating-point operations
/// and bytes moved between the kernel and memory. These are analytic
/// estimates from shapes (`2·m·k·n` flops for a matmul, ...), not hardware
/// counters; their job is ranking kernels and computing arithmetic
/// intensity, not cycle-exact accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cost {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes read plus bytes written.
    pub bytes: u64,
}

impl Cost {
    /// A cost of `flops` floating-point ops and `bytes` bytes moved.
    pub const fn new(flops: u64, bytes: u64) -> Self {
        Cost { flops, bytes }
    }

    /// Zero work (bookkeeping-only ops).
    pub const fn zero() -> Self {
        Cost { flops: 0, bytes: 0 }
    }
}

/// RAII guard for a named profiler scope; ops recorded on this thread while
/// it lives are keyed under `parent.name`. Must stay on the creating thread
/// (it manipulates a thread-local stack).
pub struct ProfScope {
    pushed: bool,
    _not_send: PhantomData<*const ()>,
}

/// Opens a profiler scope named `name` on this thread; a no-op guard while
/// profiling is off. Nested scopes join with dots, matching the tape's
/// provenance paths (`scope("l0")` then `scope("attn")` keys ops under
/// `l0.attn`).
#[inline]
pub fn scope(name: &str) -> ProfScope {
    if !enabled() {
        return ProfScope { pushed: false, _not_send: PhantomData };
    }
    PROF_PATH.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}.{name}"),
            None => name.to_string(),
        };
        stack.push(path);
    });
    ProfScope { pushed: true, _not_send: PhantomData }
}

impl Drop for ProfScope {
    fn drop(&mut self) {
        if self.pushed {
            PROF_PATH.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

/// RAII timer for one op invocation: created by [`op`] / [`op_at`], records
/// wall time and the [`Cost`] set via [`set_cost`](OpTimer::set_cost) when
/// dropped. The disabled form carries no state and records nothing.
pub struct OpTimer {
    inner: Option<OpTimerInner>,
}

struct OpTimerInner {
    op: &'static str,
    /// Explicit path; `None` resolves the thread's scope stack at drop.
    path: Option<String>,
    cost: Cost,
    start: Instant,
}

/// Starts timing op `name` under this thread's current profiler scope; a
/// no-op timer while profiling is off.
#[inline]
pub fn op(name: &'static str) -> OpTimer {
    if !enabled() {
        return OpTimer::noop();
    }
    OpTimer {
        inner: Some(OpTimerInner {
            op: name,
            path: None,
            cost: Cost::zero(),
            start: Instant::now(),
        }),
    }
}

/// Starts timing op `name` under an explicit `path`, ignoring the thread's
/// scope stack. The tape uses this to key ops by its own provenance scopes.
#[inline]
pub fn op_at(path: String, name: &'static str) -> OpTimer {
    if !enabled() {
        return OpTimer::noop();
    }
    OpTimer {
        inner: Some(OpTimerInner {
            op: name,
            path: Some(path),
            cost: Cost::zero(),
            start: Instant::now(),
        }),
    }
}

impl OpTimer {
    /// A timer that records nothing.
    #[inline]
    pub const fn noop() -> Self {
        OpTimer { inner: None }
    }

    /// Whether this timer will record (profiling was on at creation).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the work estimate reported with this invocation.
    #[inline]
    pub fn set_cost(&mut self, cost: Cost) {
        if let Some(inner) = &mut self.inner {
            inner.cost = cost;
        }
    }
}

impl Drop for OpTimer {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let ns = inner.start.elapsed().as_nanos() as u64;
        let path = match inner.path {
            Some(path) => path,
            None => current_path(),
        };
        record_raw(path, inner.op, ns, inner.cost);
    }
}

/// Runs `f` as op `name` with work estimate `cost`, under the current
/// thread scope. Convenience for call sites where the cost is known up
/// front (the packed inference path).
#[inline]
pub fn time<R>(name: &'static str, cost: Cost, f: impl FnOnce() -> R) -> R {
    let mut timer = op(name);
    timer.set_cost(cost);
    f()
}

/// Records one completed invocation of `op` under an explicit `path` with a
/// pre-measured duration. The tape's backward pass uses this: gradient arms
/// run far from the scope stack that was live during the forward pass, but
/// each node remembers its provenance path.
#[inline]
pub fn record_at(path: &str, op: &'static str, ns: u64, cost: Cost) {
    if !enabled() {
        return;
    }
    record_raw(path.to_string(), op, ns, cost);
}

fn current_path() -> String {
    PROF_PATH.with(|stack| stack.borrow().last().cloned()).unwrap_or_default()
}

fn record_raw(path: String, op: &'static str, ns: u64, cost: Cost) {
    let mut store = STORE.lock().unwrap_or_else(|e| e.into_inner());
    let cell = store.entry((path, op)).or_default();
    cell.calls += 1;
    cell.ns += ns;
    cell.flops += cost.flops;
    cell.bytes += cost.bytes;
}

/// One `(path, op)` aggregate in a [`ProfSnapshot`].
#[derive(Clone, Debug)]
pub struct ProfRow {
    /// Provenance path the op ran under (empty at the root).
    pub path: String,
    /// Op name (`matmul`, `softmax_last_dim.bwd`, ...).
    pub op: &'static str,
    /// Invocations.
    pub calls: u64,
    /// Total wall seconds.
    pub seconds: f64,
    /// Total estimated floating-point operations.
    pub flops: u64,
    /// Total estimated bytes moved.
    pub bytes: u64,
}

/// Per-op totals across every path, with roofline columns.
#[derive(Clone, Debug)]
pub struct OpTotal {
    /// Op name.
    pub op: &'static str,
    /// Invocations.
    pub calls: u64,
    /// Total wall seconds.
    pub seconds: f64,
    /// Fraction of the snapshot's total profiled seconds (0..=1).
    pub share: f64,
    /// Total estimated floating-point operations.
    pub flops: u64,
    /// Total estimated bytes moved.
    pub bytes: u64,
}

impl OpTotal {
    /// Achieved throughput in Gflop/s (0 when no time was recorded).
    pub fn gflops_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.flops as f64 / self.seconds / 1e9
        } else {
            0.0
        }
    }

    /// Arithmetic intensity in flops per byte moved (the roofline x-axis;
    /// 0 when no bytes were recorded).
    pub fn intensity(&self) -> f64 {
        if self.bytes > 0 {
            self.flops as f64 / self.bytes as f64
        } else {
            0.0
        }
    }
}

/// A point-in-time copy of every op accumulator.
#[derive(Clone, Debug, Default)]
pub struct ProfSnapshot {
    /// One row per `(path, op)`, sorted by total seconds descending.
    pub rows: Vec<ProfRow>,
}

/// Snapshots the accumulated op records (profiling may stay on; records
/// landing after the snapshot are not included).
pub fn snapshot() -> ProfSnapshot {
    let store = STORE.lock().unwrap_or_else(|e| e.into_inner());
    let mut rows: Vec<ProfRow> = store
        .iter()
        .map(|((path, op), cell)| ProfRow {
            path: path.clone(),
            op,
            calls: cell.calls,
            seconds: cell.ns as f64 / 1e9,
            flops: cell.flops,
            bytes: cell.bytes,
        })
        .collect();
    drop(store);
    rows.sort_by(|a, b| {
        b.seconds.total_cmp(&a.seconds).then_with(|| (&a.path, a.op).cmp(&(&b.path, b.op)))
    });
    ProfSnapshot { rows }
}

impl ProfSnapshot {
    /// Total profiled wall seconds across every row.
    pub fn total_seconds(&self) -> f64 {
        self.rows.iter().map(|r| r.seconds).sum()
    }

    /// Aggregates rows by op across paths, sorted by seconds descending.
    pub fn by_op(&self) -> Vec<OpTotal> {
        let mut per_op: BTreeMap<&'static str, OpTotal> = BTreeMap::new();
        for row in &self.rows {
            let t = per_op.entry(row.op).or_insert(OpTotal {
                op: row.op,
                calls: 0,
                seconds: 0.0,
                share: 0.0,
                flops: 0,
                bytes: 0,
            });
            t.calls += row.calls;
            t.seconds += row.seconds;
            t.flops += row.flops;
            t.bytes += row.bytes;
        }
        let total = self.total_seconds();
        let mut out: Vec<OpTotal> = per_op.into_values().collect();
        if total > 0.0 {
            for t in &mut out {
                t.share = t.seconds / total;
            }
        }
        out.sort_by(|a, b| b.seconds.total_cmp(&a.seconds).then_with(|| a.op.cmp(b.op)));
        out
    }

    /// Flamegraph-compatible collapsed-stack text: one `path;op value` line
    /// per row, value in microseconds. Feed to standard flamegraph tooling
    /// (`flamegraph.pl`, speedscope, ...) as-is.
    pub fn collapsed(&self) -> String {
        let mut lines: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let us = r.seconds * 1e6;
                if r.path.is_empty() {
                    format!("{} {}", r.op, us.round() as u64)
                } else {
                    format!("{};{} {}", r.path, r.op, us.round() as u64)
                }
            })
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Human-readable per-op table with roofline columns.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>9} {:>12} {:>7} {:>9} {:>11}",
            "op", "calls", "seconds", "%total", "gflop/s", "flops/byte"
        );
        for t in self.by_op() {
            let _ = writeln!(
                out,
                "{:<22} {:>9} {:>12.6} {:>6.1}% {:>9.2} {:>11.2}",
                t.op,
                t.calls,
                t.seconds,
                t.share * 100.0,
                t.gflops_per_sec(),
                t.intensity()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    /// Serializes tests that toggle the process-global profiler.
    static PROF_TEST_LOCK: TestMutex<()> = TestMutex::new(());

    fn with_prof<R>(f: impl FnOnce() -> R) -> R {
        let _guard = PROF_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        reset();
        let out = f();
        set_enabled(false);
        reset();
        out
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        with_prof(|| {
            let _scope = scope("dead");
            let mut t = op("matmul");
            assert!(!t.is_enabled());
            t.set_cost(Cost::new(100, 10));
            drop(t);
            record_at("x", "softmax_last_dim", 1_000, Cost::zero());
            assert!(snapshot().rows.is_empty());
        });
    }

    #[test]
    fn records_merge_by_path_and_op() {
        with_prof(|| {
            set_enabled(true);
            {
                let _s = scope("l0");
                let _inner = scope("attn");
                for _ in 0..3 {
                    let mut t = op("matmul");
                    t.set_cost(Cost::new(1000, 100));
                }
            }
            time("gelu", Cost::new(10, 20), || std::hint::black_box(1 + 1));
            record_at("l0.attn", "matmul.bwd", 5_000, Cost::new(2000, 200));
            let snap = snapshot();
            let mm = snap
                .rows
                .iter()
                .find(|r| r.op == "matmul" && r.path == "l0.attn")
                .expect("matmul row");
            assert_eq!(mm.calls, 3);
            assert_eq!(mm.flops, 3000);
            assert_eq!(mm.bytes, 300);
            assert!(mm.seconds > 0.0);
            let bwd = snap.rows.iter().find(|r| r.op == "matmul.bwd").expect("bwd row");
            assert_eq!(bwd.path, "l0.attn");
            assert_eq!(bwd.seconds, 5e-6);
            let gelu = snap.rows.iter().find(|r| r.op == "gelu").expect("gelu row");
            assert_eq!(gelu.path, "");
            assert_eq!(gelu.flops, 10);
        });
    }

    #[test]
    fn by_op_aggregates_and_shares_sum_to_one() {
        with_prof(|| {
            set_enabled(true);
            record_at("a", "matmul", 3_000_000, Cost::new(6_000_000, 1_000));
            record_at("b", "matmul", 1_000_000, Cost::new(2_000_000, 1_000));
            record_at("a", "softmax_last_dim", 1_000_000, Cost::new(500, 100));
            let snap = snapshot();
            let ops = snap.by_op();
            assert_eq!(ops[0].op, "matmul");
            assert_eq!(ops[0].calls, 2);
            assert!((ops[0].share - 0.8).abs() < 1e-9);
            assert!((ops.iter().map(|t| t.share).sum::<f64>() - 1.0).abs() < 1e-9);
            // 8e6 flops in 4 ms = 2 Gflop/s; 8e6 flops / 2e3 bytes = 4000.
            assert!((ops[0].gflops_per_sec() - 2.0).abs() < 1e-9);
            assert!((ops[0].intensity() - 4000.0).abs() < 1e-9);
            assert!(snap.table().contains("matmul"));
        });
    }

    #[test]
    fn collapsed_stacks_are_flamegraph_shaped() {
        with_prof(|| {
            set_enabled(true);
            record_at("l0.attn", "matmul", 2_000_000, Cost::zero());
            record_at("", "leaf", 1_000_000, Cost::zero());
            let text = snapshot().collapsed();
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines, vec!["l0.attn;matmul 2000", "leaf 1000"]);
        });
    }

    #[test]
    fn reset_clears_and_scopes_unwind() {
        with_prof(|| {
            set_enabled(true);
            {
                let _s = scope("outer");
                record_at("x", "matmul", 1, Cost::zero());
            }
            // After the scope guard dropped, new ops land at the root.
            let mut t = op("add");
            t.set_cost(Cost::zero());
            drop(t);
            assert!(snapshot().rows.iter().any(|r| r.op == "add" && r.path.is_empty()));
            reset();
            assert!(snapshot().rows.is_empty());
            assert_eq!(snapshot().total_seconds(), 0.0);
        });
    }
}
