//! The metrics registry: lock-free counters and gauges, fixed-bucket
//! histograms with percentile summaries, and mergeable snapshots.
//!
//! All hot-path operations are a single atomic RMW (plus one read-locked
//! hash lookup to resolve a name to its handle); snapshotting and merging
//! are cold-path operations for reports and cross-run aggregation.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Atomically applies `op` to an f64 stored as bits in `cell`.
fn atomic_f64_update(cell: &AtomicU64, op: impl Fn(f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = op(f64::from_bits(current)).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// A fixed-bucket histogram: bucket `i` counts samples `v <= bounds[i]`
/// (with `bounds` ascending); one overflow bucket counts the rest. Also
/// tracks exact count, sum, min, and max.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given ascending, finite upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty, unsorted, or contains non-finite values.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(bounds.iter().all(|b| b.is_finite()), "bounds must be finite");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly ascending");
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Exponential bounds: `start, start*factor, ...` (`count` bounds).
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && count > 0);
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Self::new(bounds)
    }

    /// The default duration histogram: 1 µs to ~134 s in powers of two.
    /// Samples are in **seconds**.
    pub fn default_durations() -> Self {
        Self::exponential(1e-6, 2.0, 28)
    }

    /// Records one sample.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|b| *b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |s| s + v);
        atomic_f64_update(&self.min_bits, |m| m.min(v));
        atomic_f64_update(&self.max_bits, |m| m.max(v));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy (individual atomics are read
    /// independently; concurrent writers may skew totals by a few samples).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            total: self.total.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Plain-data copy of a [`Histogram`], supporting quantile estimation and
/// merging (e.g. aggregating per-shard histograms into a run total).
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; `counts[bounds.len()]` is the overflow
    /// bucket.
    pub counts: Vec<u64>,
    /// Total recorded samples.
    pub total: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`+inf` when empty).
    pub min: f64,
    /// Largest sample (`-inf` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from bucket counts:
    /// the upper bound of the bucket containing the rank, clamped to the
    /// observed `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let upper = if i < self.bounds.len() { self.bounds[i] } else { self.max };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges two snapshots of histograms with identical bucket bounds.
    ///
    /// # Panics
    /// Panics if the bucket bounds differ.
    pub fn merge(&self, other: &Self) -> Self {
        assert_eq!(self.bounds, other.bounds, "cannot merge histograms with different buckets");
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.iter().zip(&other.counts).map(|(a, b)| a + b).collect(),
            total: self.total + other.total,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

/// Reads a lock, recovering from poisoning (telemetry must not amplify an
/// unrelated panic).
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Name-addressed registry of counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = read_lock(&self.counters).get(name) {
            return Arc::clone(c);
        }
        Arc::clone(write_lock(&self.counters).entry(name.to_string()).or_default())
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = read_lock(&self.gauges).get(name) {
            return Arc::clone(g);
        }
        Arc::clone(write_lock(&self.gauges).entry(name.to_string()).or_default())
    }

    /// The histogram registered under `name`, creating it with the default
    /// duration buckets on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = read_lock(&self.histograms).get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            write_lock(&self.histograms)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::default_durations())),
        )
    }

    /// Like [`histogram`](Self::histogram) but with explicit bucket bounds
    /// (only honored on first registration).
    pub fn histogram_with(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if let Some(h) = read_lock(&self.histograms).get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            write_lock(&self.histograms)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds.to_vec()))),
        )
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: read_lock(&self.counters).iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: read_lock(&self.gauges).iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: read_lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Registry`], with deterministic ordering.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        r.gauge("g").set(1.5);
        assert_eq!(r.counter("a").get(), 5);
        assert_eq!(r.gauge("g").get(), 1.5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauges["g"], 1.5);
    }

    #[test]
    fn histogram_bucket_boundaries_are_upper_inclusive() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 4.0, 5.0, 100.0] {
            h.record(v);
        }
        let s = h.snapshot();
        // 0.5 and 1.0 -> bucket 0; 1.5 and 2.0 -> bucket 1; 4.0 -> bucket 2;
        // 5.0 and 100.0 -> overflow.
        assert_eq!(s.counts, vec![2, 2, 1, 2]);
        assert_eq!(s.total, 7);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 100.0);
        assert!((s.sum - 114.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_ignores_non_finite_samples() {
        let h = Histogram::new(vec![1.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(0.5);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn quantiles_walk_buckets_and_clamp_to_observed_range() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0, 8.0]);
        // 90 samples at 0.5 (bucket 0), 10 at 7.0 (bucket 3).
        for _ in 0..90 {
            h.record(0.5);
        }
        for _ in 0..10 {
            h.record(7.0);
        }
        let s = h.snapshot();
        // p50 falls in bucket 0 whose upper bound 1.0 clamps to min..max.
        assert_eq!(s.quantile(0.5), 1.0);
        // p95 falls in bucket 3: upper bound 8.0 clamps to max 7.0.
        assert_eq!(s.quantile(0.95), 7.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 7.0);
    }

    #[test]
    fn empty_histogram_quantile_and_mean_are_zero() {
        let s = Histogram::new(vec![1.0]).snapshot();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.total, 0);
    }

    #[test]
    fn quantile_of_overflow_bucket_uses_observed_max() {
        let h = Histogram::new(vec![1.0]);
        h.record(50.0);
        h.record(90.0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.99), 90.0);
    }

    #[test]
    fn merge_adds_counts_and_widens_extrema() {
        let a = {
            let h = Histogram::new(vec![1.0, 10.0]);
            h.record(0.5);
            h.record(5.0);
            h.snapshot()
        };
        let b = {
            let h = Histogram::new(vec![1.0, 10.0]);
            h.record(20.0);
            h.snapshot()
        };
        let m = a.merge(&b);
        assert_eq!(m.total, 3);
        assert_eq!(m.counts, vec![1, 1, 1]);
        assert_eq!(m.min, 0.5);
        assert_eq!(m.max, 20.0);
        assert!((m.sum - 25.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different buckets")]
    fn merge_rejects_mismatched_buckets() {
        let a = Histogram::new(vec![1.0]).snapshot();
        let b = Histogram::new(vec![2.0]).snapshot();
        let _ = a.merge(&b);
    }

    #[test]
    fn exponential_bounds_grow_geometrically() {
        let h = Histogram::exponential(1e-6, 2.0, 4);
        let s = h.snapshot();
        assert_eq!(s.bounds.len(), 4);
        assert!((s.bounds[3] / s.bounds[0] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let h = Arc::new(Histogram::default_durations());
        let r = Arc::new(Registry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = Arc::clone(&h);
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record(1e-6 * (i + 1) as f64);
                        r.counter("hits").add(1);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(r.counter("hits").get(), 4000);
        let s = h.snapshot();
        assert_eq!(s.counts.iter().sum::<u64>(), 4000);
        assert_eq!(s.min, 1e-6);
        assert_eq!(s.max, 1e-3);
    }
}
