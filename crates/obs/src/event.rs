//! Telemetry events: the unit of data handed to [`crate::Sink`]s.
//!
//! Every event serializes to one line of JSON (JSONL). The reserved keys
//! `kind`, `name`, and `at_us` identify the event; all other keys come from
//! the event's fields. The writer is hand-rolled (gs-obs is dependency-free)
//! but emits strict JSON — consumers parse it with `serde_json`.

use std::fmt::Write as _;

/// A typed field value attached to an [`Event`].
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// A floating-point measurement (loss, learning rate, seconds, ...).
    F64(f64),
    /// An unsigned count (steps, tokens, rows, ...).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A boolean flag (e.g. whether a gradient step was clipped).
    Bool(bool),
    /// A short string label.
    Str(String),
}

impl FieldValue {
    /// The value as `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::F64(v) => Some(*v),
            FieldValue::U64(v) => Some(*v as f64),
            FieldValue::I64(v) => Some(*v as f64),
            FieldValue::Bool(_) | FieldValue::Str(_) => None,
        }
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(f64::from(v))
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One telemetry event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Event category: `"span"`, `"tokenize"`, `"train_step"`, ...
    pub kind: String,
    /// What the event is about — a span path or an instrumentation-site
    /// name like `"core.weak_label"`.
    pub name: String,
    /// Microseconds since the collector was created.
    pub at_us: u64,
    /// Event payload, in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Builds an event (timestamp filled in by the collector).
    pub fn new(kind: &str, name: &str, at_us: u64) -> Self {
        Event { kind: kind.to_string(), name: name.to_string(), at_us, fields: Vec::new() }
    }

    /// Adds a field (builder style).
    pub fn with(mut self, key: &str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serializes the event as one line of strict JSON (no trailing
    /// newline). Non-finite floats become `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 24 * self.fields.len());
        out.push_str("{\"kind\":");
        json_string(&mut out, &self.kind);
        out.push_str(",\"name\":");
        json_string(&mut out, &self.name);
        let _ = write!(out, ",\"at_us\":{}", self.at_us);
        for (key, value) in &self.fields {
            out.push(',');
            json_string(&mut out, key);
            out.push(':');
            match value {
                FieldValue::F64(v) => json_f64(&mut out, *v),
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                FieldValue::Str(s) => json_string(&mut out, s),
            }
        }
        out.push('}');
        out
    }
}

/// Appends a JSON string literal with escaping.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an f64 as a JSON number (`null` when non-finite).
fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display for floats is valid JSON.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_reserved_keys_and_fields() {
        let e = Event::new("train_step", "finetune", 1234)
            .with("loss", 0.5f64)
            .with("step", 7usize)
            .with("clipped", true)
            .with("phase", "warmup");
        let json = e.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"kind\":\"train_step\""));
        assert!(json.contains("\"name\":\"finetune\""));
        assert!(json.contains("\"at_us\":1234"));
        assert!(json.contains("\"loss\":0.5"));
        assert!(json.contains("\"step\":7"));
        assert!(json.contains("\"clipped\":true"));
        assert!(json.contains("\"phase\":\"warmup\""));
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::new("x", "a\"b\\c\nd", 0).with("s", "tab\there");
        let json = e.to_json();
        assert!(json.contains("a\\\"b\\\\c\\nd"));
        assert!(json.contains("tab\\there"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::new("x", "y", 0).with("bad", f64::NAN).with("inf", f64::INFINITY);
        let json = e.to_json();
        assert!(json.contains("\"bad\":null"));
        assert!(json.contains("\"inf\":null"));
    }

    #[test]
    fn field_lookup_and_as_f64() {
        let e = Event::new("x", "y", 0).with("n", 3usize).with("s", "str");
        assert_eq!(e.field("n").and_then(FieldValue::as_f64), Some(3.0));
        assert_eq!(e.field("s").and_then(FieldValue::as_f64), None);
        assert!(e.field("missing").is_none());
    }
}
