//! Shared evaluation driver: run any [`DetailExtractor`] over a held-out
//! test set and score it with the paper's field-level P/R/F1, tracking both
//! real and simulated (LLM round-trip) time.

use gs_core::Objective;
use gs_eval::{evaluate_extractions, FieldEval, Stopwatch};
use gs_models::DetailExtractor;
use gs_text::labels::LabelSet;
use std::time::Duration;

/// The outcome of evaluating one approach on one test set.
#[derive(Clone, Debug)]
pub struct ApproachResult {
    /// Approach display name.
    pub name: String,
    /// Field-level scores.
    pub eval: FieldEval,
    /// Real wall-clock inference time.
    pub inference_real: Duration,
    /// Real + simulated inference time (Table 4's T column for prompting
    /// baselines).
    pub inference_total: Duration,
}

impl ApproachResult {
    /// Micro precision.
    pub fn precision(&self) -> f64 {
        self.eval.micro.precision()
    }

    /// Micro recall.
    pub fn recall(&self) -> f64 {
        self.eval.micro.recall()
    }

    /// Micro F1.
    pub fn f1(&self) -> f64 {
        self.eval.micro.f1()
    }
}

/// Runs `extractor` over every test objective and scores the extractions
/// against the gold annotations.
///
/// Test objectives without annotations are skipped (they carry no gold).
pub fn evaluate_extractor(
    extractor: &dyn DetailExtractor,
    test: &[&Objective],
    labels: &LabelSet,
) -> ApproachResult {
    let mut sw = Stopwatch::start();
    sw.charge(extractor.simulated_setup_latency());
    let mut pairs = Vec::with_capacity(test.len());
    for o in test {
        let Some(gold) = o.annotations.as_ref() else { continue };
        let extracted = extractor.extract(&o.text);
        sw.charge(extractor.simulated_latency_per_call());
        pairs.push((gold.clone(), extracted));
    }
    let eval = evaluate_extractions(pairs.iter().map(|(g, e)| (g, e)), labels);
    ApproachResult {
        name: extractor.name().to_string(),
        eval,
        inference_real: sw.elapsed_real(),
        inference_total: sw.elapsed_total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::{Annotations, ExtractedDetails};
    use std::time::Duration;

    /// An oracle that returns the gold annotations verbatim.
    struct Oracle;
    impl DetailExtractor for Oracle {
        fn name(&self) -> &str {
            "Oracle"
        }
        fn extract(&self, text: &str) -> ExtractedDetails {
            let mut d = ExtractedDetails::new();
            // Parse our test fixture format "Action=x;Deadline=y".
            for part in text.split(';') {
                if let Some((k, v)) = part.split_once('=') {
                    d.set(k, v);
                }
            }
            d
        }
        fn simulated_latency_per_call(&self) -> Duration {
            Duration::from_secs(2)
        }
    }

    #[test]
    fn oracle_scores_perfectly_and_charges_latency() {
        let labels = gs_text::labels::LabelSet::sustainability_goals();
        let objectives = [
            Objective::annotated(
                0,
                "Action=Reduce;Deadline=2030",
                Annotations::new().with("Action", "Reduce").with("Deadline", "2030"),
            ),
            Objective::annotated(1, "Action=Cut", Annotations::new().with("Action", "Cut")),
        ];
        let refs: Vec<&Objective> = objectives.iter().collect();
        let result = evaluate_extractor(&Oracle, &refs, &labels);
        assert_eq!(result.f1(), 1.0);
        assert!(result.inference_total >= Duration::from_secs(4));
        assert!(result.inference_real < Duration::from_secs(1));
    }

    #[test]
    fn unannotated_objectives_are_skipped() {
        let labels = gs_text::labels::LabelSet::sustainability_goals();
        let objectives = [Objective::new(0, "Action=X")];
        let refs: Vec<&Objective> = objectives.iter().collect();
        let result = evaluate_extractor(&Oracle, &refs, &labels);
        assert_eq!(result.eval.micro.tp + result.eval.micro.fp + result.eval.micro.fn_, 0);
    }
}
