//! Full-report ingestion: raw semi-structured report text in, provenance-
//! tagged objective records out.
//!
//! This is the front half of the production pipeline for deployments that
//! receive *documents* rather than pre-segmented block lists:
//! [`gs_ingest::parse`] builds the section tree, block-level sentence
//! segmentation produces detection candidates with byte-accurate
//! [`SectionProvenance`](gs_ingest::SectionProvenance), detection fans out
//! across the `gs-par` pool, one packed [`GoalSpotter::extract_batch`]
//! forward extracts details from everything detected, and each record is
//! upserted carrying its section id, human-readable section path, block
//! kind, and source byte range.
//!
//! Candidates whose text has no alphabetic character are skipped before
//! detection: numeric baseline cells (`2019: 48,200`) and page-number
//! artifacts are never objectives, and scoring them would only burn
//! encoder time and invite false positives.

use crate::system::GoalSpotter;
use gs_ingest::SentenceUnit;
use gs_store::{ObjectiveRecord, ObjectiveSink, UpsertOutcome};
use serde::Serialize;

/// Ingestion statistics for one report text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct IngestStats {
    /// Bytes of raw report text parsed.
    pub bytes: usize,
    /// Blocks the parser produced (including blanks and rules).
    pub blocks: usize,
    /// Non-root sections in the parsed tree.
    pub sections: usize,
    /// Sentence/cell units the segmenter produced.
    pub units: usize,
    /// Units that survived the alphabetic-content filter and were scored.
    pub candidates: usize,
    /// Candidates detected as objectives (score >= 0.5).
    pub detected: usize,
    /// Upserts that created a new record.
    pub inserted: usize,
    /// Upserts that merged new detail or provenance into an existing
    /// record.
    pub updated: usize,
    /// Upserts that found content-identical state (the idempotent re-run
    /// path).
    pub unchanged: usize,
    /// Upserts the store rejected (dropped, counted, not retried).
    pub store_errors: usize,
}

/// One detected-and-extracted objective with its provenance, in document
/// order — the ingestion result the API surfaces back to the caller.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct IngestedObjective {
    /// Whitespace-normalized objective text.
    pub text: String,
    /// Detection score in [0, 1].
    pub score: f32,
    /// Extracted detail fields, empty values dropped.
    pub fields: Vec<(String, String)>,
    /// Stable id of the owning section.
    pub section_id: String,
    /// Human-readable section path (`"Report > Climate > Targets"`).
    pub section_path: String,
    /// Block kind label (`"paragraph"`, `"list_item"`, `"table_cell"`).
    pub block_kind: String,
    /// Byte range of the sentence in the source report.
    pub byte_range: (usize, usize),
    /// Column header for table-cell units, when the table has one.
    pub table_header: Option<String>,
}

/// Whether a unit is worth scoring at all.
fn is_candidate(unit: &SentenceUnit) -> bool {
    unit.text.chars().any(|c| c.is_alphabetic())
}

/// Parses one raw report text, detects and extracts objectives from it,
/// and streams provenance-tagged records into `store`.
///
/// Mirrors [`process_report`](crate::process_report)'s two-phase shape —
/// detection fans out per candidate across the `gs-par` pool, then a single
/// packed extraction forward covers every detected unit — so the result is
/// bit-identical at any pool size. Upserts reuse the store's versioned
/// merge: re-ingesting the same text is a no-op, and a later flat
/// (provenance-less) pipeline run never erases provenance already stored.
pub fn ingest_report_text(
    gs: &GoalSpotter,
    company: &str,
    document: &str,
    text: &str,
    store: &(impl ObjectiveSink + ?Sized),
) -> (IngestStats, Vec<IngestedObjective>) {
    let _span = gs_obs::span("pipeline.ingest");
    let doc = gs_ingest::parse(text);
    let units = doc.sentence_units(text);
    let candidates: Vec<&SentenceUnit> = units.iter().filter(|u| is_candidate(u)).collect();
    let mut stats = IngestStats {
        bytes: text.len(),
        blocks: doc.blocks.len(),
        sections: doc.num_sections(),
        units: units.len(),
        candidates: candidates.len(),
        ..Default::default()
    };

    let scores = gs_par::map_collect(candidates.len(), |i| gs.detection_score(&candidates[i].text));
    let detected: Vec<(&SentenceUnit, f32)> = candidates
        .iter()
        .zip(scores)
        .filter(|(_, score)| *score >= 0.5)
        .map(|(unit, score)| (*unit, score))
        .collect();
    stats.detected = detected.len();
    gs_obs::counter("pipeline.ingest.units", units.len() as u64);
    gs_obs::counter("pipeline.ingest.detected", detected.len() as u64);
    if detected.is_empty() {
        return (stats, Vec::new());
    }

    let texts: Vec<&str> = detected.iter().map(|(u, _)| u.text.as_str()).collect();
    let all_details = gs.extract_batch(&texts);
    let mut objectives = Vec::with_capacity(detected.len());
    for ((unit, score), details) in detected.iter().zip(&all_details) {
        let record = ObjectiveRecord::from_details(
            company,
            document,
            &unit.text,
            details,
            f64::from(*score),
        )
        .with_provenance(
            &unit.provenance.section_id,
            &unit.provenance.path,
            &unit.provenance.block_kind,
            unit.provenance.byte_range,
        );
        match store.upsert_record(&record) {
            Ok(UpsertOutcome::Inserted) => stats.inserted += 1,
            Ok(UpsertOutcome::Updated) => stats.updated += 1,
            Ok(UpsertOutcome::Unchanged) => stats.unchanged += 1,
            Err(_) => {
                stats.store_errors += 1;
                gs_obs::counter("pipeline.store_errors", 1);
            }
        }
        objectives.push(IngestedObjective {
            text: unit.text.clone(),
            score: *score,
            fields: details
                .fields
                .iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            section_id: unit.provenance.section_id.clone(),
            section_path: unit.provenance.path.clone(),
            block_kind: unit.provenance.block_kind.clone(),
            byte_range: unit.provenance.byte_range,
            table_header: unit.table_header.clone(),
        });
    }
    (stats, objectives)
}

/// Deterministic, line-oriented snapshot of one ingest run: the section
/// tree, the [`IngestStats`], and every ingested objective with its
/// provenance. Detection scores are written as `f32` hex bit patterns, so
/// a snapshot pins bit-exact behavior.
///
/// This is the golden-fixture format of `tests/golden/ingest_expected.txt`
/// — `goldengen --ingest` writes it and `tests/golden_extraction.rs`
/// recomputes it against the frozen detector and extractor.
pub fn ingest_snapshot(
    doc: &gs_ingest::Document,
    stats: &IngestStats,
    objectives: &[IngestedObjective],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("== sections\n");
    for s in &doc.sections {
        writeln!(out, "{}\t{}\t{}", s.id, s.level, s.path).unwrap();
    }
    out.push_str("== stats\n");
    for (name, value) in [
        ("bytes", stats.bytes),
        ("blocks", stats.blocks),
        ("sections", stats.sections),
        ("units", stats.units),
        ("candidates", stats.candidates),
        ("detected", stats.detected),
        ("inserted", stats.inserted),
        ("updated", stats.updated),
        ("unchanged", stats.unchanged),
        ("store_errors", stats.store_errors),
    ] {
        writeln!(out, "{name}\t{value}").unwrap();
    }
    out.push_str("== objectives\n");
    for o in objectives {
        writeln!(out, ">>> {}", o.text).unwrap();
        writeln!(out, "score\t{:08x}", o.score.to_bits()).unwrap();
        writeln!(out, "section\t{}\t{}", o.section_id, o.section_path).unwrap();
        writeln!(out, "kind\t{}", o.block_kind).unwrap();
        writeln!(out, "range\t{}..{}", o.byte_range.0, o.byte_range.1).unwrap();
        writeln!(out, "header\t{}", o.table_header.as_deref().unwrap_or("-")).unwrap();
        for (k, v) in &o.fields {
            writeln!(out, "field\t{k}\t{v}").unwrap();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::system::GoalSpotterConfig;
    use gs_core::Objective;
    use gs_data::fullreport::{generate_full_report, FullReportConfig, TruthPlacement};
    use gs_models::transformer::{ExtractorOptions, TrainConfig, TransformerConfig};
    use gs_store::ObjectiveStore;
    use gs_text::labels::LabelSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A tiny system whose detector has seen indicator names as noise —
    /// table Indicator cells are number/keyword-dense hard negatives, and
    /// an ingest-grade detector must reject them.
    pub(crate) fn tiny_ingest_system() -> GoalSpotter {
        let dataset = gs_data::sustaingoals::generate(80, 11);
        let refs: Vec<&Objective> = dataset.objectives.iter().collect();
        let mut noise: Vec<&str> = gs_data::banks::NOISE_BLOCKS.to_vec();
        noise.extend_from_slice(gs_data::banks::INDICATOR_NAMES);
        let config = GoalSpotterConfig {
            extractor: ExtractorOptions {
                model: TransformerConfig {
                    name: "tiny".into(),
                    d_model: 32,
                    n_heads: 2,
                    n_layers: 1,
                    d_ff: 64,
                    max_len: 48,
                    subword_budget: 250,
                    ..TransformerConfig::roberta_sim()
                },
                train: TrainConfig { epochs: 6, lr: 3e-3, batch_size: 8, ..Default::default() },
                ..Default::default()
            },
            ..Default::default()
        };
        GoalSpotter::develop(&refs, &noise, &LabelSet::sustainability_goals(), config)
    }

    fn report() -> gs_data::fullreport::FullReport {
        let mut rng = StdRng::seed_from_u64(5);
        generate_full_report("Acme Corp", "CSR 2026", &FullReportConfig::default(), &mut rng)
    }

    #[test]
    fn ingests_a_full_report_with_provenance_and_reruns_idempotently() {
        let gs = tiny_ingest_system();
        let report = report();
        let store = ObjectiveStore::new();
        let (stats, objectives) = ingest_report_text(&gs, "Acme Corp", "csr", &report.text, &store);

        assert_eq!(stats.bytes, report.text.len());
        assert!(stats.sections >= 4, "stats {stats:?}");
        assert!(stats.candidates < stats.units, "numeric cells must be filtered: {stats:?}");
        assert_eq!(stats.detected, objectives.len());
        assert_eq!(
            stats.inserted + stats.updated + stats.unchanged + stats.store_errors,
            stats.detected
        );
        assert_eq!(store.len(), stats.inserted);

        // Detection recall: every planted objective overlaps a detected unit.
        let mut hits = 0usize;
        for truth in &report.truths {
            let hit = objectives
                .iter()
                .any(|o| o.byte_range.0 < truth.span.1 && truth.span.0 < o.byte_range.1);
            hits += usize::from(hit);
        }
        assert!(
            hits + 1 >= report.truths.len(),
            "recall too low: {hits}/{} on {stats:?}",
            report.truths.len()
        );

        // Provenance: bullet objectives carry a Targets path; table
        // objectives carry their column header and an Indicators path.
        let bullets: Vec<_> = objectives.iter().filter(|o| o.block_kind == "list_item").collect();
        assert!(!bullets.is_empty());
        for b in &bullets {
            assert!(b.section_path.ends_with("> Targets"), "path {}", b.section_path);
            assert_eq!(b.section_id.len(), 16);
        }
        let cells: Vec<_> = objectives.iter().filter(|o| o.block_kind == "table_cell").collect();
        assert!(!cells.is_empty());
        for c in &cells {
            assert_eq!(c.table_header.as_deref(), Some("Target"));
            assert!(c.section_path.ends_with("> Indicators"), "path {}", c.section_path);
        }
        // Byte ranges slice back into the source.
        for o in &objectives {
            assert!(o.byte_range.0 < o.byte_range.1 && o.byte_range.1 <= report.text.len());
            assert!(report.text.is_char_boundary(o.byte_range.0));
            assert!(report.text.is_char_boundary(o.byte_range.1));
        }

        // Provenance landed in the store.
        let stored = store.export_json();
        assert!(stored.contains("section_path"), "export carries provenance: {stored}");

        // Re-ingesting the same text changes nothing.
        let (again, _) = ingest_report_text(&gs, "Acme Corp", "csr", &report.text, &store);
        assert_eq!(again.inserted, 0, "re-run must not insert: {again:?}");
        assert_eq!(again.unchanged, again.detected);
        assert_eq!(store.export_json(), stored);
    }

    #[test]
    fn table_cell_precision_rejects_indicator_and_baseline_cells() {
        let gs = tiny_ingest_system();
        let report = report();
        let store = ObjectiveStore::new();
        let (_, objectives) = ingest_report_text(&gs, "Acme", "csr", &report.text, &store);
        let truth_cells: std::collections::HashSet<&str> = report
            .truths
            .iter()
            .filter(|t| t.placement == TruthPlacement::TableCell)
            .map(|t| t.text.as_str())
            .collect();
        let mut wrong = 0usize;
        for o in objectives.iter().filter(|o| o.block_kind == "table_cell") {
            if !truth_cells.contains(o.text.as_str()) {
                wrong += 1;
            }
        }
        assert!(wrong <= 1, "{wrong} non-Target table cells detected as objectives");
    }

    #[test]
    fn ingestion_is_bit_identical_across_pool_sizes() {
        let gs = tiny_ingest_system();
        let report = report();
        let run = |threads: usize| {
            gs_par::with_threads(threads, || {
                let store = ObjectiveStore::new();
                let (stats, objectives) =
                    ingest_report_text(&gs, "Acme", "csr", &report.text, &store);
                (stats, objectives, store.export_json())
            })
        };
        let (s1, o1, e1) = run(1);
        let (s4, o4, e4) = run(4);
        assert_eq!(s1, s4);
        assert_eq!(o1, o4);
        assert_eq!(e1, e4, "store contents must not depend on pool size");
        for (a, b) in o1.iter().zip(&o4) {
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "scores bit-identical");
        }
    }

    #[test]
    fn empty_and_degenerate_inputs_ingest_cleanly() {
        let gs = tiny_ingest_system();
        let store = ObjectiveStore::new();
        for text in ["", "\n\n\n", "| | |\n", "####\n", "12345 67 89\n"] {
            let (stats, objectives) = ingest_report_text(&gs, "Acme", "csr", text, &store);
            assert_eq!(stats.detected, objectives.len(), "input {text:?}");
            assert_eq!(stats.bytes, text.len());
        }
        assert_eq!(store.len(), 0, "nothing detectable in degenerate inputs");
    }
}
