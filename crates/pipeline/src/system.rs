//! The GoalSpotter system with the integrated detail-extraction service
//! (paper Figure 2): a detection stage classifying report blocks as
//! objective vs noise, and the weakly supervised extraction stage that
//! turns detected objectives into structured records.

use gs_core::{ExtractedDetails, Objective};
use gs_models::transformer::{ExtractorOptions, TransformerExtractor};
use gs_models::{DetailExtractor, LinearDetector, LinearDetectorConfig, ObjectiveDetector};
use gs_text::labels::LabelSet;

/// Configuration of the full system.
#[derive(Clone)]
pub struct GoalSpotterConfig {
    /// Extraction-service options (model, training, weak labeling).
    pub extractor: ExtractorOptions,
    /// Detection-stage options.
    pub detector: LinearDetectorConfig,
    /// Detection score threshold; blocks scoring at or above it are treated
    /// as sustainability objectives.
    pub detection_threshold: f32,
}

impl Default for GoalSpotterConfig {
    fn default() -> Self {
        GoalSpotterConfig {
            extractor: ExtractorOptions::default(),
            detector: LinearDetectorConfig::default(),
            detection_threshold: 0.5,
        }
    }
}

/// The trained system.
pub struct GoalSpotter {
    detector: LinearDetector,
    extractor: TransformerExtractor,
    threshold: f32,
}

impl GoalSpotter {
    /// Development phase (Figure 2, purple): trains the detector on
    /// objective texts vs `noise_blocks`, and the extraction service on the
    /// annotated objectives via Algorithm 1.
    pub fn develop(
        objectives: &[&Objective],
        noise_blocks: &[&str],
        labels: &LabelSet,
        config: GoalSpotterConfig,
    ) -> Self {
        assert!(!objectives.is_empty(), "no training objectives");
        assert!(!noise_blocks.is_empty(), "no noise blocks for detection training");
        let mut develop_span = gs_obs::span("pipeline.develop");
        develop_span.add("objectives", objectives.len() as u64);
        develop_span.add("noise_blocks", noise_blocks.len() as u64);
        let mut detection_data: Vec<(&str, bool)> =
            objectives.iter().map(|o| (o.text.as_str(), true)).collect();
        detection_data.extend(noise_blocks.iter().map(|b| (*b, false)));
        let detector = {
            let _span = gs_obs::span("pipeline.train_detector");
            LinearDetector::train(&detection_data, config.detector.clone())
        };
        let extractor = {
            let _span = gs_obs::span("pipeline.train_extractor");
            TransformerExtractor::train(objectives, labels, config.extractor.clone())
        };
        GoalSpotter { detector, extractor, threshold: config.detection_threshold }
    }

    /// Builds a system from pre-trained parts (e.g. loaded checkpoints).
    pub fn from_parts(
        detector: LinearDetector,
        extractor: TransformerExtractor,
        threshold: f32,
    ) -> Self {
        GoalSpotter { detector, extractor, threshold }
    }

    /// Detection score of a text block.
    pub fn detection_score(&self, text: &str) -> f32 {
        let _span = gs_obs::span("pipeline.detect");
        self.detector.score(text)
    }

    /// Whether a block is detected as a sustainability objective.
    pub fn detect(&self, text: &str) -> bool {
        self.detection_score(text) >= self.threshold
    }

    /// Production phase (Figure 2, blue) for one objective: extract its key
    /// details.
    pub fn extract(&self, text: &str) -> ExtractedDetails {
        let mut span = gs_obs::span("pipeline.extract");
        let details = self.extractor.extract(text);
        span.add("fields", details.len() as u64);
        details
    }

    /// Production phase over many objectives at once: one packed encoder
    /// forward for all texts (see
    /// [`TransformerExtractor::extract_batch`]), positionally identical
    /// to calling [`extract`](Self::extract) per text. This is the path
    /// the serving layer's micro-batcher and the corpus processors use.
    pub fn extract_batch(&self, texts: &[&str]) -> Vec<ExtractedDetails> {
        let mut span = gs_obs::span("pipeline.extract_batch");
        span.add("texts", texts.len() as u64);
        let details = self.extractor.extract_batch(texts);
        span.add("fields", details.iter().map(|d| d.len() as u64).sum());
        details
    }

    /// The extraction service (for evaluation harnesses).
    pub fn extractor(&self) -> &TransformerExtractor {
        &self.extractor
    }

    /// The detection stage.
    pub fn detector(&self) -> &LinearDetector {
        &self.detector
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use gs_core::Annotations;
    use gs_models::transformer::{TrainConfig, TransformerConfig};

    pub(crate) fn tiny_config() -> GoalSpotterConfig {
        GoalSpotterConfig {
            extractor: ExtractorOptions {
                model: TransformerConfig {
                    name: "tiny".into(),
                    d_model: 32,
                    n_heads: 2,
                    n_layers: 1,
                    d_ff: 64,
                    max_len: 48,
                    subword_budget: 250,
                    ..TransformerConfig::roberta_sim()
                },
                train: TrainConfig { epochs: 18, lr: 3e-3, batch_size: 8, ..Default::default() },
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn corpus() -> Vec<Objective> {
        let verbs = ["Reduce", "Cut", "Lower", "Decrease"];
        let things = ["emissions", "waste", "usage", "consumption"];
        let mut out = Vec::new();
        let mut id = 0;
        for v in verbs {
            for t in things {
                let pct = 10 + (id * 7) % 80;
                let year = 2025 + (id as usize) % 15;
                out.push(Objective::annotated(
                    id,
                    format!("{v} {t} by {pct}% by {year}."),
                    Annotations::new()
                        .with("Action", v)
                        .with("Qualifier", t)
                        .with("Amount", &format!("{pct}%"))
                        .with("Deadline", &year.to_string()),
                ));
                id += 1;
            }
        }
        out
    }

    fn noise() -> Vec<&'static str> {
        vec![
            "This report was prepared in accordance with GRI standards.",
            "The audit committee reviewed the financial statements.",
            "Forward-looking statements involve risks and uncertainties.",
            "Our products are sold in more than 90 countries.",
            "Management discussion and analysis follows in section four.",
            "Revenue grew moderately while expenses remained stable.",
        ]
    }

    #[test]
    fn develop_then_detect_and_extract() {
        let data = corpus();
        let refs: Vec<&Objective> = data.iter().collect();
        let labels = LabelSet::sustainability_goals();
        let gs = GoalSpotter::develop(&refs, &noise(), &labels, tiny_config());

        assert!(gs.detect("Cut consumption by 30% by 2030."));
        assert!(!gs.detect("The audit committee met twice during the year."));

        let details = gs.extract("Lower waste by 44% by 2032.");
        assert_eq!(details.get("Amount"), Some("44%"), "details {:?}", details);
    }

    #[test]
    #[should_panic(expected = "no training objectives")]
    fn develop_requires_objectives() {
        let labels = LabelSet::sustainability_goals();
        let _ = GoalSpotter::develop(&[], &noise(), &labels, tiny_config());
    }
}
