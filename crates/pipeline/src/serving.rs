//! Adapters wiring the trained system into the `gs-serve` HTTP service:
//! [`gs_serve::ExtractEngine`] implementations whose batched entry points
//! run one packed encoder forward per micro-batch.

use crate::system::GoalSpotter;
use gs_core::ExtractedDetails;
use gs_models::transformer::TransformerExtractor;
use gs_serve::{ExtractEngine, Extraction};

fn to_extraction(details: ExtractedDetails) -> Extraction {
    Extraction { fields: details.fields.into_iter().filter(|(_, v)| !v.is_empty()).collect() }
}

impl ExtractEngine for GoalSpotter {
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        GoalSpotter::extract_batch(self, &refs).into_iter().map(to_extraction).collect()
    }
}

/// A serving engine around a bare [`TransformerExtractor`] (no detection
/// stage), for deployments that only expose the extraction service.
pub struct ExtractorEngine(pub TransformerExtractor);

impl ExtractEngine for ExtractorEngine {
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        self.0.extract_batch(&refs).into_iter().map(to_extraction).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::tiny_config;
    use gs_core::{Annotations, Objective};
    use gs_text::labels::LabelSet;

    #[test]
    fn goalspotter_engine_matches_direct_extraction() {
        let mut data = Vec::new();
        for (i, (v, t)) in
            [("Reduce", "emissions"), ("Cut", "waste"), ("Lower", "usage"), ("Trim", "intake")]
                .iter()
                .enumerate()
        {
            let pct = 10 + i * 17;
            let year = 2026 + i;
            data.push(Objective::annotated(
                i as u64,
                format!("{v} {t} by {pct}% by {year}."),
                Annotations::new()
                    .with("Action", v)
                    .with("Qualifier", t)
                    .with("Amount", &format!("{pct}%"))
                    .with("Deadline", &year.to_string()),
            ));
        }
        let refs: Vec<&Objective> = data.iter().collect();
        let noise = ["The audit committee reviewed the statements.", "Revenue grew moderately."];
        let labels = LabelSet::sustainability_goals();
        let gs = GoalSpotter::develop(&refs, &noise, &labels, tiny_config());

        let texts = vec!["Cut waste by 27% by 2029.".to_string(), String::new()];
        let via_engine = ExtractEngine::extract_batch(&gs, &texts);
        assert_eq!(via_engine.len(), 2);
        let direct = gs.extract("Cut waste by 27% by 2029.");
        for (key, value) in &via_engine[0].fields {
            assert_eq!(direct.get(key), Some(value.as_str()));
        }
        assert_eq!(
            via_engine[0].fields.len(),
            direct.fields.values().filter(|v| !v.is_empty()).count()
        );
        assert!(via_engine[1].fields.is_empty());
    }
}
