//! Adapters wiring the trained system into the `gs-serve` HTTP service:
//! [`gs_serve::ExtractEngine`] implementations whose batched entry points
//! run one packed encoder forward per micro-batch.

use crate::system::GoalSpotter;
use gs_core::ExtractedDetails;
use gs_models::transformer::{QuantizedExtractor, TransformerExtractor};
use gs_serve::{ExtractEngine, Extraction, Json, ObjectiveStoreHook};
use gs_store::{ObjectiveDb, ObjectiveRecord, UpsertOutcome};
use gs_tensor::arena;
use std::sync::Arc;

fn to_extraction(details: ExtractedDetails) -> Extraction {
    Extraction { fields: details.fields.into_iter().filter(|(_, v)| !v.is_empty()).collect() }
}

impl ExtractEngine for GoalSpotter {
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        arena::scope(|| GoalSpotter::extract_batch(self, &refs))
            .into_iter()
            .map(to_extraction)
            .collect()
    }

    fn arena_bytes(&self) -> Option<u64> {
        Some(arena::stats().pooled_bytes)
    }
}

/// A serving engine around a bare [`TransformerExtractor`] (no detection
/// stage), for deployments that only expose the extraction service. Each
/// micro-batch forward runs inside a buffer-arena scope, so steady-state
/// serving recycles its kernel buffers instead of hitting the allocator.
pub struct ExtractorEngine(pub TransformerExtractor);

impl ExtractEngine for ExtractorEngine {
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        arena::scope(|| self.0.extract_batch(&refs)).into_iter().map(to_extraction).collect()
    }

    fn arena_bytes(&self) -> Option<u64> {
        Some(arena::stats().pooled_bytes)
    }
}

/// The int8 serving engine: a weight-quantized copy of a trained extractor
/// behind the same [`ExtractEngine`] interface. Spans match the f32 path on
/// the accuracy-tolerance suite while the encoder weights occupy ~4x less
/// memory; logits are tolerance-bounded, not bit-identical (see
/// `gs_models::transformer::QuantizedExtractor`).
pub struct QuantizedEngine(pub QuantizedExtractor);

impl QuantizedEngine {
    /// Quantizes `extractor`'s encoder weights into a serving engine.
    pub fn from_extractor(extractor: &TransformerExtractor) -> Self {
        QuantizedEngine(QuantizedExtractor::from(extractor))
    }
}

impl ExtractEngine for QuantizedEngine {
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        arena::scope(|| self.0.extract_batch(&refs)).into_iter().map(to_extraction).collect()
    }

    fn arena_bytes(&self) -> Option<u64> {
        Some(arena::stats().pooled_bytes)
    }
}

/// Bridges the serving layer's [`ObjectiveStoreHook`] to the log-structured
/// [`ObjectiveDb`]: served extractions that name a company are upserted
/// (same dedupe/merge semantics as the batch pipeline), and
/// `GET /v1/objectives` reads come from the store's lock-free reader path.
///
/// When built [`with_spotter`](Self::with_spotter), each upserted record is
/// scored by the detector, so API-ingested records rank comparably with
/// batch-pipeline records in `top_objectives`; without one the score is
/// 1.0 (the client asserted it is an objective by asking for extraction).
pub struct DbStoreHook {
    db: Arc<ObjectiveDb>,
    spotter: Option<Arc<GoalSpotter>>,
}

impl DbStoreHook {
    /// A hook that stores served extractions with score 1.0.
    pub fn new(db: Arc<ObjectiveDb>) -> Self {
        DbStoreHook { db, spotter: None }
    }

    /// A hook that scores each stored objective with `spotter`'s detector.
    pub fn with_spotter(db: Arc<ObjectiveDb>, spotter: Arc<GoalSpotter>) -> Self {
        DbStoreHook { db, spotter: Some(spotter) }
    }

    /// The underlying store.
    pub fn db(&self) -> &Arc<ObjectiveDb> {
        &self.db
    }
}

fn json_opt(field: &Option<String>) -> Json {
    match field {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    }
}

fn record_json(record: &ObjectiveRecord) -> Json {
    Json::obj(vec![
        ("company", Json::Str(record.company.clone())),
        ("document", Json::Str(record.document.clone())),
        ("objective", Json::Str(record.objective.clone())),
        ("action", json_opt(&record.action)),
        ("amount", json_opt(&record.amount)),
        ("qualifier", json_opt(&record.qualifier)),
        ("baseline", json_opt(&record.baseline)),
        ("deadline", json_opt(&record.deadline)),
        ("score", if record.score.is_finite() { Json::Num(record.score) } else { Json::Null }),
    ])
}

impl ObjectiveStoreHook for DbStoreHook {
    fn record_extraction(
        &self,
        company: &str,
        document: &str,
        objective: &str,
        fields: &[(String, String)],
    ) -> Result<&'static str, String> {
        let mut details = ExtractedDetails::new();
        for (key, value) in fields {
            details.set(key, value);
        }
        let score = match &self.spotter {
            Some(gs) => f64::from(gs.detection_score(objective)),
            None => 1.0,
        };
        let record = ObjectiveRecord::from_details(company, document, objective, &details, score);
        match self.db.upsert(&record) {
            Ok(UpsertOutcome::Inserted) => Ok("inserted"),
            Ok(UpsertOutcome::Updated) => Ok("updated"),
            Ok(UpsertOutcome::Unchanged) => Ok("unchanged"),
            Err(e) => Err(e.to_string()),
        }
    }

    fn company_records(&self, company: &str) -> Vec<Json> {
        self.db.reader().by_company(company).iter().map(record_json).collect()
    }

    fn record_count(&self) -> usize {
        self.db.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::tiny_config;
    use gs_core::{Annotations, Objective};
    use gs_text::labels::LabelSet;

    #[test]
    fn goalspotter_engine_matches_direct_extraction() {
        let mut data = Vec::new();
        for (i, (v, t)) in
            [("Reduce", "emissions"), ("Cut", "waste"), ("Lower", "usage"), ("Trim", "intake")]
                .iter()
                .enumerate()
        {
            let pct = 10 + i * 17;
            let year = 2026 + i;
            data.push(Objective::annotated(
                i as u64,
                format!("{v} {t} by {pct}% by {year}."),
                Annotations::new()
                    .with("Action", v)
                    .with("Qualifier", t)
                    .with("Amount", &format!("{pct}%"))
                    .with("Deadline", &year.to_string()),
            ));
        }
        let refs: Vec<&Objective> = data.iter().collect();
        let noise = ["The audit committee reviewed the statements.", "Revenue grew moderately."];
        let labels = LabelSet::sustainability_goals();
        let gs = GoalSpotter::develop(&refs, &noise, &labels, tiny_config());

        let texts = vec!["Cut waste by 27% by 2029.".to_string(), String::new()];
        let via_engine = ExtractEngine::extract_batch(&gs, &texts);
        assert_eq!(via_engine.len(), 2);
        let direct = gs.extract("Cut waste by 27% by 2029.");
        for (key, value) in &via_engine[0].fields {
            assert_eq!(direct.get(key), Some(value.as_str()));
        }
        assert_eq!(
            via_engine[0].fields.len(),
            direct.fields.values().filter(|v| !v.is_empty()).count()
        );
        assert!(via_engine[1].fields.is_empty());
    }
}
