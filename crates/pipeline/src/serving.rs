//! Adapters wiring the trained system into the `gs-serve` HTTP service:
//! [`gs_serve::ExtractEngine`] implementations whose batched entry points
//! run one packed encoder forward per micro-batch.

use crate::ingest::{ingest_report_text, IngestStats, IngestedObjective};
use crate::system::GoalSpotter;
use gs_core::ExtractedDetails;
use gs_models::transformer::{QuantizedExtractor, TransformerExtractor};
use gs_serve::{ExtractEngine, Extraction, IngestHook, Json, ObjectiveStoreHook};
use gs_store::{ObjectiveDb, ObjectiveRecord, UpsertOutcome};
use gs_tensor::arena;
use std::sync::Arc;

fn to_extraction(details: ExtractedDetails) -> Extraction {
    Extraction { fields: details.fields.into_iter().filter(|(_, v)| !v.is_empty()).collect() }
}

impl ExtractEngine for GoalSpotter {
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        arena::scope(|| GoalSpotter::extract_batch(self, &refs))
            .into_iter()
            .map(to_extraction)
            .collect()
    }

    fn arena_bytes(&self) -> Option<u64> {
        Some(arena::stats().pooled_bytes)
    }
}

/// A serving engine around a bare [`TransformerExtractor`] (no detection
/// stage), for deployments that only expose the extraction service. Each
/// micro-batch forward runs inside a buffer-arena scope, so steady-state
/// serving recycles its kernel buffers instead of hitting the allocator.
pub struct ExtractorEngine(pub TransformerExtractor);

impl ExtractEngine for ExtractorEngine {
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        arena::scope(|| self.0.extract_batch(&refs)).into_iter().map(to_extraction).collect()
    }

    fn arena_bytes(&self) -> Option<u64> {
        Some(arena::stats().pooled_bytes)
    }
}

/// The int8 serving engine: a weight-quantized copy of a trained extractor
/// behind the same [`ExtractEngine`] interface. Spans match the f32 path on
/// the accuracy-tolerance suite while the encoder weights occupy ~4x less
/// memory; logits are tolerance-bounded, not bit-identical (see
/// `gs_models::transformer::QuantizedExtractor`).
pub struct QuantizedEngine(pub QuantizedExtractor);

impl QuantizedEngine {
    /// Quantizes `extractor`'s encoder weights into a serving engine.
    pub fn from_extractor(extractor: &TransformerExtractor) -> Self {
        QuantizedEngine(QuantizedExtractor::from(extractor))
    }
}

impl ExtractEngine for QuantizedEngine {
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        arena::scope(|| self.0.extract_batch(&refs)).into_iter().map(to_extraction).collect()
    }

    fn arena_bytes(&self) -> Option<u64> {
        Some(arena::stats().pooled_bytes)
    }
}

/// Bridges the serving layer's [`ObjectiveStoreHook`] to the log-structured
/// [`ObjectiveDb`]: served extractions that name a company are upserted
/// (same dedupe/merge semantics as the batch pipeline), and
/// `GET /v1/objectives` reads come from the store's lock-free reader path.
///
/// When built [`with_spotter`](Self::with_spotter), each upserted record is
/// scored by the detector, so API-ingested records rank comparably with
/// batch-pipeline records in `top_objectives`; without one the score is
/// 1.0 (the client asserted it is an objective by asking for extraction).
pub struct DbStoreHook {
    db: Arc<ObjectiveDb>,
    spotter: Option<Arc<GoalSpotter>>,
}

impl DbStoreHook {
    /// A hook that stores served extractions with score 1.0.
    pub fn new(db: Arc<ObjectiveDb>) -> Self {
        DbStoreHook { db, spotter: None }
    }

    /// A hook that scores each stored objective with `spotter`'s detector.
    pub fn with_spotter(db: Arc<ObjectiveDb>, spotter: Arc<GoalSpotter>) -> Self {
        DbStoreHook { db, spotter: Some(spotter) }
    }

    /// The underlying store.
    pub fn db(&self) -> &Arc<ObjectiveDb> {
        &self.db
    }
}

fn json_opt(field: &Option<String>) -> Json {
    match field {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    }
}

fn record_json(record: &ObjectiveRecord) -> Json {
    Json::obj(vec![
        ("company", Json::Str(record.company.clone())),
        ("document", Json::Str(record.document.clone())),
        ("objective", Json::Str(record.objective.clone())),
        ("action", json_opt(&record.action)),
        ("amount", json_opt(&record.amount)),
        ("qualifier", json_opt(&record.qualifier)),
        ("baseline", json_opt(&record.baseline)),
        ("deadline", json_opt(&record.deadline)),
        ("score", if record.score.is_finite() { Json::Num(record.score) } else { Json::Null }),
        ("section_id", json_opt(&record.section_id)),
        ("section_path", json_opt(&record.section_path)),
        ("block_kind", json_opt(&record.block_kind)),
        ("source_range", json_opt(&record.source_range)),
    ])
}

fn stats_json(stats: &IngestStats) -> Json {
    Json::obj(vec![
        ("bytes", stats.bytes.into()),
        ("blocks", stats.blocks.into()),
        ("sections", stats.sections.into()),
        ("units", stats.units.into()),
        ("candidates", stats.candidates.into()),
        ("detected", stats.detected.into()),
        ("inserted", stats.inserted.into()),
        ("updated", stats.updated.into()),
        ("unchanged", stats.unchanged.into()),
        ("store_errors", stats.store_errors.into()),
    ])
}

fn ingested_json(o: &IngestedObjective) -> Json {
    Json::obj(vec![
        ("text", Json::Str(o.text.clone())),
        ("score", Json::Num(f64::from(o.score))),
        (
            "fields",
            Json::Obj(o.fields.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect()),
        ),
        ("section_id", Json::Str(o.section_id.clone())),
        ("section_path", Json::Str(o.section_path.clone())),
        ("block_kind", Json::Str(o.block_kind.clone())),
        ("byte_range", Json::Arr(vec![o.byte_range.0.into(), o.byte_range.1.into()])),
        (
            "table_header",
            match &o.table_header {
                Some(h) => Json::Str(h.clone()),
                None => Json::Null,
            },
        ),
    ])
}

impl ObjectiveStoreHook for DbStoreHook {
    fn record_extraction(
        &self,
        company: &str,
        document: &str,
        objective: &str,
        fields: &[(String, String)],
    ) -> Result<&'static str, String> {
        let mut details = ExtractedDetails::new();
        for (key, value) in fields {
            details.set(key, value);
        }
        let score = match &self.spotter {
            Some(gs) => f64::from(gs.detection_score(objective)),
            None => 1.0,
        };
        let record = ObjectiveRecord::from_details(company, document, objective, &details, score);
        match self.db.upsert(&record) {
            Ok(UpsertOutcome::Inserted) => Ok("inserted"),
            Ok(UpsertOutcome::Updated) => Ok("updated"),
            Ok(UpsertOutcome::Unchanged) => Ok("unchanged"),
            Err(e) => Err(e.to_string()),
        }
    }

    fn company_records(&self, company: &str) -> Vec<Json> {
        self.db.reader().by_company(company).iter().map(record_json).collect()
    }

    fn record_count(&self) -> usize {
        self.db.len()
    }
}

impl IngestHook for DbStoreHook {
    fn ingest_report(&self, company: &str, document: &str, text: &str) -> Result<Json, String> {
        let Some(gs) = &self.spotter else {
            return Err(
                "ingestion needs a detection stage; build the hook with_spotter".to_string()
            );
        };
        let (stats, objectives) = ingest_report_text(gs, company, document, text, self.db.as_ref());
        Ok(Json::obj(vec![
            ("company", Json::Str(company.to_string())),
            ("document", Json::Str(document.to_string())),
            ("stats", stats_json(&stats)),
            ("objectives", Json::Arr(objectives.iter().map(ingested_json).collect())),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::tiny_config;
    use gs_core::{Annotations, Objective};
    use gs_text::labels::LabelSet;

    #[test]
    fn goalspotter_engine_matches_direct_extraction() {
        let mut data = Vec::new();
        for (i, (v, t)) in
            [("Reduce", "emissions"), ("Cut", "waste"), ("Lower", "usage"), ("Trim", "intake")]
                .iter()
                .enumerate()
        {
            let pct = 10 + i * 17;
            let year = 2026 + i;
            data.push(Objective::annotated(
                i as u64,
                format!("{v} {t} by {pct}% by {year}."),
                Annotations::new()
                    .with("Action", v)
                    .with("Qualifier", t)
                    .with("Amount", &format!("{pct}%"))
                    .with("Deadline", &year.to_string()),
            ));
        }
        let refs: Vec<&Objective> = data.iter().collect();
        let noise = ["The audit committee reviewed the statements.", "Revenue grew moderately."];
        let labels = LabelSet::sustainability_goals();
        let gs = GoalSpotter::develop(&refs, &noise, &labels, tiny_config());

        let texts = vec!["Cut waste by 27% by 2029.".to_string(), String::new()];
        let via_engine = ExtractEngine::extract_batch(&gs, &texts);
        assert_eq!(via_engine.len(), 2);
        let direct = gs.extract("Cut waste by 27% by 2029.");
        for (key, value) in &via_engine[0].fields {
            assert_eq!(direct.get(key), Some(value.as_str()));
        }
        assert_eq!(
            via_engine[0].fields.len(),
            direct.fields.values().filter(|v| !v.is_empty()).count()
        );
        assert!(via_engine[1].fields.is_empty());
    }

    #[test]
    fn ingest_endpoint_round_trips_a_report_into_the_store() {
        use gs_serve::{Client, Server, ServerConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::time::Duration;

        let gs = Arc::new(crate::ingest::tests::tiny_ingest_system());
        let db = Arc::new(ObjectiveDb::ephemeral(gs_store::StoreConfig::default()));
        let hook = Arc::new(DbStoreHook::with_spotter(Arc::clone(&db), Arc::clone(&gs)));
        let server =
            Server::start_with_hooks(gs, ServerConfig::default(), Some(hook.clone()), Some(hook))
                .expect("server");
        let mut client = Client::connect(server.addr(), Duration::from_secs(30)).expect("client");

        let mut rng = StdRng::seed_from_u64(5);
        let report = gs_data::fullreport::generate_full_report(
            "Acme Corp",
            "CSR 2026",
            &gs_data::fullreport::FullReportConfig::default(),
            &mut rng,
        );
        let body = Json::obj(vec![
            ("company", Json::Str("Acme Corp".to_string())),
            ("document", Json::Str("csr-2026".to_string())),
            ("text", Json::Str(report.text.clone())),
        ])
        .to_string();
        let response = client.post_json("/v1/ingest", &body).expect("ingest");
        assert_eq!(response.status, 200, "body {}", response.body);
        let parsed = gs_serve::json::parse(&response.body).expect("json");
        let detected = parsed.get("stats").and_then(|s| s.get("detected")).and_then(Json::as_u64);
        assert!(detected.unwrap_or(0) > 0, "body {}", response.body);
        assert!(response.body.contains("section_path"), "body {}", response.body);
        assert!(response.header("x-trace-id").is_some());
        assert!(!db.is_empty(), "records landed in the store");

        // Stored provenance surfaces on the objectives read path too.
        let read = client.get("/v1/objectives?company=Acme%20Corp").expect("objectives");
        assert_eq!(read.status, 200);
        assert!(read.body.contains("section_path"), "body {}", read.body);

        // Bad requests are client errors, not 500s.
        let missing = client.post_json("/v1/ingest", "{\"text\": \"x\"}").expect("post");
        assert_eq!(missing.status, 400);
        server.shutdown();
    }

    #[test]
    fn ingest_endpoint_is_absent_without_a_hook() {
        use gs_serve::{Client, Server, ServerConfig};
        use std::time::Duration;

        struct Null;
        impl ExtractEngine for Null {
            fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
                texts.iter().map(|_| Extraction { fields: vec![] }).collect()
            }
        }
        let server = Server::start(Arc::new(Null), ServerConfig::default()).expect("server");
        let mut client = Client::connect(server.addr(), Duration::from_secs(5)).expect("client");
        let response =
            client.post_json("/v1/ingest", "{\"company\": \"A\", \"text\": \"t\"}").expect("post");
        assert_eq!(response.status, 404);
        server.shutdown();
    }
}
