//! Production-phase document processing: run GoalSpotter over reports,
//! detect objective blocks, extract their details, and store the structured
//! records (paper §5's deployment scenarios).

use crate::system::GoalSpotter;
use gs_data::deployment::DeploymentCorpus;
use gs_data::documents::Report;
use gs_store::{ObjectiveRecord, ObjectiveSink, UpsertOutcome};
use serde::Serialize;

/// Processing statistics for one report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ReportStats {
    /// Pages scanned.
    pub pages: usize,
    /// Blocks classified.
    pub blocks: usize,
    /// Blocks detected as objectives (and streamed into the store).
    pub detected: usize,
    /// Detection errors vs ground truth: noise blocks detected as
    /// objectives.
    pub false_positives: usize,
    /// Detection errors vs ground truth: objective blocks missed.
    pub false_negatives: usize,
    /// Upserts that created a new record.
    pub inserted: usize,
    /// Upserts that merged new detail into an existing record.
    pub updated: usize,
    /// Upserts that found content-identical state (re-processing an
    /// already-ingested report lands here — the idempotent path).
    pub unchanged: usize,
    /// Upserts the store rejected with an I/O error (records are dropped,
    /// not retried; the count surfaces the loss).
    pub store_errors: usize,
}

/// Per-company aggregate over a corpus (the shape of the paper's Table 5).
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct CompanyStats {
    /// Company label.
    pub company: String,
    /// Documents processed.
    pub documents: usize,
    /// Pages scanned.
    pub pages: usize,
    /// Objectives extracted into the store.
    pub extracted_objectives: usize,
    /// Upserts that created a new record (deduplicated, so re-processing a
    /// company's reports leaves this at 0).
    pub new_records: usize,
}

/// Runs detection + extraction over one report, streaming every detected
/// objective into `store` as an upsert: new objectives insert, re-extracted
/// ones merge details under their (company, objective) identity, and
/// content-identical re-runs are no-ops — so processing the same report
/// twice leaves the store bit-identical.
///
/// Extraction is two-phase: detection sweeps all blocks first, then one
/// [`GoalSpotter::extract_batch`] call runs a packed encoder forward over
/// every detected block — the same amortization the serving layer's
/// micro-batcher applies, here per report.
pub fn process_report(
    gs: &GoalSpotter,
    report: &Report,
    store: &(impl ObjectiveSink + ?Sized),
) -> ReportStats {
    let mut stats = ReportStats { pages: report.pages.len(), ..Default::default() };
    let blocks: Vec<_> = report.pages.iter().flat_map(|p| p.blocks.iter()).collect();
    stats.blocks = blocks.len();
    // Per-block detection is independent, so it fans out across the gs-par
    // pool; scores come back in block order and the accounting below folds
    // serially, keeping stats identical at any pool size.
    let scores = gs_par::map_collect(blocks.len(), |i| gs.detection_score(&blocks[i].text));
    let mut detected: Vec<(&str, f32)> = Vec::new();
    for (block, score) in blocks.iter().zip(scores) {
        let is_detected = score >= 0.5;
        match (is_detected, block.is_objective) {
            (true, false) => stats.false_positives += 1,
            (false, true) => stats.false_negatives += 1,
            _ => {}
        }
        if is_detected {
            stats.detected += 1;
            detected.push((&block.text, score));
        }
    }
    if detected.is_empty() {
        return stats;
    }
    let texts: Vec<&str> = detected.iter().map(|(t, _)| *t).collect();
    let all_details = gs.extract_batch(&texts);
    for ((text, score), details) in detected.iter().zip(&all_details) {
        let record = ObjectiveRecord::from_details(
            &report.company,
            &report.title,
            text,
            details,
            f64::from(*score),
        );
        match store.upsert_record(&record) {
            Ok(UpsertOutcome::Inserted) => stats.inserted += 1,
            Ok(UpsertOutcome::Updated) => stats.updated += 1,
            Ok(UpsertOutcome::Unchanged) => stats.unchanged += 1,
            Err(_) => {
                stats.store_errors += 1;
                gs_obs::counter("pipeline.store_errors", 1);
            }
        }
    }
    stats
}

/// Runs the corpus through the system using `threads` worker threads (the
/// store is already thread-safe; reports are partitioned across workers).
/// Produces the same totals as [`process_corpus`] — ordering of rows within
/// the store differs, per-company aggregates do not.
pub fn process_corpus_parallel(
    gs: &GoalSpotter,
    corpus: &DeploymentCorpus,
    store: &(impl ObjectiveSink + ?Sized),
    threads: usize,
) -> Vec<CompanyStats> {
    let threads = threads.max(1);
    let chunk = corpus.reports.len().div_ceil(threads);
    let mut all: Vec<(usize, String, ReportStats)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = corpus
            .reports
            .chunks(chunk.max(1))
            .enumerate()
            .map(|(ci, reports)| {
                scope.spawn(move || {
                    reports
                        .iter()
                        .enumerate()
                        .map(|(ri, report)| {
                            (
                                ci * chunk + ri,
                                report.company.clone(),
                                process_report(gs, report, store),
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().expect("worker panicked"));
        }
    });
    all.sort_by_key(|(i, _, _)| *i);

    let mut order: Vec<String> = Vec::new();
    let mut stats: std::collections::HashMap<String, CompanyStats> =
        std::collections::HashMap::new();
    for (_, company, rs) in all {
        let entry = stats.entry(company.clone()).or_insert_with(|| {
            order.push(company.clone());
            CompanyStats { company, ..Default::default() }
        });
        entry.documents += 1;
        entry.pages += rs.pages;
        entry.extracted_objectives += rs.detected;
        entry.new_records += rs.inserted;
    }
    order.into_iter().map(|c| stats.remove(&c).expect("company stats")).collect()
}

/// Runs the full deployment corpus through the system, returning Table 5
/// style per-company rows in corpus order.
pub fn process_corpus(
    gs: &GoalSpotter,
    corpus: &DeploymentCorpus,
    store: &(impl ObjectiveSink + ?Sized),
) -> Vec<CompanyStats> {
    let mut order: Vec<String> = Vec::new();
    let mut stats: std::collections::HashMap<String, CompanyStats> =
        std::collections::HashMap::new();
    for report in &corpus.reports {
        let entry = stats.entry(report.company.clone()).or_insert_with(|| {
            order.push(report.company.clone());
            CompanyStats { company: report.company.clone(), ..Default::default() }
        });
        let rs = process_report(gs, report, store);
        entry.documents += 1;
        entry.pages += rs.pages;
        entry.extracted_objectives += rs.detected;
        entry.new_records += rs.inserted;
    }
    order.into_iter().map(|c| stats.remove(&c).expect("company stats")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::GoalSpotterConfig;
    use gs_core::{Annotations, Objective};
    use gs_data::documents::{generate_report, ReportConfig};
    use gs_models::transformer::{ExtractorOptions, TrainConfig, TransformerConfig};
    use gs_store::ObjectiveStore;
    use gs_text::labels::LabelSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_system() -> GoalSpotter {
        // Train on a slice of the synthetic Sustainability Goals data so the
        // detector generalizes to generated reports.
        let dataset = gs_data::sustaingoals::generate(80, 11);
        let refs: Vec<&Objective> = dataset.objectives.iter().collect();
        let noise: Vec<&str> = gs_data::banks::NOISE_BLOCKS.to_vec();
        let config = GoalSpotterConfig {
            extractor: ExtractorOptions {
                model: TransformerConfig {
                    name: "tiny".into(),
                    d_model: 32,
                    n_heads: 2,
                    n_layers: 1,
                    d_ff: 64,
                    max_len: 48,
                    subword_budget: 250,
                    ..TransformerConfig::roberta_sim()
                },
                train: TrainConfig { epochs: 6, lr: 3e-3, batch_size: 8, ..Default::default() },
                ..Default::default()
            },
            ..Default::default()
        };
        GoalSpotter::develop(&refs, &noise, &LabelSet::sustainability_goals(), config)
    }

    #[test]
    fn report_processing_fills_the_store_and_reprocessing_is_idempotent() {
        let gs = tiny_system();
        let mut rng = StdRng::seed_from_u64(5);
        let report = generate_report("C1", "CSR 2025", 6, 8, &ReportConfig::default(), &mut rng);
        let store = ObjectiveStore::new();
        let stats = process_report(&gs, &report, &store);
        assert_eq!(stats.pages, 6);
        assert!(stats.blocks >= 8);
        assert_eq!(store.len(), stats.inserted);
        assert_eq!(
            stats.inserted + stats.updated + stats.unchanged + stats.store_errors,
            stats.detected,
            "every detected objective must be accounted for"
        );
        // Detection on this clean synthetic data should be near-perfect.
        assert!(stats.false_positives + stats.false_negatives <= 2, "stats {stats:?}");
        assert!(stats.detected >= 6);

        // Re-processing the same report must change nothing.
        let before = store.export_json();
        let again = process_report(&gs, &report, &store);
        assert_eq!(again.inserted, 0, "re-run must not insert: {again:?}");
        assert_eq!(again.unchanged, again.detected);
        assert_eq!(store.export_json(), before, "store must be bit-identical after re-run");

        // Same invariants hold for the log-structured ObjectiveDb sink.
        let db = gs_store::ObjectiveDb::ephemeral(gs_store::StoreConfig::default());
        let first = process_report(&gs, &report, &db);
        assert_eq!(db.len(), first.inserted);
        let before = db.reader().export_json();
        let second = process_report(&gs, &report, &db);
        assert_eq!(second.inserted, 0, "db re-run must not insert: {second:?}");
        assert_eq!(db.reader().export_json(), before);
    }

    #[test]
    fn parallel_processing_matches_sequential_totals() {
        let gs = tiny_system();
        let corpus = gs_data::deployment::generate_corpus(0.01, 3);
        let seq_store = ObjectiveStore::new();
        let seq = process_corpus(&gs, &corpus, &seq_store);
        let par_store = ObjectiveStore::new();
        let par = process_corpus_parallel(&gs, &corpus, &par_store, 4);
        assert_eq!(seq_store.len(), par_store.len());
        let total = |s: &[CompanyStats]| s.iter().map(|c| c.extracted_objectives).sum::<usize>();
        assert_eq!(total(&seq), total(&par));
        // Per-company aggregates identical.
        for s in &seq {
            let p = par.iter().find(|p| p.company == s.company).expect("company");
            assert_eq!(p.extracted_objectives, s.extracted_objectives);
            assert_eq!(p.documents, s.documents);
            assert_eq!(p.pages, s.pages);
        }
    }

    #[test]
    fn corpus_processing_aggregates_per_company() {
        let gs = tiny_system();
        let corpus = gs_data::deployment::generate_corpus(0.01, 3);
        let store = ObjectiveStore::new();
        let stats = process_corpus(&gs, &corpus, &store);
        assert_eq!(stats.len(), 14);
        let total_new: usize = stats.iter().map(|s| s.new_records).sum();
        assert_eq!(total_new, store.len(), "every new record lands exactly once");
        let total_extracted: usize = stats.iter().map(|s| s.extracted_objectives).sum();
        assert!(total_extracted >= store.len(), "dedupe can only shrink the store");

        let ann = Annotations::new();
        let _ = ann; // silence unused in non-test builds
    }
}
