//! # gs-pipeline
//!
//! GoalSpotter end to end (paper Figure 2 and §5): the development phase
//! trains the detection stage and the weakly supervised extraction service;
//! the production phase sweeps reports, detects objective blocks, extracts
//! their details, and fills the structured [`gs_store::ObjectiveStore`].
//! [`evaluate_extractor`] is the shared driver behind every comparison in
//! the benchmark harnesses. [`ingest_report_text`] is the raw-text front
//! door: it parses whole semi-structured reports with `gs-ingest` and
//! threads section provenance through detection and extraction into the
//! store.

#![warn(missing_docs)]

mod evaluate;
mod ingest;
mod produce;
mod serving;
mod system;

pub use evaluate::{evaluate_extractor, ApproachResult};
pub use ingest::{ingest_report_text, ingest_snapshot, IngestStats, IngestedObjective};
pub use produce::{
    process_corpus, process_corpus_parallel, process_report, CompanyStats, ReportStats,
};
pub use serving::{DbStoreHook, ExtractorEngine, QuantizedEngine};
pub use system::{GoalSpotter, GoalSpotterConfig};
