//! Service-level tests against a live `gs-serve` server with a fake
//! engine: endpoint contracts, concurrent batching, backpressure (503 +
//! Retry-After), deadlines (504), admission control, and graceful drain.
//! These run with no model so the serving layer is tested in isolation.

use gs_serve::{BatchConfig, Client, ExtractEngine, Extraction, Json, Server, ServerConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Deterministic fake: "extracts" the uppercased text, recording batches.
struct FakeEngine {
    delay: Duration,
    batch_sizes: Mutex<Vec<usize>>,
    calls: AtomicUsize,
}

impl FakeEngine {
    fn new(delay: Duration) -> Self {
        FakeEngine { delay, batch_sizes: Mutex::new(Vec::new()), calls: AtomicUsize::new(0) }
    }
}

impl ExtractEngine for FakeEngine {
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.batch_sizes.lock().unwrap().push(texts.len());
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        texts
            .iter()
            .map(|t| Extraction { fields: vec![("Upper".to_string(), t.to_uppercase())] })
            .collect()
    }
}

fn start(engine: Arc<FakeEngine>, batch: BatchConfig) -> Server {
    let config = ServerConfig {
        batch,
        read_timeout: Duration::from_secs(2),
        default_deadline: Duration::from_secs(5),
        ..Default::default()
    };
    Server::start(engine, config).expect("server starts")
}

fn client(server: &Server) -> Client {
    Client::connect(server.addr(), Duration::from_secs(10)).expect("connect")
}

#[test]
fn extract_endpoint_returns_fields() {
    let server = start(Arc::new(FakeEngine::new(Duration::ZERO)), BatchConfig::default());
    let mut c = client(&server);
    let resp = c.post_json("/v1/extract", r#"{"text": "reduce emissions"}"#).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let v = gs_serve::json::parse(&resp.body).unwrap();
    assert_eq!(
        v.get("fields").and_then(|f| f.get("Upper")).and_then(Json::as_str),
        Some("REDUCE EMISSIONS")
    );
    assert!(v.get("batch_size").and_then(Json::as_u64).unwrap() >= 1);
    server.shutdown();
}

#[test]
fn batch_endpoint_preserves_order() {
    let server = start(Arc::new(FakeEngine::new(Duration::ZERO)), BatchConfig::default());
    let mut c = client(&server);
    let resp = c.post_json("/v1/extract_batch", r#"{"texts": ["a", "b", "c"]}"#).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let v = gs_serve::json::parse(&resp.body).unwrap();
    let results = v.get("results").and_then(Json::as_arr).unwrap();
    let uppers: Vec<&str> = results
        .iter()
        .map(|r| r.get("fields").unwrap().get("Upper").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(uppers, vec!["A", "B", "C"]);
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_per_connection() {
    let server = start(Arc::new(FakeEngine::new(Duration::ZERO)), BatchConfig::default());
    let mut c = client(&server);
    for i in 0..20 {
        let resp = c.post_json("/v1/extract", &format!(r#"{{"text": "req {i}"}}"#)).unwrap();
        assert_eq!(resp.status, 200);
    }
    let health = c.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    server.shutdown();
}

#[test]
fn healthz_and_metrics_respond() {
    let server = start(Arc::new(FakeEngine::new(Duration::ZERO)), BatchConfig::default());
    let mut c = client(&server);
    let health = c.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let v = gs_serve::json::parse(&health.body).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    // Metrics endpoint renders even without an installed collector.
    let metrics = c.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    server.shutdown();
}

#[test]
fn malformed_requests_get_4xx_not_hangs() {
    let server = start(Arc::new(FakeEngine::new(Duration::ZERO)), BatchConfig::default());
    let mut c = client(&server);
    assert_eq!(c.post_json("/v1/extract", "not json").unwrap().status, 400);
    assert_eq!(c.post_json("/v1/extract", r#"{"wrong": 1}"#).unwrap().status, 400);
    assert_eq!(c.post_json("/v1/extract", r#"{"text": 5}"#).unwrap().status, 400);
    assert_eq!(
        c.post_json("/v1/extract", r#"{"text": "x", "deadline_ms": -2}"#).unwrap().status,
        400
    );
    assert_eq!(c.post_json("/v1/extract_batch", r#"{"texts": [1]}"#).unwrap().status, 400);
    assert_eq!(c.post_json("/nope", "{}").unwrap().status, 404);
    assert_eq!(c.get("/v1/extract").unwrap().status, 405);
    server.shutdown();
}

#[test]
fn empty_batch_is_ok_and_empty() {
    let server = start(Arc::new(FakeEngine::new(Duration::ZERO)), BatchConfig::default());
    let mut c = client(&server);
    let resp = c.post_json("/v1/extract_batch", r#"{"texts": []}"#).unwrap();
    assert_eq!(resp.status, 200);
    let v = gs_serve::json::parse(&resp.body).unwrap();
    assert_eq!(v.get("results").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
    server.shutdown();
}

#[test]
fn concurrent_requests_coalesce_into_micro_batches() {
    let engine = Arc::new(FakeEngine::new(Duration::from_millis(25)));
    let server = start(
        Arc::clone(&engine),
        BatchConfig { max_batch: 16, max_delay: Duration::from_millis(2), ..Default::default() },
    );
    let addr = server.addr();
    std::thread::scope(|scope| {
        for i in 0..12 {
            scope.spawn(move || {
                let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
                let resp =
                    c.post_json("/v1/extract", &format!(r#"{{"text": "text {i}"}}"#)).unwrap();
                assert_eq!(resp.status, 200);
            });
        }
    });
    let sizes = engine.batch_sizes.lock().unwrap().clone();
    assert_eq!(sizes.iter().sum::<usize>(), 12);
    assert!(sizes.iter().any(|&s| s > 1), "12 concurrent requests never coalesced: {sizes:?}");
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    // Slow engine + tiny queue: flood and expect a mix of 200s and 503s,
    // with every 503 carrying Retry-After and arriving fast.
    let engine = Arc::new(FakeEngine::new(Duration::from_millis(40)));
    let server = start(
        Arc::clone(&engine),
        BatchConfig { max_batch: 1, max_delay: Duration::ZERO, queue_capacity: 2, workers: 1 },
    );
    let addr = server.addr();
    let shed = Arc::new(AtomicUsize::new(0));
    let served = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let shed = Arc::clone(&shed);
            let served = Arc::clone(&served);
            scope.spawn(move || {
                let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
                for i in 0..8 {
                    let resp =
                        c.post_json("/v1/extract", &format!(r#"{{"text": "flood {i}"}}"#)).unwrap();
                    match resp.status {
                        200 => {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        503 => {
                            assert!(
                                resp.header("retry-after").is_some(),
                                "503 without Retry-After"
                            );
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected status {other}: {}", resp.body),
                    }
                }
            });
        }
    });
    assert_eq!(shed.load(Ordering::Relaxed) + served.load(Ordering::Relaxed), 32);
    assert!(shed.load(Ordering::Relaxed) > 0, "queue bound never shed");
    assert!(served.load(Ordering::Relaxed) > 0, "nothing served under load");
    server.shutdown();
}

#[test]
fn tight_deadline_times_out_with_504() {
    let engine = Arc::new(FakeEngine::new(Duration::from_millis(80)));
    let server = start(
        Arc::clone(&engine),
        BatchConfig { max_batch: 1, max_delay: Duration::ZERO, ..Default::default() },
    );
    let addr = server.addr();
    // Occupy the single worker...
    let busy = std::thread::spawn(move || {
        let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
        c.post_json("/v1/extract", r#"{"text": "slow"}"#).unwrap().status
    });
    std::thread::sleep(Duration::from_millis(15));
    // ...then submit with a deadline shorter than the in-flight batch.
    let mut c = client(&server);
    let resp = c.post_json("/v1/extract", r#"{"text": "urgent", "deadline_ms": 20}"#).unwrap();
    assert_eq!(resp.status, 504, "body: {}", resp.body);
    assert_eq!(busy.join().unwrap(), 200);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_inflight_work() {
    let engine = Arc::new(FakeEngine::new(Duration::from_millis(30)));
    let server = start(
        Arc::clone(&engine),
        BatchConfig { max_batch: 2, max_delay: Duration::from_millis(1), ..Default::default() },
    );
    let addr = server.addr();
    let workers: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
                c.post_json("/v1/extract", &format!(r#"{{"text": "drain {i}"}}"#)).unwrap().status
            })
        })
        .collect();
    // Let requests reach the queue, then shut down mid-flight.
    std::thread::sleep(Duration::from_millis(10));
    server.shutdown();
    for worker in workers {
        let status = worker.join().unwrap();
        // Drained requests answer 200; anything the server refused must be
        // an orderly 503, never a dropped connection.
        assert!(status == 200 || status == 503, "got {status}");
    }
}
