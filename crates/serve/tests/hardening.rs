//! Malformed-input hardening: every bad byte sequence a client can send
//! must come back as a 4xx (or a clean close), never panic a handler
//! thread or wedge the server. Regression coverage for the
//! `deadline_ms` overflow panic and for lenient Content-Length parsing,
//! plus a deterministic fuzz sweep over random request bodies and random
//! raw byte streams.

use gs_serve::{BatchConfig, Client, ExtractEngine, Extraction, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Zero-delay fake engine: uppercases the text.
struct EchoEngine;

impl ExtractEngine for EchoEngine {
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
        texts
            .iter()
            .map(|t| Extraction { fields: vec![("Upper".to_string(), t.to_uppercase())] })
            .collect()
    }
}

fn start() -> Server {
    let config = ServerConfig {
        batch: BatchConfig::default(),
        read_timeout: Duration::from_secs(2),
        default_deadline: Duration::from_secs(5),
        ..Default::default()
    };
    Server::start(Arc::new(EchoEngine), config).expect("server starts")
}

fn client(server: &Server) -> Client {
    Client::connect(server.addr(), Duration::from_secs(10)).expect("connect")
}

/// Writes raw bytes to a fresh connection and reads whatever comes back
/// until the server closes or the read times out. Returns the response
/// bytes (possibly empty — a clean close with no response is acceptable
/// for garbage that never parses as a request line).
fn send_raw(server: &Server, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.write_all(bytes).expect("write");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

fn status_of(raw: &[u8]) -> Option<u16> {
    let text = String::from_utf8_lossy(raw);
    text.split_whitespace().nth(1).and_then(|s| s.parse().ok())
}

#[test]
fn huge_deadline_ms_returns_400_not_a_worker_panic() {
    let server = start();
    let mut c = client(&server);
    // u64::MAX used to flow into `Instant::now() + Duration::from_millis(..)`
    // and panic the connection handler; it must be a 400 now.
    let resp = c
        .post_json("/v1/extract", r#"{"text": "x", "deadline_ms": 18446744073709551615}"#)
        .unwrap();
    assert_eq!(resp.status, 400, "body: {}", resp.body);
    // Same guard on the batch endpoint.
    let resp = c
        .post_json("/v1/extract_batch", r#"{"texts": ["x"], "deadline_ms": 99999999999999}"#)
        .unwrap();
    assert_eq!(resp.status, 400, "body: {}", resp.body);
    // The server is still healthy: the boundary value is accepted and a
    // plain request round-trips on the same connection.
    let resp = c.post_json("/v1/extract", r#"{"text": "x", "deadline_ms": 3600000}"#).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    server.shutdown();
}

#[test]
fn content_length_must_be_digits_only() {
    let server = start();
    // `usize::from_str` accepts "+11"; RFC 9110 does not.
    let raw = send_raw(
        &server,
        b"POST /v1/extract HTTP/1.1\r\nhost: t\r\ncontent-length: +12\r\n\r\n{\"text\":\"x\"}",
    );
    assert_eq!(status_of(&raw), Some(400), "raw: {}", String::from_utf8_lossy(&raw));
    let raw = send_raw(
        &server,
        b"POST /v1/extract HTTP/1.1\r\nhost: t\r\ncontent-length: 1 2\r\n\r\n{\"text\":\"x\"}",
    );
    assert_eq!(status_of(&raw), Some(400), "raw: {}", String::from_utf8_lossy(&raw));
    // Sanity: the straight-laced version of the same request still works.
    let mut c = client(&server);
    assert_eq!(c.post_json("/v1/extract", r#"{"text":"x"}"#).unwrap().status, 200);
    server.shutdown();
}

#[test]
fn non_utf8_body_returns_400() {
    let server = start();
    let mut req = b"POST /v1/extract HTTP/1.1\r\nhost: t\r\ncontent-length: 4\r\n\r\n".to_vec();
    req.extend_from_slice(&[0xff, 0xfe, 0x80, 0x81]);
    let raw = send_raw(&server, &req);
    assert_eq!(status_of(&raw), Some(400), "raw: {}", String::from_utf8_lossy(&raw));
    server.shutdown();
}

/// Splitmix64: the deterministic generator behind both fuzz loops.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn fuzzed_json_bodies_never_panic_the_server() {
    let server = start();
    let mut rng = Lcg(0xC0FFEE);
    // Characters chosen to exercise the JSON parser's branches.
    let alphabet: Vec<char> =
        "{}[]\",:0123456789.eE+-truefalsnl\\/ deadline_ms texts".chars().collect();
    for _ in 0..64 {
        let len = (rng.next() % 48) as usize;
        let body: String =
            (0..len).map(|_| alphabet[(rng.next() as usize) % alphabet.len()]).collect();
        // Every framed-but-garbage body must produce a response; handler
        // panics surface here as an unexpected EOF from post_json.
        let mut c = client(&server);
        let resp = c.post_json("/v1/extract", &body).unwrap_or_else(|e| {
            panic!("no response for body {body:?}: {e}");
        });
        assert!(
            resp.status == 200 || (400..=599).contains(&resp.status),
            "status {} for body {body:?}",
            resp.status
        );
    }
    // The server survived the sweep.
    let mut c = client(&server);
    assert_eq!(c.get("/healthz").unwrap().status, 200);
    server.shutdown();
}

#[test]
fn fuzzed_raw_streams_never_wedge_the_server() {
    let server = start();
    let mut rng = Lcg(0xBADF00D);
    for round in 0..48 {
        let len = (rng.next() % 120) as usize;
        let mut bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xff) as u8).collect();
        // Half the rounds start with a plausible request line so header
        // and body parsing get fuzzed too, not just the request line.
        if round % 2 == 0 {
            let mut framed = b"POST /v1/extract HTTP/1.1\r\n".to_vec();
            framed.extend_from_slice(&bytes);
            bytes = framed;
        }
        // Any response (or a clean close) is fine; the invariant is that
        // the server keeps serving afterwards.
        let _ = send_raw(&server, &bytes);
    }
    let mut c = client(&server);
    assert_eq!(c.get("/healthz").unwrap().status, 200);
    assert_eq!(c.post_json("/v1/extract", r#"{"text":"still alive"}"#).unwrap().status, 200);
    server.shutdown();
}
