//! A deliberately small HTTP/1.1 implementation: enough to parse the
//! service's requests off a `TcpStream` and write conforming responses,
//! with hard limits on header and body sizes so a misbehaving client
//! cannot balloon memory.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method (uppercased by the client per RFC; matched exactly).
    pub method: String,
    /// Request target path (query string retained, not interpreted).
    pub path: String,
    /// Lowercased header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
    /// Whether the connection should close after this exchange.
    pub close: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if valid.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseOutcome {
    /// A complete request was read.
    Ok(Request),
    /// The peer closed the connection before sending anything (normal for
    /// keep-alive connections going away).
    Closed,
    /// The read timed out waiting for (more of) a request.
    TimedOut,
    /// The bytes on the wire were not valid HTTP; the caller should send
    /// the given status and close.
    Malformed(Status),
    /// Transport error; close without a response.
    Io(io::Error),
}

/// Reads one request from `reader` (a buffered stream), honoring
/// `max_body_bytes`.
pub fn read_request<R: BufRead>(reader: &mut R, max_body_bytes: usize) -> ParseOutcome {
    let mut head = Vec::with_capacity(256);
    // Read until CRLFCRLF (tolerating bare LF separators).
    loop {
        let mut line = Vec::with_capacity(64);
        match read_line(reader, &mut line, MAX_HEAD_BYTES) {
            Ok(0) if head.is_empty() && line.is_empty() => return ParseOutcome::Closed,
            Ok(0) => return ParseOutcome::Malformed(Status::BadRequest),
            Ok(_) => {}
            Err(e) => return classify_io(head.is_empty(), e),
        }
        if line.is_empty() {
            if head.is_empty() {
                // Tolerate leading blank lines between keep-alive requests.
                continue;
            }
            break;
        }
        head.extend_from_slice(&line);
        head.push(b'\n');
        if head.len() > MAX_HEAD_BYTES {
            return ParseOutcome::Malformed(Status::HeaderFieldsTooLarge);
        }
    }

    let head = match std::str::from_utf8(&head) {
        Ok(h) => h,
        Err(_) => return ParseOutcome::Malformed(Status::BadRequest),
    };
    let mut lines = head.lines();
    let request_line = match lines.next() {
        Some(l) => l,
        None => return ParseOutcome::Malformed(Status::BadRequest),
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return ParseOutcome::Malformed(Status::BadRequest),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return ParseOutcome::Malformed(Status::VersionNotSupported);
    }

    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return ParseOutcome::Malformed(Status::BadRequest);
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
        .unwrap_or_default();
    let close =
        connection.contains("close") || (version == "HTTP/1.0" && connection != "keep-alive");

    if headers.iter().any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        // Chunked bodies are out of scope for this service.
        return ParseOutcome::Malformed(Status::NotImplemented);
    }

    let mut body = Vec::new();
    if let Some((_, v)) = headers.iter().find(|(k, _)| k == "content-length") {
        // RFC 9110 Content-Length is 1*DIGIT; `usize::from_str` alone would
        // also accept a leading "+".
        if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
            return ParseOutcome::Malformed(Status::BadRequest);
        }
        let len: usize = match v.parse() {
            Ok(n) => n,
            Err(_) => return ParseOutcome::Malformed(Status::BadRequest),
        };
        if len > max_body_bytes {
            return ParseOutcome::Malformed(Status::PayloadTooLarge);
        }
        body.resize(len, 0);
        if let Err(e) = reader.read_exact(&mut body) {
            return classify_io(false, e);
        }
    }

    ParseOutcome::Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
        close,
    })
}

/// Reads one CRLF- (or LF-) terminated line into `out` (terminator
/// stripped), returning bytes consumed. `Ok(0)` means clean EOF.
fn read_line<R: BufRead>(reader: &mut R, out: &mut Vec<u8>, limit: usize) -> io::Result<usize> {
    let mut consumed = 0usize;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(consumed); // EOF
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                out.extend_from_slice(&available[..nl]);
                reader.consume(nl + 1);
                consumed += nl + 1;
                if out.last() == Some(&b'\r') {
                    out.pop();
                }
                return Ok(consumed);
            }
            None => {
                let n = available.len();
                out.extend_from_slice(available);
                reader.consume(n);
                consumed += n;
                if out.len() > limit {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
                }
            }
        }
    }
}

fn classify_io(at_start: bool, e: io::Error) -> ParseOutcome {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ParseOutcome::TimedOut,
        io::ErrorKind::UnexpectedEof if at_start => ParseOutcome::Closed,
        _ => ParseOutcome::Io(e),
    }
}

/// Response status codes used by the service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// 200
    Ok,
    /// 400
    BadRequest,
    /// 404
    NotFound,
    /// 405
    MethodNotAllowed,
    /// 413
    PayloadTooLarge,
    /// 431
    HeaderFieldsTooLarge,
    /// 500
    InternalError,
    /// 501
    NotImplemented,
    /// 503
    ServiceUnavailable,
    /// 504
    GatewayTimeout,
    /// 505
    VersionNotSupported,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::MethodNotAllowed => 405,
            Status::PayloadTooLarge => 413,
            Status::HeaderFieldsTooLarge => 431,
            Status::InternalError => 500,
            Status::NotImplemented => 501,
            Status::ServiceUnavailable => 503,
            Status::GatewayTimeout => 504,
            Status::VersionNotSupported => 505,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::MethodNotAllowed => "Method Not Allowed",
            Status::PayloadTooLarge => "Payload Too Large",
            Status::HeaderFieldsTooLarge => "Request Header Fields Too Large",
            Status::InternalError => "Internal Server Error",
            Status::NotImplemented => "Not Implemented",
            Status::ServiceUnavailable => "Service Unavailable",
            Status::GatewayTimeout => "Gateway Timeout",
            Status::VersionNotSupported => "HTTP Version Not Supported",
        }
    }
}

/// Decodes a percent-encoded query-string component (`%41` -> `A`,
/// `+` -> space). Returns `None` on truncated or non-hex escapes and on
/// byte sequences that are not valid UTF-8.
pub fn percent_decode(raw: &str) -> Option<String> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hex = std::str::from_utf8(hex).ok()?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// A response ready to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status line code.
    pub status: Status,
    /// Extra headers (Content-Type/Length and Connection are handled by
    /// [`write_response`]).
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
    /// Content type of the body.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: Status, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: Status, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }
}

/// Serializes and writes a response; `close` controls the Connection
/// header.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    close: bool,
) -> io::Result<()> {
    let mut head = String::with_capacity(128);
    head.push_str("HTTP/1.1 ");
    head.push_str(&response.status.code().to_string());
    head.push(' ');
    head.push_str(response.status.reason());
    head.push_str("\r\n");
    head.push_str("content-type: ");
    head.push_str(response.content_type);
    head.push_str("\r\n");
    head.push_str("content-length: ");
    head.push_str(&response.body.len().to_string());
    head.push_str("\r\n");
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if close { "connection: close\r\n" } else { "connection: keep-alive\r\n" });
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> ParseOutcome {
        read_request(&mut BufReader::new(bytes), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/extract HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        let ParseOutcome::Ok(req) = parse(raw) else { panic!("expected Ok") };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/extract");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body_utf8(), Some("hello world"));
        assert!(!req.close);
    }

    #[test]
    fn parses_get_without_body_and_lf_only_lines() {
        let raw = b"GET /healthz HTTP/1.1\nHost: x\n\n";
        let ParseOutcome::Ok(req) = parse(raw) else { panic!("expected Ok") };
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_close_and_http10_semantics() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let ParseOutcome::Ok(req) = parse(raw) else { panic!() };
        assert!(req.close);
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        let ParseOutcome::Ok(req) = parse(raw) else { panic!() };
        assert!(req.close);
        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let ParseOutcome::Ok(req) = parse(raw) else { panic!() };
        assert!(!req.close);
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        let ParseOutcome::Malformed(s) = parse(raw) else { panic!("expected Malformed") };
        assert_eq!(s, Status::PayloadTooLarge);
    }

    #[test]
    fn garbage_and_eof_are_classified() {
        assert!(matches!(parse(b""), ParseOutcome::Closed));
        assert!(matches!(parse(b"NONSENSE\r\n\r\n"), ParseOutcome::Malformed(Status::BadRequest)));
        assert!(matches!(
            parse(b"GET / HTTP/2.0\r\n\r\n"),
            ParseOutcome::Malformed(Status::VersionNotSupported)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            ParseOutcome::Malformed(Status::NotImplemented)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            ParseOutcome::Malformed(Status::BadRequest)
        ));
    }

    #[test]
    fn truncated_body_is_io_error() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        assert!(matches!(parse(raw), ParseOutcome::Io(_)));
    }

    #[test]
    fn response_serializes_with_headers() {
        let mut out = Vec::new();
        let resp = Response::json(Status::ServiceUnavailable, "{\"error\":\"queue full\"}".into())
            .with_header("retry-after", "1".to_string());
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("content-length: 22\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }

    #[test]
    fn percent_decoding_handles_escapes_plus_and_errors() {
        assert_eq!(percent_decode("Acme+Corp").as_deref(), Some("Acme Corp"));
        assert_eq!(percent_decode("Acme%20%26%20Co").as_deref(), Some("Acme & Co"));
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert_eq!(percent_decode("caf%C3%A9").as_deref(), Some("café"));
        assert_eq!(percent_decode("bad%2").as_deref(), None, "truncated escape");
        assert_eq!(percent_decode("bad%zz").as_deref(), None, "non-hex escape");
        assert_eq!(percent_decode("bad%ff").as_deref(), None, "invalid UTF-8");
    }

    #[test]
    fn keep_alive_connection_header() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::text(Status::Ok, "hi".into()), false).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("connection: keep-alive\r\n"));
    }

    #[test]
    fn two_requests_on_one_stream() {
        let raw: Vec<u8> = [
            &b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nab"[..],
            &b"GET /b HTTP/1.1\r\n\r\n"[..],
        ]
        .concat();
        let mut reader = BufReader::new(&raw[..]);
        let ParseOutcome::Ok(first) = read_request(&mut reader, 1024) else { panic!() };
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"ab");
        let ParseOutcome::Ok(second) = read_request(&mut reader, 1024) else { panic!() };
        assert_eq!(second.path, "/b");
        assert!(matches!(read_request(&mut reader, 1024), ParseOutcome::Closed));
    }
}
