//! # gs-serve
//!
//! The request-serving surface of GoalSpotter: a dependency-free (std +
//! gs-obs) HTTP/1.1 extraction service with **dynamic micro-batching**,
//! **backpressure**, and **admission control**.
//!
//! The paper deploys the weakly supervised extractor inside a live system
//! that fills a structured database on demand; this crate is that serving
//! layer. Requests to `POST /v1/extract` land in a bounded queue, a
//! scheduler coalesces them into micro-batches (up to `max_batch` items,
//! waiting at most `max_delay` once the first item arrives), and a worker
//! pool runs one batched model forward per batch — amortizing encoder
//! costs across concurrent callers.
//!
//! ## Endpoints
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/v1/extract` | POST | `{"text": "...", "deadline_ms"?: n}` → extracted fields |
//! | `/v1/extract_batch` | POST | `{"texts": [...]}` → one result per text |
//! | `/v1/ingest` | POST | `{"company": "...", "text": "<raw report>"}` → provenance-tagged extractions (needs an [`IngestHook`]) |
//! | `/healthz` | GET | liveness + queue depth |
//! | `/metrics` | GET | Prometheus text rendered from the gs-obs registry |
//! | `/debug/traces` | GET | flight-recorder dump; `?id=` looks up one trace |
//! | `/debug/prof` | GET | live op-profiler table; `?format=collapsed` for flamegraphs |
//!
//! ## Tracing and SLOs
//!
//! Every admitted extraction request is minted a **trace id** that rides
//! through the batcher with each queued item, comes back in the response
//! (`trace_id` field and `X-Trace-Id` header), and lands in a bounded
//! in-memory [flight recorder](trace::FlightRecorder) queryable via
//! `GET /debug/traces?id=...` — queue wait, batch size, forward time, and
//! end-to-end latency per request. An [SLO watchdog](slo::SloTracker)
//! keeps sliding-window p99 latency, error-rate, and shed-rate burn rates
//! (short + long window), publishes them as `slo.*` gauges in `/metrics`,
//! and emits `slo_alert` / `slo_resolve` events on threshold crossings.
//!
//! ## Robustness semantics
//!
//! - **Load shedding:** when the bounded queue is full, requests get HTTP
//!   503 with `Retry-After` instead of unbounded queueing latency.
//! - **Deadlines:** every request carries a budget (`deadline_ms` or the
//!   server default); items whose deadline passes while queued are
//!   dropped at dispatch and answered with 504.
//! - **Admission control:** beyond `max_connections` concurrent
//!   connections, new connections are turned away with 503.
//! - **Graceful shutdown:** the server stops accepting, answers requests
//!   already on open connections, and drains every queued item through
//!   the workers before [`Server::shutdown`] returns.
//!
//! ```no_run
//! use gs_serve::{ExtractEngine, Extraction, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! struct Upper;
//! impl ExtractEngine for Upper {
//!     fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
//!         texts
//!             .iter()
//!             .map(|t| Extraction { fields: vec![("Upper".into(), t.to_uppercase())] })
//!             .collect()
//!     }
//! }
//!
//! let server = Server::start(Arc::new(Upper), ServerConfig::default()).unwrap();
//! println!("listening on http://{}", server.addr());
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics_text;
pub mod server;
pub mod slo;
pub mod store_hook;
pub mod trace;

pub use batcher::{BatchConfig, Batcher, ExtractEngine, Extraction, ItemResult, ShedReason};
pub use client::{Client, ClientResponse};
pub use http::{Request, Response, Status};
pub use json::Json;
pub use server::{Server, ServerConfig};
pub use slo::{SloConfig, SloDimension, SloTracker, WindowStats};
pub use store_hook::{IngestHook, ObjectiveStoreHook};
pub use trace::{mint_trace_id, FlightRecorder, Trace};
