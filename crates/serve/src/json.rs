//! Minimal JSON: a value tree, a strict recursive-descent parser, and a
//! writer following the same hand-rolled-but-strict pattern as
//! `gs-obs::event` (gs-serve is std-only; consumers can parse responses
//! with any conforming JSON library).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value under `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, when this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_f64(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to compact strict JSON (non-finite numbers become `null`);
/// `to_string()` comes with it.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Appends a JSON string literal with escaping (same escapes as the
/// gs-obs event writer).
fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an f64 as a JSON number (`null` when non-finite).
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Short description of what went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Nesting limit: service request bodies are shallow; a bound keeps the
/// recursive parser safe from stack-overflow payloads.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &'static str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after key")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is a &str, so byte runs are valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let first = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: require a low surrogate pair.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("lone surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("lone surrogate"));
                    }
                    self.pos += 1;
                    let second = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&second) {
                        return Err(self.err("invalid surrogate pair"));
                    }
                    let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    char::from_u32(combined).ok_or_else(|| self.err("invalid code point"))?
                } else if (0xDC00..0xE000).contains(&first) {
                    return Err(self.err("lone surrogate"));
                } else {
                    char::from_u32(first).ok_or_else(|| self.err("invalid code point"))?
                };
                out.push(c);
            }
            _ => return Err(self.err("invalid escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8"))?;
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_simple_documents() {
        for doc in [
            "null",
            "true",
            "false",
            "0",
            "-1.5",
            "\"hi\"",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = parse(doc).expect(doc);
            assert_eq!(parse(&v.to_string()).expect("reparse"), v, "doc {doc}");
        }
    }

    #[test]
    fn parses_nested_request_shape() {
        let v = parse(r#"{ "texts": ["a", "b"], "deadline_ms": 250 }"#).expect("parse");
        let texts: Vec<&str> =
            v.get("texts").unwrap().as_arr().unwrap().iter().filter_map(Json::as_str).collect();
        assert_eq!(texts, vec!["a", "b"]);
        assert_eq!(v.get("deadline_ms").unwrap().as_u64(), Some(250));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote\" back\\ nl\n tab\t unicode\u{1F600} ctrl\u{0001}";
        let json = Json::Str(original.to_string()).to_string();
        assert_eq!(parse(&json).unwrap().as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in
            ["", "{", "[1,]", "{\"a\":}", "01", "1.", "1e", "nul", "\"unterminated", "[1] extra"]
        {
            assert!(parse(doc).is_err(), "doc {doc:?} should fail");
        }
    }

    #[test]
    fn rejects_unbounded_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let shallow = "[".repeat(10) + &"]".repeat(10);
        assert!(parse(&shallow).is_ok());
    }

    #[test]
    fn numbers_parse_and_write() {
        assert_eq!(parse("2.5e2").unwrap().as_f64(), Some(250.0));
        assert_eq!(parse("-0").unwrap().as_f64(), Some(-0.0));
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(3.0).to_string(), "3");
    }

    #[test]
    fn u64_extraction_requires_integers() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn objects_write_sorted_keys() {
        let v = Json::obj(vec![("b", 1u64.into()), ("a", 2u64.into())]);
        assert_eq!(v.to_string(), "{\"a\":2,\"b\":1}");
    }
}
