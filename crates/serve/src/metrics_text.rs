//! Renders a gs-obs [`MetricsSnapshot`] in the Prometheus text exposition
//! format, so the `/metrics` endpoint can be scraped by standard tooling.
//!
//! Compliance details the format spec requires and scrapers check:
//!
//! - metric names are sanitized onto `[a-zA-Z_][a-zA-Z0-9_]*`
//!   (`serve.queue.depth` becomes `serve_queue_depth`);
//! - every family gets `# HELP` (escaped: `\\` and `\n`) and `# TYPE`
//!   lines before its samples;
//! - label values are escaped (`\\`, `\"`, `\n`);
//! - histograms are exported as summaries: `_count`, `_sum`, and
//!   estimated `{quantile="..."}` series;
//! - non-finite floats are spelled `NaN` / `+Inf` / `-Inf`.

use gs_obs::MetricsSnapshot;
use std::fmt::Write as _;

/// Quantiles exported per histogram.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

/// Renders the snapshot as Prometheus text.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    for (name, value) in &snapshot.counters {
        let fam = sanitize(name);
        let _ = writeln!(out, "# HELP {fam} {}", help(name, "counter"));
        let _ = writeln!(out, "# TYPE {fam} counter");
        let _ = writeln!(out, "{fam} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let fam = sanitize(name);
        let _ = writeln!(out, "# HELP {fam} {}", help(name, "gauge"));
        let _ = writeln!(out, "# TYPE {fam} gauge");
        let _ = writeln!(out, "{fam} {}", num(*value));
    }
    for (name, hist) in &snapshot.histograms {
        let fam = sanitize(name);
        let _ = writeln!(out, "# HELP {fam} {}", help(name, "summary"));
        let _ = writeln!(out, "# TYPE {fam} summary");
        for (q, label) in QUANTILES {
            let _ = writeln!(
                out,
                "{fam}{{quantile=\"{}\"}} {}",
                escape_label(label),
                num(hist.quantile(q))
            );
        }
        let _ = writeln!(out, "{fam}_sum {}", num(hist.sum));
        let _ = writeln!(out, "{fam}_count {}", hist.total);
    }
    out
}

/// The HELP text for a family: the original gs-obs metric name (which may
/// contain characters the sanitized family name lost), escaped per spec.
fn help(original: &str, kind: &str) -> String {
    escape_help(&format!("gs-obs {kind} {original}"))
}

/// Maps a gs-obs metric name onto the Prometheus name charset.
fn sanitize(name: &str) -> String {
    let mut out: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a `# HELP` text: backslash and newline.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote, and newline.
fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Prometheus floats: plain decimal, `NaN`/`+Inf`/`-Inf` spelled out.
fn num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_obs::Registry;

    #[test]
    fn renders_all_metric_kinds() {
        let registry = Registry::new();
        registry.counter("serve.requests.extract").add(3);
        registry.gauge("serve.queue.depth").set(2.0);
        let hist = registry.histogram_with("serve.latency.extract", &[0.001, 0.01, 0.1]);
        hist.record(0.004);
        hist.record(0.05);
        let text = render(&registry.snapshot());
        assert!(text.contains("# TYPE serve_requests_extract counter"));
        assert!(text.contains("serve_requests_extract 3"));
        assert!(text.contains("serve_queue_depth 2"));
        assert!(text.contains("serve_latency_extract{quantile=\"0.5\"}"));
        assert!(text.contains("serve_latency_extract_count 2"));
        assert!(text.contains("serve_latency_extract_sum 0.054"));
    }

    #[test]
    fn every_family_has_help_and_type_lines() {
        let registry = Registry::new();
        registry.counter("a.count").add(1);
        registry.gauge("b.gauge").set(1.0);
        registry.histogram("c.hist").record(0.5);
        let text = render(&registry.snapshot());
        for fam in ["a_count", "b_gauge", "c_hist"] {
            assert!(text.contains(&format!("# HELP {fam} ")), "no HELP for {fam}: {text}");
            assert!(text.contains(&format!("# TYPE {fam} ")), "no TYPE for {fam}: {text}");
            // HELP precedes TYPE, which precedes the first sample.
            let help_at = text.find(&format!("# HELP {fam}")).unwrap();
            let type_at = text.find(&format!("# TYPE {fam}")).unwrap();
            let sample_at = text.find(&format!("\n{fam}")).unwrap();
            assert!(help_at < type_at && type_at < sample_at, "order wrong for {fam}");
        }
        // HELP keeps the original dotted name for traceability.
        assert!(text.contains("# HELP a_count gs-obs counter a.count"));
    }

    #[test]
    fn sanitizes_awkward_names() {
        assert_eq!(sanitize("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize("9lives"), "_9lives");
    }

    #[test]
    fn escapes_help_and_label_values() {
        assert_eq!(escape_help("back\\slash\nnewline"), "back\\\\slash\\nnewline");
        assert_eq!(escape_label("say \"hi\"\\\n"), "say \\\"hi\\\"\\\\\\n");
        // Escaping is idempotent-shaped: no raw quote, backslash, or
        // newline survives unescaped in a rendered label value.
        let escaped = escape_label("a\"b\\c\nd");
        assert!(!escaped.contains('\n'));
        assert_eq!(escaped, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn empty_histograms_render_infinities_spelled_out() {
        let registry = Registry::new();
        let _ = registry.histogram("empty.hist");
        let text = render(&registry.snapshot());
        // min/max start at +/-inf but quantile of empty is 0; sum is 0.
        assert!(text.contains("empty_hist_count 0"));
        assert!(!text.contains("inf"), "lowercase inf leaked: {text}");
    }
}
