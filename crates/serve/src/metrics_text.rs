//! Renders a gs-obs [`MetricsSnapshot`] in the Prometheus text exposition
//! format, so the `/metrics` endpoint can be scraped by standard tooling.
//!
//! Metric names are sanitized (`serve.queue.depth` becomes
//! `serve_queue_depth`); histograms are exported as `_count`, `_sum`, and
//! estimated `{quantile="..."}` series.

use gs_obs::MetricsSnapshot;
use std::fmt::Write as _;

/// Quantiles exported per histogram.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

/// Renders the snapshot as Prometheus text.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    for (name, value) in &snapshot.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", num(*value));
    }
    for (name, hist) in &snapshot.histograms {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} summary");
        for (q, label) in QUANTILES {
            let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", num(hist.quantile(q)));
        }
        let _ = writeln!(out, "{name}_sum {}", num(hist.sum));
        let _ = writeln!(out, "{name}_count {}", hist.total);
    }
    out
}

/// Maps a gs-obs metric name onto the Prometheus name charset.
fn sanitize(name: &str) -> String {
    let mut out: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Prometheus floats: plain decimal, `NaN`/`+Inf`/`-Inf` spelled out.
fn num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_obs::Registry;

    #[test]
    fn renders_all_metric_kinds() {
        let registry = Registry::new();
        registry.counter("serve.requests.extract").add(3);
        registry.gauge("serve.queue.depth").set(2.0);
        let hist = registry.histogram_with("serve.latency.extract", &[0.001, 0.01, 0.1]);
        hist.record(0.004);
        hist.record(0.05);
        let text = render(&registry.snapshot());
        assert!(text.contains("# TYPE serve_requests_extract counter"));
        assert!(text.contains("serve_requests_extract 3"));
        assert!(text.contains("serve_queue_depth 2"));
        assert!(text.contains("serve_latency_extract{quantile=\"0.5\"}"));
        assert!(text.contains("serve_latency_extract_count 2"));
        assert!(text.contains("serve_latency_extract_sum 0.054"));
    }

    #[test]
    fn sanitizes_awkward_names() {
        assert_eq!(sanitize("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize("9lives"), "_9lives");
    }

    #[test]
    fn empty_histograms_render_infinities_spelled_out() {
        let registry = Registry::new();
        let _ = registry.histogram("empty.hist");
        let text = render(&registry.snapshot());
        // min/max start at +/-inf but quantile of empty is 0; sum is 0.
        assert!(text.contains("empty_hist_count 0"));
        assert!(!text.contains("inf"), "lowercase inf leaked: {text}");
    }
}
