//! The serving layer's bridge to an objective store.
//!
//! gs-serve is deliberately std-only and does not depend on gs-store; the
//! server talks to persistence through this trait instead. The production
//! implementation (in `gs-pipeline`) upserts into the log-structured
//! `ObjectiveDb` and answers company queries from its lock-free reader
//! path, so `GET /v1/objectives` stays fast under write load.

use crate::json::Json;

/// Store operations the server needs. Implementations must be cheap to
/// call concurrently: `record_extraction` runs on extraction handler
/// threads and `company_records` on read handler threads.
pub trait ObjectiveStoreHook: Send + Sync + 'static {
    /// Upserts one served extraction under `(company, objective)`. Returns
    /// a short outcome label for metrics (`"inserted"`, `"updated"`,
    /// `"unchanged"`) or an error message if the store rejected the write.
    fn record_extraction(
        &self,
        company: &str,
        document: &str,
        objective: &str,
        fields: &[(String, String)],
    ) -> Result<&'static str, String>;

    /// All stored records of one company, each rendered as a JSON object,
    /// in stable first-insert order.
    fn company_records(&self, company: &str) -> Vec<Json>;

    /// Live record count across the store.
    fn record_count(&self) -> usize;
}

/// Whole-report ingestion behind `POST /v1/ingest`.
///
/// Like [`ObjectiveStoreHook`], this keeps gs-serve free of pipeline and
/// store dependencies: the production implementation (in `gs-pipeline`)
/// parses the raw report text with `gs-ingest`, runs detection and
/// extraction over its sentence units, and upserts provenance-tagged
/// records. Ingestion runs synchronously on the handler thread — callers
/// should budget a generous `deadline_ms` for large reports.
pub trait IngestHook: Send + Sync + 'static {
    /// Ingests one raw report text for `company`, recording extractions
    /// under `document`. Returns the response body fields: ingestion
    /// stats plus every detected objective with its section path and
    /// byte range. `Err` messages become HTTP 500 bodies.
    fn ingest_report(&self, company: &str, document: &str, text: &str) -> Result<Json, String>;
}
