//! The serving layer's bridge to an objective store.
//!
//! gs-serve is deliberately std-only and does not depend on gs-store; the
//! server talks to persistence through this trait instead. The production
//! implementation (in `gs-pipeline`) upserts into the log-structured
//! `ObjectiveDb` and answers company queries from its lock-free reader
//! path, so `GET /v1/objectives` stays fast under write load.

use crate::json::Json;

/// Store operations the server needs. Implementations must be cheap to
/// call concurrently: `record_extraction` runs on extraction handler
/// threads and `company_records` on read handler threads.
pub trait ObjectiveStoreHook: Send + Sync + 'static {
    /// Upserts one served extraction under `(company, objective)`. Returns
    /// a short outcome label for metrics (`"inserted"`, `"updated"`,
    /// `"unchanged"`) or an error message if the store rejected the write.
    fn record_extraction(
        &self,
        company: &str,
        document: &str,
        objective: &str,
        fields: &[(String, String)],
    ) -> Result<&'static str, String>;

    /// All stored records of one company, each rendered as a JSON object,
    /// in stable first-insert order.
    fn company_records(&self, company: &str) -> Vec<Json>;

    /// Live record count across the store.
    fn record_count(&self) -> usize;
}
