//! A minimal blocking HTTP/1.1 client speaking just enough of the
//! protocol for the service's own tests and load generators: keep-alive
//! connection reuse, content-length bodies, no redirects, no TLS.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One HTTP response as seen by the client.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Lowercased header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to one server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
}

impl Client {
    /// Connects with a read/write timeout.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, addr })
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends a GET and reads the response.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        let head = format!("GET {path} HTTP/1.1\r\nhost: gs-serve\r\n\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends a POST with a JSON body and reads the response.
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nhost: gs-serve\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;

        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value
                        .parse()
                        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad length"))?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        Ok(ClientResponse { status, headers, body })
    }
}
