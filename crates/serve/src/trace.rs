//! Request-scoped tracing: every admitted request gets a trace id that
//! follows it through the batcher and model forward, comes back in the
//! response (JSON field and `X-Trace-Id` header), and lands in a bounded
//! in-memory flight recorder dumpable via `GET /debug/traces`.
//!
//! The recorder is a fixed-capacity ring: recording is O(1), memory is
//! bounded no matter how long the server runs, and a dump shows the most
//! recent requests — exactly what post-incident "what did the last N
//! requests look like" debugging needs. It is process-local and lost on
//! restart by design; durable request logs belong to the obs JSONL sink.

use crate::json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Process-unique trace-id generator state: a random-ish 32-bit epoch
/// drawn once from the clock, plus a monotonically increasing counter.
static TRACE_EPOCH: OnceLock<u64> = OnceLock::new();
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Mints a new 16-hex-digit trace id, unique within the process and
/// unlikely to collide across restarts (the top half mixes in the process
/// start time).
pub fn mint_trace_id() -> String {
    let epoch = *TRACE_EPOCH.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x9e37_79b9);
        // SplitMix-style scramble so consecutive restarts differ broadly.
        let mut z = nanos.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    });
    let seq = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{:08x}{:08x}", (epoch as u32), (seq as u32))
}

/// One completed (or shed) request, as remembered by the flight recorder.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The request's trace id.
    pub id: String,
    /// Which endpoint served it (`extract`, `extract_batch`).
    pub endpoint: &'static str,
    /// HTTP status returned.
    pub status: u16,
    /// Number of texts in the request.
    pub items: usize,
    /// Time the request's first item spent queued before dispatch.
    pub queue_wait: Duration,
    /// Size of the micro-batch the request was served in (0 when shed).
    pub batch_size: usize,
    /// Model forward time of the serving batch (zero when shed).
    pub forward: Duration,
    /// End-to-end handler time.
    pub total: Duration,
}

impl Trace {
    /// Renders the trace as a JSON object (for `/debug/traces`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("trace_id", Json::Str(self.id.clone())),
            ("endpoint", Json::Str(self.endpoint.to_string())),
            ("status", (self.status as u64).into()),
            ("items", self.items.into()),
            ("queue_us", (self.queue_wait.as_micros() as u64).into()),
            ("batch_size", self.batch_size.into()),
            ("forward_us", (self.forward.as_micros() as u64).into()),
            ("total_us", (self.total.as_micros() as u64).into()),
        ])
    }
}

/// Bounded in-memory ring of recent [`Trace`]s.
pub struct FlightRecorder {
    ring: Mutex<VecDeque<Trace>>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder remembering the last `capacity` traces (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { ring: Mutex::new(VecDeque::new()), capacity: capacity.max(1) }
    }

    /// Records one trace, evicting the oldest when full.
    pub fn record(&self, trace: Trace) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The recorded traces, oldest first.
    pub fn snapshot(&self) -> Vec<Trace> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect()
    }

    /// Looks up a trace by id (most recent match wins).
    pub fn find(&self, id: &str) -> Option<Trace> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().rev().find(|t| t.id == id).cloned()
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the recorder holds no traces yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: &str) -> Trace {
        Trace {
            id: id.to_string(),
            endpoint: "extract",
            status: 200,
            items: 1,
            queue_wait: Duration::from_micros(10),
            batch_size: 2,
            forward: Duration::from_micros(500),
            total: Duration::from_micros(700),
        }
    }

    #[test]
    fn trace_ids_are_unique_and_hex() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let recorder = FlightRecorder::new(3);
        assert!(recorder.is_empty());
        for i in 0..5 {
            recorder.record(trace(&format!("t{i}")));
        }
        let snap = recorder.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].id, "t2");
        assert_eq!(snap[2].id, "t4");
        assert!(recorder.find("t0").is_none());
        assert_eq!(recorder.find("t3").unwrap().id, "t3");
    }

    #[test]
    fn to_json_carries_all_fields() {
        let rendered = trace("abc").to_json().to_string();
        for key in [
            "trace_id",
            "endpoint",
            "status",
            "items",
            "queue_us",
            "batch_size",
            "forward_us",
            "total_us",
        ] {
            assert!(rendered.contains(key), "missing {key} in {rendered}");
        }
        assert!(rendered.contains("\"abc\""));
    }
}
