//! The HTTP front: a `std::net::TcpListener` accept loop, per-connection
//! handler threads with keep-alive, connection-count admission control,
//! request routing, and graceful shutdown that drains the batcher.

use crate::batcher::{BatchConfig, Batcher, ExtractEngine, ItemResult, ShedReason};
use crate::http::{self, ParseOutcome, Request, Response, Status};
use crate::json::{self, Json};
use crate::metrics_text;
use crate::slo::{SloConfig, SloTracker};
use crate::store_hook::{IngestHook, ObjectiveStoreHook};
use crate::trace::{mint_trace_id, FlightRecorder, Trace};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Micro-batching configuration.
    pub batch: BatchConfig,
    /// Socket read timeout (idle keep-alive connections are closed after
    /// this long without a request).
    pub read_timeout: Duration,
    /// Deadline budget applied to requests that do not set `deadline_ms`.
    pub default_deadline: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Connection-level admission control: beyond this many concurrent
    /// connections, new ones get an immediate 503.
    pub max_connections: usize,
    /// How many recent request traces the flight recorder keeps
    /// (`GET /debug/traces`).
    pub trace_capacity: usize,
    /// SLO watchdog budgets and windows.
    pub slo: SloConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            batch: BatchConfig::default(),
            read_timeout: Duration::from_secs(10),
            default_deadline: Duration::from_secs(5),
            max_body_bytes: 1024 * 1024,
            max_connections: 256,
            trace_capacity: 256,
            slo: SloConfig::default(),
        }
    }
}

struct ServerShared {
    batcher: Batcher,
    config: ServerConfig,
    shutting_down: AtomicBool,
    active_connections: AtomicUsize,
    recorder: FlightRecorder,
    slo: Mutex<SloTracker>,
    store: Option<Arc<dyn ObjectiveStoreHook>>,
    ingest: Option<Arc<dyn IngestHook>>,
}

/// A running extraction server. Dropping it without calling
/// [`shutdown`](Server::shutdown) also shuts down, but `shutdown` should
/// be preferred for a deterministic drain.
pub struct Server {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, starts the batcher, and begins accepting connections.
    pub fn start(engine: Arc<dyn ExtractEngine>, config: ServerConfig) -> std::io::Result<Server> {
        Self::start_with_store(engine, config, None)
    }

    /// Like [`start`](Self::start), additionally attaching an objective
    /// store: extractions that carry a `company` field are upserted into
    /// it, and `GET /v1/objectives?company=<name>` serves reads from it.
    pub fn start_with_store(
        engine: Arc<dyn ExtractEngine>,
        config: ServerConfig,
        store: Option<Arc<dyn ObjectiveStoreHook>>,
    ) -> std::io::Result<Server> {
        Self::start_with_hooks(engine, config, store, None)
    }

    /// The full-surface constructor: optionally attaches both the
    /// objective store and a whole-report ingestion hook. With an
    /// [`IngestHook`], `POST /v1/ingest` accepts raw report text and
    /// answers with provenance-tagged extractions; without one it is 404.
    pub fn start_with_hooks(
        engine: Arc<dyn ExtractEngine>,
        config: ServerConfig,
        store: Option<Arc<dyn ObjectiveStoreHook>>,
        ingest: Option<Arc<dyn IngestHook>>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            batcher: Batcher::start(engine, config.batch.clone()),
            recorder: FlightRecorder::new(config.trace_capacity),
            slo: Mutex::new(SloTracker::new(config.slo.clone())),
            config,
            shutting_down: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            store,
            ingest,
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gs-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(Server { shared, addr, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of request traces currently held by the flight recorder.
    pub fn trace_count(&self) -> usize {
        self.shared.recorder.len()
    }

    /// Stops accepting connections, drains queued and in-flight batches,
    /// and joins the server threads.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Wait briefly for in-flight handlers to finish writing responses.
        let patience = Instant::now() + self.shared.config.read_timeout + Duration::from_secs(1);
        while self.shared.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < patience
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Batcher::drop drains the queue through the workers and joins.
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    // Handler threads detach; active_connections tracks them for shutdown.
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let active = shared.active_connections.fetch_add(1, Ordering::SeqCst) + 1;
        gs_obs::gauge("serve.connections.active", active as f64);
        if active > shared.config.max_connections {
            gs_obs::counter("serve.shed.connections", 1);
            let mut stream = stream;
            let response = Response::json(
                Status::ServiceUnavailable,
                Json::obj(vec![("error", "too many connections".into())]).to_string(),
            )
            .with_header("retry-after", "1".to_string());
            let _ = http::write_response(&mut stream, &response, true);
            release_connection(shared);
            continue;
        }
        let conn_shared = Arc::clone(shared);
        let spawned =
            std::thread::Builder::new().name("gs-serve-conn".to_string()).spawn(move || {
                handle_connection(stream, &conn_shared);
                release_connection(&conn_shared);
            });
        if spawned.is_err() {
            release_connection(shared);
        }
    }
}

fn release_connection(shared: &ServerShared) {
    let now = shared.active_connections.fetch_sub(1, Ordering::SeqCst) - 1;
    gs_obs::gauge("serve.connections.active", now as f64);
}

/// Serves requests on one connection until close, error, idle timeout, or
/// server shutdown.
fn handle_connection(stream: TcpStream, shared: &ServerShared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match http::read_request(&mut reader, shared.config.max_body_bytes) {
            ParseOutcome::Ok(request) => request,
            ParseOutcome::Closed | ParseOutcome::TimedOut | ParseOutcome::Io(_) => return,
            ParseOutcome::Malformed(status) => {
                let body = Json::obj(vec![("error", status.reason().into())]).to_string();
                let _ = http::write_response(&mut writer, &Response::json(status, body), true);
                return;
            }
        };
        // During shutdown, answer this request and then close.
        let close = request.close || shared.shutting_down.load(Ordering::SeqCst);
        let started = Instant::now();
        let response = route(&request, shared);
        observe_request(shared, &request.path, &response, started.elapsed());
        if http::write_response(&mut writer, &response, close).is_err() || close {
            return;
        }
    }
}

fn observe_request(shared: &ServerShared, path: &str, response: &Response, elapsed: Duration) {
    let endpoint = match path.split('?').next().unwrap_or(path) {
        "/v1/extract" => "extract",
        "/v1/extract_batch" => "extract_batch",
        "/v1/ingest" => "ingest",
        "/v1/objectives" => "objectives",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/debug/traces" | "/debug/prof" => "debug",
        _ => "other",
    };
    gs_obs::counter(&format!("serve.requests.{endpoint}"), 1);
    gs_obs::counter(&format!("serve.responses.{}", response.status.code()), 1);
    gs_obs::observe(&format!("serve.latency.{endpoint}"), elapsed.as_secs_f64());
    // The SLO watchdog judges the extraction service, not scrapes of its
    // own health/metrics/debug surfaces.
    if matches!(endpoint, "extract" | "extract_batch") {
        let mut slo = shared.slo.lock().unwrap_or_else(|e| e.into_inner());
        slo.record(elapsed, response.status.code());
    }
}

fn route(request: &Request, shared: &ServerShared) -> Response {
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (request.path.as_str(), ""),
    };
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => metrics(),
        ("GET", "/debug/traces") => debug_traces(shared, query),
        ("GET", "/debug/prof") => debug_prof(query),
        ("POST", "/v1/extract") => extract_single(request, shared),
        ("POST", "/v1/extract_batch") => extract_batch(request, shared),
        ("POST", "/v1/ingest") => ingest_report(request, shared),
        ("GET", "/v1/objectives") => objectives(shared, query),
        ("GET" | "HEAD", "/v1/extract" | "/v1/extract_batch" | "/v1/ingest") => {
            error_response(Status::MethodNotAllowed, "use POST with a JSON body")
        }
        ("POST" | "PUT" | "DELETE", "/v1/objectives") => {
            error_response(Status::MethodNotAllowed, "objectives are read-only over HTTP")
        }
        _ => error_response(Status::NotFound, "unknown endpoint"),
    }
}

/// `GET /debug/traces[?id=<trace_id>]`: the flight recorder's recent
/// request traces, newest last; with `id=` only the matching trace.
fn debug_traces(shared: &ServerShared, query: &str) -> Response {
    let wanted = query.split('&').find_map(|kv| kv.strip_prefix("id="));
    let traces: Vec<Json> = match wanted {
        Some(id) => match shared.recorder.find(id) {
            Some(t) => vec![t.to_json()],
            None => return error_response(Status::NotFound, "trace id not found"),
        },
        None => shared.recorder.snapshot().iter().map(Trace::to_json).collect(),
    };
    Response::json(
        Status::Ok,
        Json::obj(vec![("count", traces.len().into()), ("traces", Json::Arr(traces))]).to_string(),
    )
}

/// `GET /debug/prof[?format=collapsed]`: the live op-profiler table, or
/// flamegraph-compatible collapsed stacks. Reports whether the profiler
/// is even on, since an empty table usually just means "not enabled".
fn debug_prof(query: &str) -> Response {
    let collapsed = query.split('&').any(|kv| kv == "format=collapsed");
    let snapshot = gs_obs::prof::snapshot();
    let body = if collapsed {
        snapshot.collapsed()
    } else {
        format!("# profiler enabled: {}\n{}", gs_obs::prof::enabled(), snapshot.table())
    };
    Response::text(Status::Ok, body)
}

fn error_response(status: Status, message: &str) -> Response {
    Response::json(status, Json::obj(vec![("error", message.into())]).to_string())
}

fn shed_response(reason: ShedReason) -> Response {
    match reason {
        ShedReason::QueueFull => error_response(Status::ServiceUnavailable, "queue full")
            .with_header("retry-after", "1".to_string()),
        ShedReason::ShuttingDown => error_response(Status::ServiceUnavailable, "shutting down")
            .with_header("retry-after", "2".to_string()),
        ShedReason::DeadlineExceeded => error_response(Status::GatewayTimeout, "deadline exceeded"),
    }
}

fn healthz(shared: &ServerShared) -> Response {
    Response::json(
        Status::Ok,
        Json::obj(vec![
            ("status", "ok".into()),
            ("queue_depth", shared.batcher.queue_depth().into()),
            ("max_batch", shared.batcher.config().max_batch.into()),
        ])
        .to_string(),
    )
}

fn metrics() -> Response {
    let snapshot = gs_obs::snapshot().unwrap_or_default();
    Response::text(Status::Ok, metrics_text::render(&snapshot))
}

/// `GET /v1/objectives?company=<percent-encoded name>`: every stored
/// objective of one company, served from the store's lock-free reader path
/// (never blocked behind ingest). Requires a store hook; servers started
/// without one answer 404.
fn objectives(shared: &ServerShared, query: &str) -> Response {
    let started = Instant::now();
    let Some(store) = shared.store.as_ref() else {
        return error_response(Status::NotFound, "no objective store attached");
    };
    let Some(raw) = query.split('&').find_map(|kv| kv.strip_prefix("company=")) else {
        return error_response(Status::BadRequest, "missing query parameter \"company\"");
    };
    let Some(company) = http::percent_decode(raw) else {
        return error_response(Status::BadRequest, "malformed percent-encoding in \"company\"");
    };
    if company.is_empty() {
        return error_response(Status::BadRequest, "\"company\" must be non-empty");
    }
    let trace_id = mint_trace_id();
    let records = store.company_records(&company);
    let count = records.len();
    let body = Json::obj(vec![
        ("company", Json::Str(company)),
        ("count", count.into()),
        ("records", Json::Arr(records)),
        ("trace_id", Json::Str(trace_id.clone())),
    ])
    .to_string();
    finish_traced(
        shared,
        Response::json(Status::Ok, body),
        trace_id,
        "objectives",
        count,
        started,
        None,
    )
}

/// `POST /v1/ingest`: `{"company": "...", "text": "<raw report>",
/// "document"?: "..."}` — parse a whole semi-structured report, detect and
/// extract its objectives, and upsert them with section provenance.
/// Answers with ingestion stats plus every detected objective (section
/// path, block kind, byte range). Requires an ingest hook; servers started
/// without one answer 404. Ingestion runs synchronously on the handler
/// thread, outside the micro-batcher: a report is one indivisible unit of
/// work, not a batchable item.
fn ingest_report(request: &Request, shared: &ServerShared) -> Response {
    let started = Instant::now();
    let Some(hook) = shared.ingest.as_ref() else {
        return error_response(Status::NotFound, "no ingestion pipeline attached");
    };
    let (body, _deadline) = match parse_body(request) {
        Ok(parsed) => parsed,
        Err(response) => return response,
    };
    let Some(company) = body.get("company").and_then(Json::as_str) else {
        return error_response(Status::BadRequest, "missing string field \"company\"");
    };
    if company.is_empty() {
        return error_response(Status::BadRequest, "\"company\" must be non-empty");
    }
    let Some(text) = body.get("text").and_then(Json::as_str) else {
        return error_response(Status::BadRequest, "missing string field \"text\"");
    };
    let document = body.get("document").and_then(Json::as_str).unwrap_or("ingest");
    let trace_id = mint_trace_id();
    let (status, mut fields) = match hook.ingest_report(company, document, text) {
        Ok(Json::Obj(map)) => (Status::Ok, map),
        Ok(other) => (Status::Ok, std::iter::once(("result".to_string(), other)).collect()),
        Err(err) => {
            gs_obs::counter("serve.ingest.errors", 1);
            let map = std::iter::once(("error".to_string(), Json::Str(err))).collect();
            (Status::InternalError, map)
        }
    };
    let items = match fields.get("objectives") {
        Some(Json::Arr(objectives)) => objectives.len(),
        _ => 0,
    };
    fields.insert("trace_id".to_string(), Json::Str(trace_id.clone()));
    finish_traced(
        shared,
        Response::json(status, Json::Obj(fields).to_string()),
        trace_id,
        "ingest",
        items,
        started,
        None,
    )
}

/// Upserts one successful extraction into the attached store, if the
/// request named a company. Store failures never fail the extraction
/// response — the client got its answer; the loss is counted and traced.
fn store_extraction(
    shared: &ServerShared,
    body: &Json,
    text: &str,
    fields: &[(String, String)],
    trace_id: &str,
) -> Option<(&'static str, Json)> {
    let store = shared.store.as_ref()?;
    let company = body.get("company").and_then(Json::as_str)?;
    if company.is_empty() {
        return None;
    }
    let document = body.get("document").and_then(Json::as_str).unwrap_or("api");
    match store.record_extraction(company, document, text, fields) {
        Ok(outcome) => {
            gs_obs::counter(&format!("serve.store.{outcome}"), 1);
            Some(("stored", Json::Str(outcome.to_string())))
        }
        Err(err) => {
            gs_obs::counter("serve.store.errors", 1);
            gs_obs::emit(
                "store_error",
                "serve.store",
                vec![("trace", trace_id.into()), ("error", err.as_str().into())],
            );
            Some(("stored", Json::Str("error".to_string())))
        }
    }
}

/// Largest accepted `deadline_ms` (one hour). Anything bigger is a client
/// error; unbounded values would overflow `Instant::now() + budget` and
/// panic the connection handler instead of producing a 400.
const MAX_DEADLINE_MS: u64 = 3_600_000;

/// Parses the request body and the optional `deadline_ms` budget.
fn parse_body(request: &Request) -> Result<(Json, Option<Duration>), Response> {
    let Some(text) = request.body_utf8() else {
        return Err(error_response(Status::BadRequest, "body is not UTF-8"));
    };
    let value = json::parse(text)
        .map_err(|_| error_response(Status::BadRequest, "body is not valid JSON"))?;
    let deadline = match value.get("deadline_ms") {
        None => None,
        Some(v) => match v.as_u64() {
            Some(ms) if ms <= MAX_DEADLINE_MS => Some(Duration::from_millis(ms)),
            Some(_) => {
                return Err(error_response(
                    Status::BadRequest,
                    "deadline_ms exceeds the one-hour maximum",
                ))
            }
            None => {
                return Err(error_response(
                    Status::BadRequest,
                    "deadline_ms must be a non-negative integer",
                ))
            }
        },
    };
    Ok((value, deadline))
}

fn extraction_json(fields: &[(String, String)]) -> Json {
    Json::Obj(fields.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect())
}

/// Finalizes an extraction response: stamps the trace id into the
/// `X-Trace-Id` header and writes the request's flight-recorder entry.
fn finish_traced(
    shared: &ServerShared,
    response: Response,
    trace_id: String,
    endpoint: &'static str,
    items: usize,
    started: Instant,
    result: Option<&ItemResult>,
) -> Response {
    shared.recorder.record(Trace {
        id: trace_id.clone(),
        endpoint,
        status: response.status.code(),
        items,
        queue_wait: result.map(|r| r.queue_wait).unwrap_or_default(),
        batch_size: result.map(|r| r.batch_size).unwrap_or_default(),
        forward: result.map(|r| r.forward).unwrap_or_default(),
        total: started.elapsed(),
    });
    response.with_header("x-trace-id", trace_id)
}

fn extract_single(request: &Request, shared: &ServerShared) -> Response {
    let started = Instant::now();
    let (body, deadline_budget) = match parse_body(request) {
        Ok(parsed) => parsed,
        Err(response) => return response,
    };
    let Some(text) = body.get("text").and_then(Json::as_str) else {
        return error_response(Status::BadRequest, "missing string field \"text\"");
    };
    // Admission: the request is valid and enters the batching pipeline
    // under this trace id.
    let trace_id = mint_trace_id();
    let finish = |response, result: Option<&ItemResult>| {
        finish_traced(shared, response, trace_id.clone(), "extract", 1, started, result)
    };
    let budget = deadline_budget.unwrap_or(shared.config.default_deadline);
    let deadline = Instant::now() + budget;
    let receiver = match shared.batcher.submit_traced(vec![text.to_string()], deadline, &trace_id) {
        Ok(receiver) => receiver,
        Err(reason) => return finish(shed_response(reason), None),
    };
    match await_result(&receiver, deadline) {
        Ok(result) => match &result.outcome {
            Ok(extraction) => {
                let mut pairs = vec![
                    ("fields", extraction_json(&extraction.fields)),
                    ("batch_size", result.batch_size.into()),
                    ("queue_us", (result.queue_wait.as_micros() as u64).into()),
                    ("trace_id", Json::Str(trace_id.clone())),
                ];
                if let Some(stored) =
                    store_extraction(shared, &body, text, &extraction.fields, &trace_id)
                {
                    pairs.push(stored);
                }
                let body = Json::obj(pairs).to_string();
                finish(Response::json(Status::Ok, body), Some(&result))
            }
            Err(reason) => finish(shed_response(*reason), Some(&result)),
        },
        Err(response) => finish(response, None),
    }
}

fn extract_batch(request: &Request, shared: &ServerShared) -> Response {
    let started = Instant::now();
    let (body, deadline_budget) = match parse_body(request) {
        Ok(parsed) => parsed,
        Err(response) => return response,
    };
    let Some(items) = body.get("texts").and_then(Json::as_arr) else {
        return error_response(Status::BadRequest, "missing array field \"texts\"");
    };
    let mut texts = Vec::with_capacity(items.len());
    for item in items {
        match item.as_str() {
            Some(s) => texts.push(s.to_string()),
            None => return error_response(Status::BadRequest, "\"texts\" must contain strings"),
        }
    }
    let trace_id = mint_trace_id();
    if texts.is_empty() {
        let body = Json::obj(vec![
            ("results", Json::Arr(Vec::new())),
            ("trace_id", Json::Str(trace_id.clone())),
        ])
        .to_string();
        return finish_traced(
            shared,
            Response::json(Status::Ok, body),
            trace_id,
            "extract_batch",
            0,
            started,
            None,
        );
    }
    let n = texts.len();
    let finish = |response, result: Option<&ItemResult>| {
        finish_traced(shared, response, trace_id.clone(), "extract_batch", n, started, result)
    };
    let budget = deadline_budget.unwrap_or(shared.config.default_deadline);
    let deadline = Instant::now() + budget;
    let receiver = match shared.batcher.submit_traced(texts, deadline, &trace_id) {
        Ok(receiver) => receiver,
        Err(reason) => return finish(shed_response(reason), None),
    };
    let mut results: Vec<Option<ItemResult>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        match await_result(&receiver, deadline) {
            Ok(result) => {
                let slot = result.index;
                results[slot] = Some(result);
            }
            Err(response) => return finish(response, None),
        }
    }
    // Whole-request semantics: if any item timed out, the request did. The
    // recorded trace carries the slowest item's queue wait and its batch.
    let mut rendered = Vec::with_capacity(n);
    let mut slowest: Option<ItemResult> = None;
    for result in results.into_iter().flatten() {
        match &result.outcome {
            Ok(extraction) => {
                rendered.push(Json::obj(vec![("fields", extraction_json(&extraction.fields))]));
                if slowest.as_ref().is_none_or(|s| result.queue_wait > s.queue_wait) {
                    slowest = Some(result);
                }
            }
            Err(reason) => {
                let reason = *reason;
                return finish(shed_response(reason), Some(&result));
            }
        }
    }
    let body = Json::obj(vec![
        ("results", Json::Arr(rendered)),
        ("trace_id", Json::Str(trace_id.clone())),
    ])
    .to_string();
    finish(Response::json(Status::Ok, body), slowest.as_ref())
}

/// Waits for one batcher result, translating channel loss/timeouts into
/// error responses.
fn await_result(
    receiver: &std::sync::mpsc::Receiver<ItemResult>,
    deadline: Instant,
) -> Result<ItemResult, Response> {
    // Small grace period: the worker checks the deadline at dispatch; a
    // batch admitted just in time may complete just after it.
    let wait_until = deadline + Duration::from_secs(2);
    let now = Instant::now();
    let timeout = wait_until.saturating_duration_since(now);
    match receiver.recv_timeout(timeout) {
        Ok(result) => Ok(result),
        Err(RecvTimeoutError::Timeout) => {
            gs_obs::counter("serve.shed.deadline", 1);
            Err(shed_response(ShedReason::DeadlineExceeded))
        }
        Err(RecvTimeoutError::Disconnected) => {
            Err(error_response(Status::InternalError, "worker dropped request"))
        }
    }
}
