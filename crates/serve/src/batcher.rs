//! The dynamic micro-batcher: requests land in a bounded queue and worker
//! threads pull from it directly, each draining up to `max_batch` items
//! per pull (waiting at most `max_delay` past the head item's arrival for
//! batch-mates) and running one batched extraction forward.
//!
//! Workers pulling straight from the queue — rather than a scheduler
//! pushing into a worker channel — is what makes the batching *dynamic*:
//! while every worker is busy, arrivals accumulate in the queue, so the
//! next pull naturally drains a full batch; when a worker is idle, it
//! takes whatever arrived within the linger window. Dispatch is coupled
//! to worker availability, and an unbounded staging area between queue
//! and workers (which would defeat both coalescing and the queue bound)
//! never exists.
//!
//! Robustness is part of the design: the queue sheds load when full
//! (callers translate that into HTTP 503), every item carries a deadline
//! that is re-checked at dispatch time, and shutdown drains in-flight
//! work before returning.

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gs_race::sync::{AtomicU64, Condvar, Mutex, Ordering};

/// One extraction result: field name/value pairs, in the engine's order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Extraction {
    /// Extracted field name/value pairs (e.g. `("Deadline", "2030")`).
    pub fields: Vec<(String, String)>,
}

/// The model behind the service. Implementations must return exactly one
/// [`Extraction`] per input text, in order.
pub trait ExtractEngine: Send + Sync + 'static {
    /// Runs extraction over a micro-batch of texts.
    fn extract_batch(&self, texts: &[String]) -> Vec<Extraction>;

    /// Bytes currently parked in the engine's buffer arena, if it runs its
    /// forwards through one. Engines without an arena report `None` and the
    /// worker loop skips the `serve.arena_bytes` gauge.
    fn arena_bytes(&self) -> Option<u64> {
        None
    }
}

/// Why a request was rejected or abandoned instead of answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was full (backpressure; retry later).
    QueueFull,
    /// The request's deadline expired before a worker got to it.
    DeadlineExceeded,
    /// The batcher is shutting down and no longer admits work.
    ShuttingDown,
}

/// Outcome of one batched item, delivered back to the submitting thread.
#[derive(Clone, Debug)]
pub struct ItemResult {
    /// Index of the item within its originating submission.
    pub index: usize,
    /// The extraction, or why it was dropped.
    pub outcome: Result<Extraction, ShedReason>,
    /// Time the item spent queued before its batch was dispatched.
    pub queue_wait: Duration,
    /// Size of the micro-batch the item was served in (0 when shed).
    pub batch_size: usize,
    /// Engine forward time of the serving batch (zero when shed).
    pub forward: Duration,
}

/// Batching knobs.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Largest micro-batch handed to the engine.
    pub max_batch: usize,
    /// How long the scheduler waits for more items after the first one
    /// arrives before dispatching a partial batch.
    pub max_delay: Duration,
    /// Bound on queued items; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Worker threads running engine forwards.
    pub workers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_capacity: 256,
            workers: 1,
        }
    }
}

impl BatchConfig {
    fn validated(mut self) -> Self {
        self.max_batch = self.max_batch.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self.workers = self.workers.max(1);
        self
    }
}

struct Job {
    text: String,
    index: usize,
    /// Trace id of the originating request (shared across a submission).
    trace: Arc<str>,
    enqueued: Instant,
    deadline: Instant,
    reply: Sender<ItemResult>,
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals the scheduler that items arrived or shutdown began.
    arrived: Condvar,
    depth: AtomicU64,
}

/// The micro-batching front of an [`ExtractEngine`].
pub struct Batcher {
    shared: Arc<Shared>,
    config: BatchConfig,
    workers: Vec<JoinHandle<()>>,
}

impl Batcher {
    /// Starts the worker threads.
    pub fn start(engine: Arc<dyn ExtractEngine>, config: BatchConfig) -> Batcher {
        let config = config.validated();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState::default()),
            arrived: Condvar::new(),
            depth: AtomicU64::new(0),
        });

        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let config = config.clone();
                let engine = Arc::clone(&engine);
                std::thread::Builder::new()
                    .name(format!("gs-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &config, engine.as_ref()))
                    .expect("spawn worker")
            })
            .collect();

        Batcher { shared, config, workers }
    }

    /// The batching configuration in effect.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Current queue depth (approximate; for health endpoints).
    pub fn queue_depth(&self) -> usize {
        // ordering: Relaxed — an advisory gauge mirror of the queue length;
        // the queue itself is only ever touched under the state mutex.
        self.shared.depth.load(Ordering::Relaxed) as usize
    }

    /// Submits `texts` as one admission unit: either every text is
    /// enqueued or none is (so a batch request cannot be half-shed by the
    /// queue bound). Results arrive on the returned receiver in arbitrary
    /// order, tagged with their submission index.
    pub fn submit(
        &self,
        texts: Vec<String>,
        deadline: Instant,
    ) -> Result<Receiver<ItemResult>, ShedReason> {
        self.submit_traced(texts, deadline, &crate::trace::mint_trace_id())
    }

    /// [`submit`](Self::submit) under an existing request trace id; the id
    /// travels with every queued item, so a batch dispatch can be tied
    /// back to the requests it served.
    pub fn submit_traced(
        &self,
        texts: Vec<String>,
        deadline: Instant,
        trace: &str,
    ) -> Result<Receiver<ItemResult>, ShedReason> {
        let (tx, rx) = channel();
        let now = Instant::now();
        if now >= deadline {
            return Err(ShedReason::DeadlineExceeded);
        }
        let trace: Arc<str> = Arc::from(trace);
        {
            let mut state = self.shared.state.lock();
            if state.shutting_down {
                return Err(ShedReason::ShuttingDown);
            }
            if state.queue.len() + texts.len() > self.config.queue_capacity {
                gs_obs::counter("serve.shed.queue_full", texts.len() as u64);
                return Err(ShedReason::QueueFull);
            }
            for (index, text) in texts.into_iter().enumerate() {
                state.queue.push_back(Job {
                    text,
                    index,
                    trace: Arc::clone(&trace),
                    enqueued: now,
                    deadline,
                    reply: tx.clone(),
                });
            }
            // ordering: Relaxed — see queue_depth(): statistics mirror only.
            self.shared.depth.store(state.queue.len() as u64, Ordering::Relaxed);
            gs_obs::gauge("serve.queue.depth", state.queue.len() as f64);
        }
        self.shared.arrived.notify_one();
        Ok(rx)
    }

    /// Stops admitting work, drains everything already queued through the
    /// workers, and joins all threads.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        let mut state = self.shared.state.lock();
        state.shutting_down = true;
        drop(state);
        self.shared.arrived.notify_all();
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker: pulls a batch straight off the shared queue (waiting for the
/// first item, then lingering up to `max_delay` past its arrival for
/// batch-mates), drops items whose deadline already passed, runs one
/// engine forward over the survivors, and replies per item. On shutdown,
/// keeps pulling until the queue is drained, then exits.
fn worker_loop(shared: &Shared, config: &BatchConfig, engine: &dyn ExtractEngine) {
    loop {
        let mut state = shared.state.lock();
        while state.queue.is_empty() && !state.shutting_down {
            state = shared.arrived.wait(state);
        }
        if state.queue.is_empty() {
            return; // shutting down and fully drained
        }

        // Linger for batch-mates, measured from the head item's arrival:
        // a worker that was busy while the queue built up dispatches
        // immediately, an idle worker waits out the window. Skipped when
        // the batch is already full or we are draining for shutdown.
        //
        // The deadline uses `checked_add`: a huge configured `max_delay`
        // (up to `Duration::MAX`, meaning "always wait for a full batch")
        // must not panic on `Instant` overflow. An unrepresentable
        // deadline degrades to an untimed wait, which a full batch or
        // shutdown still interrupts.
        let fill_deadline = state.queue[0].enqueued.checked_add(config.max_delay);
        while state.queue.len() < config.max_batch && !state.shutting_down {
            match fill_deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (next, timeout) = shared.arrived.wait_timeout(state, deadline - now);
                    state = next;
                    if timeout.timed_out() {
                        break;
                    }
                }
                None => state = shared.arrived.wait(state),
            }
        }

        let take = state.queue.len().min(config.max_batch);
        let batch: Vec<Job> = state.queue.drain(..take).collect();
        // ordering: Relaxed — see queue_depth(): statistics mirror only.
        shared.depth.store(state.queue.len() as u64, Ordering::Relaxed);
        gs_obs::gauge("serve.queue.depth", state.queue.len() as f64);
        // Leftover items beyond max_batch: hand them to an idle sibling
        // (this worker is about to be busy with the forward).
        if !state.queue.is_empty() {
            shared.arrived.notify_one();
        }
        drop(state);

        let dispatched = Instant::now();
        let mut live: Vec<Job> = Vec::with_capacity(batch.len());
        for job in batch {
            if dispatched >= job.deadline {
                gs_obs::counter("serve.shed.deadline", 1);
                let _ = job.reply.send(ItemResult {
                    index: job.index,
                    outcome: Err(ShedReason::DeadlineExceeded),
                    queue_wait: dispatched - job.enqueued,
                    batch_size: 0,
                    forward: Duration::ZERO,
                });
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }

        let texts: Vec<String> = live.iter().map(|j| j.text.clone()).collect();
        let forward_start = Instant::now();
        let _span = gs_obs::span("serve.batch_forward");
        let mut extractions = engine.extract_batch(&texts);
        drop(_span);
        let forward = forward_start.elapsed();
        let forward_seconds = forward.as_secs_f64();
        // A well-behaved engine returns one result per text; pad
        // defensively so a short answer cannot wedge waiting clients.
        extractions.resize_with(live.len(), Extraction::default);

        let batch_size = live.len();
        gs_obs::observe_with(
            "serve.batch.size",
            batch_size as f64,
            &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
        );
        gs_obs::observe("serve.batch.forward_seconds", forward_seconds);
        gs_obs::counter("serve.extracted_items", batch_size as u64);
        if let Some(bytes) = engine.arena_bytes() {
            gs_obs::gauge("serve.arena_bytes", bytes as f64);
        }
        // Trace propagation record: which request traces this dispatch
        // served, so a flight-recorder entry can be tied to its batch-mates.
        let mut traces = String::new();
        for (i, job) in live.iter().enumerate() {
            if i > 0 {
                traces.push(',');
            }
            traces.push_str(&job.trace);
        }
        gs_obs::emit(
            "trace",
            "batch_dispatch",
            vec![
                ("traces", gs_obs::FieldValue::Str(traces)),
                ("batch_size", gs_obs::FieldValue::U64(batch_size as u64)),
                ("forward_seconds", gs_obs::FieldValue::F64(forward_seconds)),
            ],
        );

        for (job, extraction) in live.into_iter().zip(extractions) {
            let queue_wait = dispatched - job.enqueued;
            gs_obs::observe("serve.queue.wait_seconds", queue_wait.as_secs_f64());
            let _ = job.reply.send(ItemResult {
                index: job.index,
                outcome: Ok(extraction),
                queue_wait,
                batch_size,
                forward,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Echoes each text back as a single field, recording batch sizes.
    struct EchoEngine {
        batches: Mutex<Vec<usize>>,
        delay: Duration,
        calls: AtomicUsize,
    }

    impl EchoEngine {
        fn new(delay: Duration) -> Self {
            EchoEngine { batches: Mutex::new(Vec::new()), delay, calls: AtomicUsize::new(0) }
        }
    }

    impl ExtractEngine for EchoEngine {
        fn extract_batch(&self, texts: &[String]) -> Vec<Extraction> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.batches.lock().push(texts.len());
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            texts
                .iter()
                .map(|t| Extraction { fields: vec![("Echo".to_string(), t.clone())] })
                .collect()
        }
    }

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(30)
    }

    #[test]
    fn single_item_roundtrips() {
        let engine = Arc::new(EchoEngine::new(Duration::ZERO));
        let batcher = Batcher::start(engine, BatchConfig::default());
        let rx = batcher.submit(vec!["hello".into()], far_deadline()).unwrap();
        let result = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(result.index, 0);
        let extraction = result.outcome.unwrap();
        assert_eq!(extraction.fields, vec![("Echo".to_string(), "hello".to_string())]);
        assert!(result.batch_size >= 1);
        batcher.shutdown();
    }

    #[test]
    fn multi_item_submission_returns_all_indices() {
        let engine = Arc::new(EchoEngine::new(Duration::ZERO));
        let batcher = Batcher::start(engine, BatchConfig::default());
        let texts: Vec<String> = (0..5).map(|i| format!("t{i}")).collect();
        let rx = batcher.submit(texts, far_deadline()).unwrap();
        let mut results: Vec<ItemResult> = Vec::new();
        for _ in 0..5 {
            results.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        results.sort_by_key(|r| r.index);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(
                r.outcome.as_ref().unwrap().fields,
                vec![("Echo".to_string(), format!("t{i}"))]
            );
        }
        batcher.shutdown();
    }

    #[test]
    fn concurrent_submissions_coalesce_into_batches() {
        // A slow engine forces later submissions to pile up in the queue
        // while the first batch runs, so the next dispatch is > 1 item.
        let engine = Arc::new(EchoEngine::new(Duration::from_millis(30)));
        let batcher = Arc::new(Batcher::start(
            Arc::clone(&engine) as Arc<dyn ExtractEngine>,
            BatchConfig {
                max_batch: 16,
                max_delay: Duration::from_millis(1),
                ..Default::default()
            },
        ));
        std::thread::scope(|scope| {
            for i in 0..12 {
                let batcher = Arc::clone(&batcher);
                scope.spawn(move || {
                    let rx = batcher.submit(vec![format!("req{i}")], far_deadline()).unwrap();
                    let result = rx.recv_timeout(Duration::from_secs(10)).unwrap();
                    assert!(result.outcome.is_ok());
                });
            }
        });
        let batches = engine.batches.lock().clone();
        assert_eq!(batches.iter().sum::<usize>(), 12);
        // Far fewer engine calls than requests: batching actually happened.
        assert!(batches.iter().any(|&b| b > 1), "no coalescing in {batches:?}");
        match Arc::try_unwrap(batcher) {
            Ok(b) => b.shutdown(),
            Err(_) => panic!("batcher still shared"),
        }
    }

    #[test]
    fn queue_bound_sheds_load() {
        // One slow batch occupies the worker; capacity 2 then fills.
        let engine = Arc::new(EchoEngine::new(Duration::from_millis(100)));
        let batcher = Batcher::start(
            engine,
            BatchConfig { max_batch: 1, max_delay: Duration::ZERO, queue_capacity: 2, workers: 1 },
        );
        let first = batcher.submit(vec!["a".into()], far_deadline()).unwrap();
        // Give the scheduler a moment to hand "a" to the (now busy) worker.
        std::thread::sleep(Duration::from_millis(20));
        let _second = batcher.submit(vec!["b".into()], far_deadline()).unwrap();
        let _third = batcher.submit(vec!["c".into()], far_deadline()).unwrap();
        // Queue now holds b and c; the next submission must shed.
        let shed = batcher.submit(vec!["d".into()], far_deadline());
        assert!(matches!(shed, Err(ShedReason::QueueFull)), "got {shed:?}");
        // Oversized atomic submissions shed as a unit.
        let bulk = batcher.submit(vec!["x".into(); 3], far_deadline());
        assert!(matches!(bulk, Err(ShedReason::QueueFull)));
        assert!(first.recv_timeout(Duration::from_secs(5)).unwrap().outcome.is_ok());
        batcher.shutdown();
    }

    #[test]
    fn expired_deadlines_are_rejected_or_dropped() {
        let engine = Arc::new(EchoEngine::new(Duration::from_millis(50)));
        let batcher = Batcher::start(
            engine,
            BatchConfig { max_batch: 1, max_delay: Duration::ZERO, ..Default::default() },
        );
        // Already-expired deadline: rejected at admission.
        let past = Instant::now() - Duration::from_millis(1);
        assert!(matches!(
            batcher.submit(vec!["late".into()], past),
            Err(ShedReason::DeadlineExceeded)
        ));
        // Tight deadline behind a slow batch: dropped at dispatch.
        let _busy = batcher.submit(vec!["slow".into()], far_deadline()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let rx = batcher
            .submit(vec!["urgent".into()], Instant::now() + Duration::from_millis(10))
            .unwrap();
        let result = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(result.outcome, Err(ShedReason::DeadlineExceeded)), "{result:?}");
        batcher.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let engine = Arc::new(EchoEngine::new(Duration::from_millis(10)));
        let batcher = Batcher::start(
            engine,
            BatchConfig { max_batch: 2, max_delay: Duration::from_millis(1), ..Default::default() },
        );
        let receivers: Vec<_> = (0..6)
            .map(|i| batcher.submit(vec![format!("q{i}")], far_deadline()).unwrap())
            .collect();
        batcher.shutdown();
        // Every queued item was answered (not dropped) during the drain.
        for rx in receivers {
            let result = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert!(result.outcome.is_ok(), "{result:?}");
        }
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let engine = Arc::new(EchoEngine::new(Duration::ZERO));
        let batcher = Batcher::start(engine, BatchConfig::default());
        batcher.begin_shutdown();
        assert!(matches!(
            batcher.submit(vec!["x".into()], far_deadline()),
            Err(ShedReason::ShuttingDown)
        ));
        batcher.shutdown();
    }

    #[test]
    fn max_batch_caps_dispatch_size() {
        let engine = Arc::new(EchoEngine::new(Duration::from_millis(5)));
        let batcher = Batcher::start(
            Arc::clone(&engine) as Arc<dyn ExtractEngine>,
            BatchConfig { max_batch: 3, max_delay: Duration::from_millis(1), ..Default::default() },
        );
        let rx = batcher.submit(vec!["a".into(); 10], far_deadline()).unwrap();
        for _ in 0..10 {
            let r = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert!(r.batch_size <= 3, "batch of {}", r.batch_size);
        }
        assert!(engine.batches.lock().iter().all(|&b| b <= 3));
        batcher.shutdown();
    }

    #[test]
    fn huge_max_delay_neither_panics_nor_wedges() {
        // `Duration::MAX` as the linger window means "always wait for a
        // full batch". The fill deadline `enqueued + max_delay` must not
        // panic on Instant overflow; it degrades to an untimed wait.
        let engine = Arc::new(EchoEngine::new(Duration::ZERO));
        let batcher = Batcher::start(
            engine,
            BatchConfig { max_batch: 2, max_delay: Duration::MAX, ..Default::default() },
        );
        // A full batch dispatches without ever consulting the deadline.
        let rx = batcher.submit(vec!["a".into(), "b".into()], far_deadline()).unwrap();
        for _ in 0..2 {
            assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap().outcome.is_ok());
        }
        // A partial batch lingers untimed but must still drain on shutdown.
        let rx = batcher.submit(vec!["c".into()], far_deadline()).unwrap();
        batcher.shutdown();
        assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap().outcome.is_ok());
    }
}
