//! SLO watchdog: sliding-window p99 latency, error rate, and shed rate
//! with multi-window burn-rate alerting.
//!
//! Burn rate is how fast the service is consuming its error budget: a
//! burn rate of 1 spends exactly the budget (e.g. a 1% error budget with
//! 1% of requests failing), 10 exhausts it ten times too fast. Following
//! the standard multi-window rule, the watchdog alerts only when **both**
//! a short window (fast detection) and a long window (noise suppression)
//! burn above the threshold, and resolves when the short window recovers —
//! a single bad request after a quiet hour cannot page, but a sustained
//! failure fires within the short window.
//!
//! Three dimensions are tracked independently: availability (5xx rate
//! against the error budget), saturation (shed 503/504 rate against the
//! shed budget), and latency (fraction of requests over the p99 target
//! against `1 - 0.99`). Alert transitions are emitted once per edge as
//! `slo_alert` / `slo_resolve` obs events; current burn rates and window
//! p99s are republished as gauges on every record, so they surface in
//! `/metrics` alongside the request counters.

use gs_obs::FieldValue;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Watchdog configuration.
#[derive(Clone, Debug)]
pub struct SloConfig {
    /// p99 latency target; requests slower than this consume the latency
    /// budget.
    pub latency_target: Duration,
    /// Fraction of requests allowed to fail with 5xx (availability budget).
    pub error_budget: f64,
    /// Fraction of requests allowed to be shed with 503/504.
    pub shed_budget: f64,
    /// Fast-detection window.
    pub short_window: Duration,
    /// Noise-suppression window.
    pub long_window: Duration,
    /// Burn-rate threshold; alert when both windows burn above it.
    pub burn_alert: f64,
    /// Minimum short-window sample count before alerting (cold-start and
    /// trickle-traffic guard).
    pub min_requests: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_target: Duration::from_millis(500),
            error_budget: 0.01,
            shed_budget: 0.05,
            short_window: Duration::from_secs(60),
            long_window: Duration::from_secs(300),
            burn_alert: 2.0,
            min_requests: 10,
        }
    }
}

/// Aggregates over one sliding window.
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowStats {
    /// Requests inside the window.
    pub requests: usize,
    /// p99 latency in seconds (0 when empty).
    pub p99: f64,
    /// Fraction of requests answered 5xx.
    pub error_rate: f64,
    /// Fraction of requests shed (503/504).
    pub shed_rate: f64,
    /// Fraction of requests slower than the latency target.
    pub slow_rate: f64,
}

struct Sample {
    at: Instant,
    latency: f64,
    error: bool,
    shed: bool,
    slow: bool,
}

/// The SLO dimensions the watchdog alerts on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloDimension {
    /// 5xx responses against the error budget.
    Errors,
    /// 503/504 sheds against the shed budget.
    Shed,
    /// Requests over the latency target against the 1% tail budget.
    Latency,
}

impl SloDimension {
    const ALL: [SloDimension; 3] =
        [SloDimension::Errors, SloDimension::Shed, SloDimension::Latency];

    fn name(self) -> &'static str {
        match self {
            SloDimension::Errors => "errors",
            SloDimension::Shed => "shed",
            SloDimension::Latency => "latency",
        }
    }

    fn index(self) -> usize {
        match self {
            SloDimension::Errors => 0,
            SloDimension::Shed => 1,
            SloDimension::Latency => 2,
        }
    }
}

/// Sliding-window burn-rate tracker. Not internally synchronized; the
/// server wraps it in a mutex.
pub struct SloTracker {
    config: SloConfig,
    samples: VecDeque<Sample>,
    /// Current alert state per dimension (see [`SloDimension::index`]).
    alerting: [bool; 3],
}

/// Hard cap on retained samples, bounding memory under request floods
/// faster than the long window can age out.
const MAX_SAMPLES: usize = 65_536;

impl SloTracker {
    /// A tracker with the given budgets and windows.
    pub fn new(config: SloConfig) -> Self {
        SloTracker { config, samples: VecDeque::new(), alerting: [false; 3] }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Records one finished request and re-evaluates the alerts.
    /// Returns the dimensions whose alert state flipped on this record.
    pub fn record_at(
        &mut self,
        now: Instant,
        latency: Duration,
        status: u16,
    ) -> Vec<(SloDimension, bool)> {
        let latency = latency.as_secs_f64();
        self.samples.push_back(Sample {
            at: now,
            latency,
            error: status >= 500,
            shed: status == 503 || status == 504,
            slow: latency > self.config.latency_target.as_secs_f64(),
        });
        while self.samples.len() > MAX_SAMPLES {
            self.samples.pop_front();
        }
        let horizon = now.checked_sub(self.config.long_window);
        if let Some(horizon) = horizon {
            while self.samples.front().is_some_and(|s| s.at < horizon) {
                self.samples.pop_front();
            }
        }
        self.evaluate(now)
    }

    /// Records with the current time and publishes gauges/events through
    /// the installed obs collector.
    pub fn record(&mut self, latency: Duration, status: u16) {
        let now = Instant::now();
        let flips = self.record_at(now, latency, status);
        let short = self.window_stats(now, self.config.short_window);
        let long = self.window_stats(now, self.config.long_window);
        gs_obs::gauge("slo.p99_seconds.short", short.p99);
        gs_obs::gauge("slo.shed_rate.short", short.shed_rate);
        for (dim, burn) in [
            (SloDimension::Errors, self.burn(&short, SloDimension::Errors)),
            (SloDimension::Shed, self.burn(&short, SloDimension::Shed)),
            (SloDimension::Latency, self.burn(&short, SloDimension::Latency)),
        ] {
            gs_obs::gauge(&format!("slo.burn_rate.{}.short", dim.name()), burn);
        }
        for dim in SloDimension::ALL {
            gs_obs::gauge(&format!("slo.burn_rate.{}.long", dim.name()), self.burn(&long, dim));
        }
        for (dim, raised) in flips {
            let kind = if raised { "slo_alert" } else { "slo_resolve" };
            gs_obs::emit(
                "slo",
                kind,
                vec![
                    ("dimension", FieldValue::Str(dim.name().to_string())),
                    ("burn_short", FieldValue::F64(self.burn(&short, dim))),
                    ("burn_long", FieldValue::F64(self.burn(&long, dim))),
                    ("requests_short", FieldValue::U64(short.requests as u64)),
                ],
            );
            gs_obs::counter(&format!("slo.alerts.{}", dim.name()), u64::from(raised));
        }
    }

    /// Whether `dim` is currently alerting.
    pub fn is_alerting(&self, dim: SloDimension) -> bool {
        self.alerting[dim.index()]
    }

    /// Aggregates over the trailing `window` ending at `now`.
    pub fn window_stats(&self, now: Instant, window: Duration) -> WindowStats {
        let horizon = now.checked_sub(window);
        let in_window = self.samples.iter().filter(|s| match horizon {
            Some(h) => s.at >= h,
            None => true,
        });
        let mut latencies: Vec<f64> = Vec::new();
        let (mut errors, mut sheds, mut slow) = (0usize, 0usize, 0usize);
        for s in in_window {
            latencies.push(s.latency);
            errors += usize::from(s.error);
            sheds += usize::from(s.shed);
            slow += usize::from(s.slow);
        }
        let n = latencies.len();
        if n == 0 {
            return WindowStats::default();
        }
        latencies.sort_by(|a, b| a.total_cmp(b));
        // Nearest-rank p99 (matches the obs histogram convention).
        let rank = ((0.99 * n as f64).ceil() as usize).clamp(1, n);
        WindowStats {
            requests: n,
            p99: latencies[rank - 1],
            error_rate: errors as f64 / n as f64,
            shed_rate: sheds as f64 / n as f64,
            slow_rate: slow as f64 / n as f64,
        }
    }

    /// Burn rate of `dim` over pre-computed window stats.
    pub fn burn(&self, stats: &WindowStats, dim: SloDimension) -> f64 {
        let (rate, budget) = match dim {
            SloDimension::Errors => (stats.error_rate, self.config.error_budget),
            SloDimension::Shed => (stats.shed_rate, self.config.shed_budget),
            SloDimension::Latency => (stats.slow_rate, 0.01),
        };
        if budget <= 0.0 {
            return if rate > 0.0 { f64::INFINITY } else { 0.0 };
        }
        rate / budget
    }

    /// Re-evaluates the multi-window rule, returning the dimensions whose
    /// alert state flipped (dimension, now_alerting).
    fn evaluate(&mut self, now: Instant) -> Vec<(SloDimension, bool)> {
        let short = self.window_stats(now, self.config.short_window);
        let long = self.window_stats(now, self.config.long_window);
        let mut flips = Vec::new();
        for dim in SloDimension::ALL {
            let burning = short.requests >= self.config.min_requests
                && self.burn(&short, dim) > self.config.burn_alert
                && self.burn(&long, dim) > self.config.burn_alert;
            let slot = dim.index();
            // Raise on both windows burning; resolve once the short window
            // recovers (the long window lags by construction).
            let next = if self.alerting[slot] {
                short.requests == 0 || self.burn(&short, dim) > self.config.burn_alert
            } else {
                burning
            };
            if next != self.alerting[slot] {
                self.alerting[slot] = next;
                flips.push((dim, next));
            }
        }
        flips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SloConfig {
        SloConfig {
            latency_target: Duration::from_millis(100),
            error_budget: 0.1,
            shed_budget: 0.1,
            short_window: Duration::from_secs(10),
            long_window: Duration::from_secs(60),
            burn_alert: 2.0,
            min_requests: 5,
        }
    }

    #[test]
    fn healthy_traffic_never_alerts() {
        let mut slo = SloTracker::new(config());
        let t0 = Instant::now();
        for i in 0..100 {
            let flips =
                slo.record_at(t0 + Duration::from_millis(i * 10), Duration::from_millis(5), 200);
            assert!(flips.is_empty());
        }
        assert!(!slo.is_alerting(SloDimension::Errors));
        let stats = slo.window_stats(t0 + Duration::from_secs(1), Duration::from_secs(10));
        assert!(stats.requests > 0);
        assert!(stats.error_rate == 0.0 && stats.shed_rate == 0.0);
    }

    #[test]
    fn sustained_errors_raise_then_resolve() {
        let mut slo = SloTracker::new(config());
        let t0 = Instant::now();
        let mut raised = false;
        // 50% 500s: burn 5x the 10% budget in both windows.
        for i in 0..20u64 {
            let status = if i % 2 == 0 { 500 } else { 200 };
            let flips = slo.record_at(
                t0 + Duration::from_millis(i * 100),
                Duration::from_millis(5),
                status,
            );
            if flips.iter().any(|&(d, up)| d == SloDimension::Errors && up) {
                raised = true;
            }
        }
        assert!(raised, "sustained errors never alerted");
        assert!(slo.is_alerting(SloDimension::Errors));
        // Recovery: the short window fills with clean traffic.
        let mut resolved = false;
        for i in 0..200u64 {
            let at = t0 + Duration::from_secs(2) + Duration::from_millis(i * 100);
            let flips = slo.record_at(at, Duration::from_millis(5), 200);
            if flips.iter().any(|&(d, up)| d == SloDimension::Errors && !up) {
                resolved = true;
            }
        }
        assert!(resolved, "alert never resolved after recovery");
        assert!(!slo.is_alerting(SloDimension::Errors));
    }

    #[test]
    fn shed_and_latency_dimensions_are_independent() {
        let mut slo = SloTracker::new(config());
        let t0 = Instant::now();
        for i in 0..20u64 {
            // All requests slow and shed, none 500.
            slo.record_at(t0 + Duration::from_millis(i * 100), Duration::from_millis(300), 503);
        }
        assert!(slo.is_alerting(SloDimension::Shed));
        assert!(slo.is_alerting(SloDimension::Latency));
        // 503 counts as an error too (it is 5xx).
        assert!(slo.is_alerting(SloDimension::Errors));
        let stats = slo.window_stats(t0 + Duration::from_secs(2), Duration::from_secs(10));
        assert!(stats.slow_rate > 0.99 && stats.shed_rate > 0.99);
        assert!(stats.p99 >= 0.3);
    }

    #[test]
    fn few_requests_never_alert() {
        let mut slo = SloTracker::new(config());
        let t0 = Instant::now();
        // Below min_requests: even 100% errors stay quiet.
        for i in 0..4u64 {
            let flips =
                slo.record_at(t0 + Duration::from_millis(i * 10), Duration::from_secs(1), 500);
            assert!(flips.is_empty());
        }
        assert!(!slo.is_alerting(SloDimension::Errors));
    }

    #[test]
    fn old_samples_age_out() {
        let mut slo = SloTracker::new(config());
        let t0 = Instant::now();
        for i in 0..10u64 {
            slo.record_at(t0 + Duration::from_millis(i), Duration::from_millis(5), 500);
        }
        // Two minutes later the long window is empty again.
        let later = t0 + Duration::from_secs(120);
        slo.record_at(later, Duration::from_millis(5), 200);
        let stats = slo.window_stats(later, Duration::from_secs(60));
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.error_rate, 0.0);
    }
}
