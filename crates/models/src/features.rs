//! Token features for the traditional sequence models (CRF/HMM baseline).
//!
//! The paper trains its CRF with "token-level lexical, orthographic, and
//! contextual features" (§4.1). Each group can be toggled for the feature
//! ablation benchmarks.

use gs_text::PreToken;
use serde::{Deserialize, Serialize};

/// Which feature groups to extract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Word identity, lowercase form, prefixes/suffixes.
    pub lexical: bool,
    /// Capitalization, digit/punctuation shape, year/percent detectors.
    pub orthographic: bool,
    /// Neighboring words and shapes.
    pub contextual: bool,
    /// Context window radius (the standard CRF feature set uses +-1;
    /// +-2 is evaluated in the feature ablation).
    pub window: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { lexical: true, orthographic: true, contextual: true, window: 1 }
    }
}

impl FeatureConfig {
    /// Lexical features only.
    pub fn lexical_only() -> Self {
        FeatureConfig { lexical: true, orthographic: false, contextual: false, window: 0 }
    }

    /// Lexical + orthographic.
    pub fn no_context() -> Self {
        FeatureConfig { lexical: true, orthographic: true, contextual: false, window: 0 }
    }

    /// A wider +-2 context window (ablation variant).
    pub fn wide_context() -> Self {
        FeatureConfig { window: 2, ..Default::default() }
    }
}

/// The word-shape abstraction: `Xx` for "Reduce", `dddd` for "2040",
/// `dd%` for "20%"-like mixes, `x-x` keeps punctuation.
pub fn word_shape(word: &str) -> String {
    let mut shape = String::new();
    let mut last: Option<char> = None;
    let mut run_len = 0usize;
    for c in word.chars() {
        let s = if c.is_ascii_digit() {
            'd'
        } else if c.is_uppercase() {
            'X'
        } else if c.is_lowercase() {
            'x'
        } else {
            c
        };
        if last == Some(s) {
            run_len += 1;
            // Collapse runs beyond length 2 so shapes stay low-cardinality.
            if run_len > 2 {
                continue;
            }
        } else {
            run_len = 1;
            last = Some(s);
        }
        shape.push(s);
    }
    shape
}

/// Whether a token looks like a calendar year (1900..=2099).
pub fn looks_like_year(word: &str) -> bool {
    word.len() == 4
        && word.chars().all(|c| c.is_ascii_digit())
        && (word.starts_with("19") || word.starts_with("20"))
}

/// Whether a token is numeric (possibly with separators or decimal point).
pub fn is_numeric(word: &str) -> bool {
    !word.is_empty()
        && word.chars().all(|c| c.is_ascii_digit() || c == '.' || c == ',')
        && word.chars().any(|c| c.is_ascii_digit())
}

/// Extracts feature strings for every token in a sentence.
pub fn sentence_features(tokens: &[PreToken], config: &FeatureConfig) -> Vec<Vec<String>> {
    let lowers: Vec<String> = tokens.iter().map(|t| t.text.to_lowercase()).collect();
    let shapes: Vec<String> = tokens.iter().map(|t| word_shape(&t.text)).collect();
    (0..tokens.len()).map(|i| token_features(tokens, &lowers, &shapes, i, config)).collect()
}

fn token_features(
    tokens: &[PreToken],
    lowers: &[String],
    shapes: &[String],
    i: usize,
    config: &FeatureConfig,
) -> Vec<String> {
    let mut f = Vec::with_capacity(16);
    let word = &tokens[i].text;
    f.push("bias".to_string());

    if config.lexical {
        f.push(format!("w={}", lowers[i]));
        let chars: Vec<char> = lowers[i].chars().collect();
        if chars.len() >= 3 {
            f.push(format!("pre3={}", chars[..3].iter().collect::<String>()));
            f.push(format!("suf3={}", chars[chars.len() - 3..].iter().collect::<String>()));
        }
        f.push(format!("len={}", chars.len().min(8)));
    }

    if config.orthographic {
        f.push(format!("shape={}", shapes[i]));
        if word.chars().next().is_some_and(char::is_uppercase) {
            f.push("cap".to_string());
        }
        if word.chars().all(char::is_uppercase) && word.len() > 1 {
            f.push("allcaps".to_string());
        }
        if is_numeric(word) {
            f.push("num".to_string());
        }
        if looks_like_year(word) {
            f.push("year".to_string());
        }
        if word == "%" {
            f.push("pct".to_string());
        }
        if word.len() == 1 && !word.chars().next().expect("char").is_alphanumeric() {
            f.push("punct".to_string());
        }
        if i == 0 {
            f.push("first".to_string());
        }
        if i + 1 == tokens.len() {
            f.push("last".to_string());
        }
    }

    if config.contextual && config.window > 0 {
        let w = config.window as i64;
        for offset in -w..=w {
            if offset == 0 {
                continue;
            }
            let j = i as i64 + offset;
            if j < 0 || j as usize >= tokens.len() {
                f.push(format!("ctx{offset}=<pad>"));
            } else {
                let j = j as usize;
                f.push(format!("ctx{offset}={}", lowers[j]));
                if offset.abs() == 1 {
                    f.push(format!("ctxshape{offset}={}", shapes[j]));
                }
            }
        }
    }

    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_text::pretokenize;

    #[test]
    fn shapes_abstract_words() {
        assert_eq!(word_shape("Reduce"), "Xxx");
        assert_eq!(word_shape("2040"), "dd");
        assert_eq!(word_shape("CO2"), "XXd");
        assert_eq!(word_shape("net-zero"), "xx-xx");
        assert_eq!(word_shape("%"), "%");
    }

    #[test]
    fn year_detector() {
        assert!(looks_like_year("2040"));
        assert!(looks_like_year("1999"));
        assert!(!looks_like_year("2140"));
        assert!(!looks_like_year("204"));
        assert!(!looks_like_year("20a0"));
    }

    #[test]
    fn numeric_detector() {
        assert!(is_numeric("20"));
        assert!(is_numeric("8.1"));
        assert!(is_numeric("500,000"));
        assert!(!is_numeric("20%"));
        assert!(!is_numeric("abc"));
        assert!(!is_numeric("."));
    }

    #[test]
    fn features_include_all_groups_by_default() {
        let toks = pretokenize("Reduce emissions by 2040");
        let feats = sentence_features(&toks, &FeatureConfig::default());
        assert_eq!(feats.len(), 4);
        let f0: &Vec<String> = &feats[0];
        assert!(f0.contains(&"w=reduce".to_string()));
        assert!(f0.contains(&"cap".to_string()));
        assert!(f0.contains(&"first".to_string()));
        assert!(f0.iter().any(|f| f.starts_with("ctx1=")));
        let f3 = &feats[3];
        assert!(f3.contains(&"year".to_string()));
        assert!(f3.contains(&"last".to_string()));
    }

    #[test]
    fn lexical_only_omits_shape_and_context() {
        let toks = pretokenize("Reduce emissions");
        let feats = sentence_features(&toks, &FeatureConfig::lexical_only());
        for tf in &feats {
            assert!(tf.iter().all(|f| !f.starts_with("shape=") && !f.starts_with("ctx")));
        }
    }

    #[test]
    fn context_features_pad_at_boundaries() {
        let toks = pretokenize("one two");
        let feats = sentence_features(&toks, &FeatureConfig::default());
        assert!(feats[0].contains(&"ctx-1=<pad>".to_string()));
        assert!(feats[1].contains(&"ctx1=<pad>".to_string()));
    }
}
