//! Supervised hidden Markov model — a second traditional baseline
//! (paper §6.3 cites HMMs as the classic machine-learning approach to
//! information extraction). Included for the extended baseline study.
//!
//! Emissions back off from word identity to word shape, so unseen tokens
//! (most years, amounts) still receive informative scores.

use crate::features::word_shape;
use gs_text::labels::{LabelSet, Tag};
use gs_text::PreToken;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// HMM smoothing configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HmmConfig {
    /// Add-k smoothing constant for transitions and emissions.
    pub smoothing: f64,
    /// Interpolation weight of the word-identity emission vs the shape
    /// back-off (0..1, higher trusts word identity more).
    pub word_weight: f64,
}

impl Default for HmmConfig {
    fn default() -> Self {
        HmmConfig { smoothing: 0.1, word_weight: 0.7 }
    }
}

/// A trained HMM tagger.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Hmm {
    num_labels: usize,
    /// log P(y0).
    start: Vec<f64>,
    /// log P(y_i | y_{i-1}), row-major `[l, l]`.
    trans: Vec<f64>,
    /// Per-label word log-probabilities.
    word_emit: Vec<HashMap<String, f64>>,
    /// Per-label shape log-probabilities (back-off).
    shape_emit: Vec<HashMap<String, f64>>,
    /// log probability assigned to unseen words / shapes per label.
    word_unk: Vec<f64>,
    shape_unk: Vec<f64>,
    config: HmmConfig,
}

impl Hmm {
    /// Trains from (tokens, tags) sentences.
    pub fn train(
        sentences: &[(Vec<PreToken>, Vec<Tag>)],
        labels: &LabelSet,
        config: HmmConfig,
    ) -> Hmm {
        let l = labels.num_classes();
        let k = config.smoothing;
        let mut start_counts = vec![k; l];
        let mut trans_counts = vec![k; l * l];
        let mut word_counts: Vec<HashMap<String, f64>> = vec![HashMap::new(); l];
        let mut shape_counts: Vec<HashMap<String, f64>> = vec![HashMap::new(); l];

        for (tokens, tags) in sentences {
            assert_eq!(tokens.len(), tags.len());
            for (i, (tok, tag)) in tokens.iter().zip(tags).enumerate() {
                let y = labels.class_id(*tag);
                if i == 0 {
                    start_counts[y] += 1.0;
                } else {
                    let prev = labels.class_id(tags[i - 1]);
                    trans_counts[prev * l + y] += 1.0;
                }
                *word_counts[y].entry(tok.text.to_lowercase()).or_insert(0.0) += 1.0;
                *shape_counts[y].entry(word_shape(&tok.text)).or_insert(0.0) += 1.0;
            }
        }

        let normalize = |counts: &[f64]| -> Vec<f64> {
            let total: f64 = counts.iter().sum();
            counts.iter().map(|c| (c / total).ln()).collect()
        };
        let start = normalize(&start_counts);
        let mut trans = vec![0.0f64; l * l];
        for prev in 0..l {
            let row = normalize(&trans_counts[prev * l..(prev + 1) * l]);
            trans[prev * l..(prev + 1) * l].copy_from_slice(&row);
        }

        let mut word_emit = Vec::with_capacity(l);
        let mut shape_emit = Vec::with_capacity(l);
        let mut word_unk = Vec::with_capacity(l);
        let mut shape_unk = Vec::with_capacity(l);
        for y in 0..l {
            let (we, wu) = log_probs(&word_counts[y], k);
            let (se, su) = log_probs(&shape_counts[y], k);
            word_emit.push(we);
            shape_emit.push(se);
            word_unk.push(wu);
            shape_unk.push(su);
        }

        Hmm { num_labels: l, start, trans, word_emit, shape_emit, word_unk, shape_unk, config }
    }

    fn emission(&self, y: usize, word: &str) -> f64 {
        let lw = word.to_lowercase();
        let shape = word_shape(word);
        let w = *self.word_emit[y].get(&lw).unwrap_or(&self.word_unk[y]);
        let s = *self.shape_emit[y].get(&shape).unwrap_or(&self.shape_unk[y]);
        self.config.word_weight * w + (1.0 - self.config.word_weight) * s
    }

    /// Predicts tags via Viterbi decoding.
    pub fn predict(&self, tokens: &[PreToken], labels: &LabelSet) -> Vec<Tag> {
        let n = tokens.len();
        if n == 0 {
            return Vec::new();
        }
        let l = self.num_labels;
        let mut delta = vec![f64::NEG_INFINITY; n * l];
        let mut back = vec![0usize; n * l];
        for (y, d) in delta.iter_mut().take(l).enumerate() {
            *d = self.start[y] + self.emission(y, &tokens[0].text);
        }
        for i in 1..n {
            for y in 0..l {
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0;
                for prev in 0..l {
                    let v = delta[(i - 1) * l + prev] + self.trans[prev * l + y];
                    if v > best {
                        best = v;
                        arg = prev;
                    }
                }
                delta[i * l + y] = best + self.emission(y, &tokens[i].text);
                back[i * l + y] = arg;
            }
        }
        let mut path = vec![0usize; n];
        let mut best = f64::NEG_INFINITY;
        for y in 0..l {
            if delta[(n - 1) * l + y] > best {
                best = delta[(n - 1) * l + y];
                path[n - 1] = y;
            }
        }
        for i in (1..n).rev() {
            path[i - 1] = back[i * l + path[i]];
        }
        path.into_iter().map(|c| labels.tag_of(c)).collect()
    }
}

/// Converts counts into log probabilities with add-k smoothing, returning
/// the map and the log probability reserved for unseen events.
fn log_probs(counts: &HashMap<String, f64>, k: f64) -> (HashMap<String, f64>, f64) {
    let vocab = counts.len() as f64 + 1.0; // +1 for the UNK event
    let total: f64 = counts.values().sum::<f64>() + k * vocab;
    let map = counts.iter().map(|(w, c)| (w.clone(), ((c + k) / total).ln())).collect();
    let unk = (k / total).ln();
    (map, unk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_text::pretokenize;

    fn labels() -> LabelSet {
        LabelSet::new(&["Amount"])
    }

    fn sentences() -> Vec<(Vec<PreToken>, Vec<Tag>)> {
        let data = [
            ("cut waste by 20 %", vec![3usize, 4]),
            ("reduce usage by 35 %", vec![3, 4]),
            ("trim costs by 50 %", vec![3, 4]),
            ("we report progress annually", vec![]),
            ("lower intake by 15 %", vec![3, 4]),
        ];
        data.iter()
            .map(|(text, amount_positions)| {
                let tokens = pretokenize(text);
                let tags: Vec<Tag> = (0..tokens.len())
                    .map(|i| {
                        if amount_positions.first() == Some(&i) {
                            Tag::B(0)
                        } else if amount_positions.contains(&i) {
                            Tag::I(0)
                        } else {
                            Tag::O
                        }
                    })
                    .collect();
                (tokens, tags)
            })
            .collect()
    }

    #[test]
    fn learns_amount_shape_pattern() {
        let ls = labels();
        let hmm = Hmm::train(&sentences(), &ls, HmmConfig::default());
        // Unseen number "42" must still be tagged via the shape back-off.
        let test = pretokenize("shrink footprint by 42 %");
        let tags = hmm.predict(&test, &ls);
        assert_eq!(tags[3], Tag::B(0), "tags: {:?}", tags);
        assert_eq!(tags[4], Tag::I(0));
    }

    #[test]
    fn plain_words_stay_outside() {
        let ls = labels();
        let hmm = Hmm::train(&sentences(), &ls, HmmConfig::default());
        let tags = hmm.predict(&pretokenize("we report progress annually"), &ls);
        assert!(tags.iter().all(|t| *t == Tag::O));
    }

    #[test]
    fn empty_input() {
        let ls = labels();
        let hmm = Hmm::train(&sentences(), &ls, HmmConfig::default());
        assert!(hmm.predict(&[], &ls).is_empty());
    }

    #[test]
    fn smoothing_keeps_probabilities_finite() {
        let (map, unk) = log_probs(&HashMap::new(), 0.1);
        assert!(map.is_empty());
        assert!(unk.is_finite());
    }
}
