//! Zero-shot and few-shot prompting baselines.
//!
//! Substitution (DESIGN.md): the paper prompts Llama 4 109B. We model the
//! LLM as a deterministic instruction-following extractor: the zero-shot
//! variant applies generic task-description heuristics (find a verb, a
//! quantity, dates with their discourse cues); the few-shot variant
//! additionally induces lexicons and patterns from its three in-context
//! examples (paper §4.1 uses three, following NetZeroFacts). Both charge a
//! simulated per-call latency so the efficiency column keeps the paper's
//! shape. Their accuracy is *measured* on the data like every other
//! baseline — nothing is hardcoded.

use crate::traits::DetailExtractor;
use gs_core::{Annotations, ExtractedDetails, Objective};
use gs_text::labels::LabelSet;
use gs_text::{pretokenize, Normalizer, Span};
use std::collections::HashSet;
use std::time::Duration;

/// Default simulated latency of one LLM extraction call (a 109B-parameter
/// model behind an API).
pub const DEFAULT_CALL_LATENCY: Duration = Duration::from_millis(3500);

/// Generic semantic roles the prompt asks for; mapped onto whatever field
/// names the target label set uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Concept {
    Action,
    Amount,
    Qualifier,
    Baseline,
    Deadline,
}

/// Maps a concept onto the label-set field name, covering both the
/// Sustainability Goals schema and the NetZeroFacts schema.
fn field_name(labels: &LabelSet, concept: Concept) -> Option<&str> {
    let candidates: &[&str] = match concept {
        Concept::Action => &["Action"],
        Concept::Amount => &["Amount", "TargetValue"],
        Concept::Qualifier => &["Qualifier"],
        Concept::Baseline => &["Baseline", "ReferenceYear"],
        Concept::Deadline => &["Deadline", "TargetYear"],
    };
    candidates.iter().copied().find(|c| labels.kind_index(c).is_some())
}

fn is_year(tok: &str) -> bool {
    tok.len() == 4
        && tok.chars().all(|c| c.is_ascii_digit())
        && (tok.starts_with("19") || tok.starts_with("20"))
}

fn is_number(tok: &str) -> bool {
    !tok.is_empty()
        && tok.chars().all(|c| c.is_ascii_digit() || c == '.' || c == ',')
        && tok.chars().any(|c| c.is_ascii_digit())
}

const STOPWORDS: &[&str] = &[
    "the", "a", "an", "of", "our", "their", "its", "we", "by", "to", "in", "at", "for", "and",
    "or", "with", "on", "as", "is", "are", "be", "will", "that", "this", "all",
];

/// Boundary tokens that end a qualifier phrase.
const QUALIFIER_STOPS: &[&str] = &[
    "by",
    "in",
    "at",
    "for",
    "across",
    "against",
    "compared",
    "relative",
    "versus",
    "vs",
    "before",
    "until",
    "no",
    "throughout",
    "(",
    ")",
    ".",
    ",",
    ";",
    "as",
    "following",
    "consistent",
    "and",
];

/// Cues that mark the year *after* them as a baseline/reference year.
const BASELINE_PRE_CUES: &[&str] =
    &["baseline", "to", "against", "relative", "versus", "vs", "from"];
/// Cues that mark the year *before* them as a baseline/reference year.
const BASELINE_POST_CUES: &[&str] = &["baseline", "levels", "footprint"];
/// Cues that mark the year after them as a deadline/target year.
const DEADLINE_CUES: &[&str] = &["by", "before", "until", "than", "fy"];

/// Common sustainability action verbs an instruction-following model knows.
const GENERIC_VERBS: &[&str] = &[
    "reduce",
    "achieve",
    "reach",
    "restore",
    "eliminate",
    "increase",
    "cut",
    "expand",
    "implement",
    "transition",
    "promote",
    "install",
    "substitute",
    "double",
    "decrease",
    "lower",
    "improve",
    "divert",
    "recycle",
    "source",
    "procure",
    "offset",
    "integrate",
    "align",
    "empower",
    "join",
    "define",
    "perform",
    "explore",
    "demonstrate",
    "share",
    "make",
    "keep",
    "commit",
];

/// Shared extraction engine; the zero-/few-shot extractors differ only in
/// the knowledge they plug in.
struct PromptEngine {
    labels: LabelSet,
    /// Lowercased action lexicon.
    verbs: HashSet<String>,
    /// Whether multiword auxiliaries ("will install") are recognized.
    aux_patterns: bool,
    /// Whether amounts beyond percents/zero are recognized.
    rich_amounts: bool,
    /// Whether qualifier extraction uses the full boundary-stop list.
    bounded_qualifiers: bool,
    /// Whether the engine distinguishes the main clause from leading
    /// subordinate clauses and prefers "by <pct>" constructions — the kind
    /// of discourse competence in-context examples give a strong LLM.
    main_clause_aware: bool,
    normalizer: Normalizer,
}

/// Sentence-initial subordinate markers ("Having reduced ... ,").
const SUBORDINATE_STARTS: &[&str] = &[
    "having",
    "after",
    "with",
    "building",
    "following",
    "together",
    "moving",
    "replacing",
    "updating",
];

impl PromptEngine {
    fn extract(&self, text: &str) -> ExtractedDetails {
        let text = self.normalizer.normalize(text);
        let tokens = pretokenize(&text);
        let lowers: Vec<String> = tokens.iter().map(|t| t.text.to_lowercase()).collect();
        let mut out = ExtractedDetails::new();
        if tokens.is_empty() {
            return out;
        }

        // The main clause starts after the first comma when the sentence
        // opens with a subordinate marker ("Having reduced X by 5%, ...").
        let mut main_start = 0usize;
        if self.main_clause_aware {
            // Skip any chain of leading subordinate clauses, each ending at
            // a comma ("Having pledged ..., After trimming ..., <main>").
            while lowers.get(main_start).is_some_and(|l| SUBORDINATE_STARTS.contains(&l.as_str())) {
                match lowers[main_start..].iter().position(|l| l == ",") {
                    Some(offset) => main_start += offset + 1,
                    None => {
                        main_start = 0;
                        break;
                    }
                }
            }
        }

        // --- Dates: classify every year token as baseline or deadline.
        let mut deadline: Option<usize> = None;
        let mut baseline: Option<usize> = None;
        for (i, low) in lowers.iter().enumerate() {
            if !is_year(low) {
                continue;
            }
            let prev = i.checked_sub(1).map(|j| lowers[j].as_str());
            let next = lowers.get(i + 1).map(String::as_str);
            let is_baseline = prev.is_some_and(|p| BASELINE_PRE_CUES.contains(&p))
                || next.is_some_and(|n| BASELINE_POST_CUES.contains(&n));
            if is_baseline {
                // The aware engine only trusts baseline cues in the main
                // clause (superseded commitments carry their own baselines).
                if i >= main_start {
                    baseline.get_or_insert(i);
                }
            } else if prev.is_some_and(|p| DEADLINE_CUES.contains(&p)) {
                // A main-clause-aware model skips deadline cues inside the
                // leading subordinate clause.
                if i >= main_start {
                    deadline.get_or_insert(i);
                }
            }
        }
        // An instruction-following model falls back to "the year mentioned"
        // when no cue matched and exactly one unclassified year exists.
        if deadline.is_none() {
            let loose: Vec<usize> = lowers
                .iter()
                .enumerate()
                .filter(|(i, l)| is_year(l) && baseline != Some(*i))
                .map(|(i, _)| i)
                .collect();
            if loose.len() == 1 {
                deadline = Some(loose[0]);
            }
        }

        // --- Amount. Scanning starts at the main clause for the aware
        // engine (and retries from 0 if nothing is found there).
        let mut amount: Option<Span> = None;
        let mut amount_token_range: Option<(usize, usize)> = None;
        let scan_starts: &[usize] = if main_start > 0 { &[main_start, 0][..] } else { &[0][..] };
        'outer: for &from in scan_starts {
            for i in from..lowers.len() {
                let low = lowers[i].as_str();
                if (low == "%" || low == "percent") && i > 0 && is_number(&lowers[i - 1]) {
                    amount = Some(Span::new(tokens[i - 1].span.start, tokens[i].span.end));
                    amount_token_range = Some((i - 1, i));
                    break 'outer;
                }
                if low == "net" {
                    // "net-zero" / "net zero"
                    let mut j = i + 1;
                    while j < lowers.len() && lowers[j] == "-" {
                        j += 1;
                    }
                    if j < lowers.len() && lowers[j] == "zero" {
                        amount = Some(Span::new(tokens[i].span.start, tokens[j].span.end));
                        amount_token_range = Some((i, j));
                        break 'outer;
                    }
                }
                if low == "zero" && (i == 0 || lowers[i - 1] != "net") {
                    amount = Some(tokens[i].span);
                    amount_token_range = Some((i, i));
                    break 'outer;
                }
            }
        }
        if amount.is_none() && self.rich_amounts {
            for (i, low) in lowers.iter().enumerate() {
                if is_number(low) && Some(i) != deadline && Some(i) != baseline && !is_year(low) {
                    let (end, last) = if lowers.get(i + 1).map(String::as_str) == Some("million")
                        || lowers.get(i + 1).map(String::as_str) == Some("percent")
                    {
                        (tokens[i + 1].span.end, i + 1)
                    } else {
                        (tokens[i].span.end, i)
                    };
                    amount = Some(Span::new(tokens[i].span.start, end));
                    amount_token_range = Some((i, last));
                    break;
                }
                if ["double", "half", "two-thirds"].contains(&low.as_str()) {
                    amount = Some(tokens[i].span);
                    amount_token_range = Some((i, i));
                    break;
                }
            }
        }

        // --- Action. The aware engine searches only the main clause.
        let mut action: Option<Span> = None;
        for (i, low) in lowers.iter().enumerate().skip(main_start) {
            if self.verbs.contains(low) {
                let mut start = tokens[i].span.start;
                let mut end = tokens[i].span.end;
                if self.aux_patterns && i > 0 && lowers[i - 1] == "will" {
                    start = tokens[i - 1].span.start;
                }
                if self.aux_patterns
                    && lowers.get(i + 1).map(String::as_str) == Some("be")
                    && lowers.get(i + 2).map(|s| s.ends_with("ed")) == Some(true)
                {
                    end = tokens[i + 2].span.end;
                }
                action = Some(Span::new(start, end));
                break;
            }
        }
        if action.is_none() {
            // Generic fallback: first capitalized non-stopword token.
            for (i, tok) in tokens.iter().enumerate() {
                let is_cap = tok.text.chars().next().is_some_and(char::is_uppercase);
                if is_cap && !STOPWORDS.contains(&lowers[i].as_str()) && tok.text.len() > 2 {
                    action = Some(tok.span);
                    break;
                }
            }
        }

        // --- Qualifier.
        let mut qualifier: Option<Span> = None;
        let action_end_idx = action.and_then(|a| tokens.iter().position(|t| t.span.end == a.end));
        // Order (ii), main-clause-aware only: "<action> <qualifier> by
        // <amount>" — the noun phrase sits between the action and the "by"
        // preceding the amount.
        if self.main_clause_aware {
            if let (Some(action_idx), Some((amount_start, _))) =
                (action_end_idx, amount_token_range)
            {
                if amount_start >= 2
                    && lowers[amount_start - 1] == "by"
                    && action_idx + 1 < amount_start - 1
                {
                    let start = action_idx + 1;
                    let end = amount_start - 1;
                    let ok = (start..end).all(|i| {
                        !QUALIFIER_STOPS.contains(&lowers[i].as_str()) && !is_year(&lowers[i])
                    });
                    if ok && end - start <= 7 {
                        qualifier =
                            Some(Span::new(tokens[start].span.start, tokens[end - 1].span.end));
                    }
                }
            }
        }
        // Order (i): the noun phrase after the amount (or the action).
        let anchor = if qualifier.is_some() {
            None
        } else {
            amount_token_range.map(|(_, last)| last).or(action_end_idx)
        };
        if let Some(anchor) = anchor {
            let mut i = anchor + 1;
            // Skip connective "of our" / "of the" / "our".
            while i < lowers.len() && ["of", "our", "the", "in", "to"].contains(&lowers[i].as_str())
            {
                i += 1;
            }
            let start = i;
            let max_words = if self.bounded_qualifiers { 5 } else { 3 };
            let mut end = start;
            while end < lowers.len() && end - start < max_words {
                let l = lowers[end].as_str();
                let stop = if self.bounded_qualifiers {
                    QUALIFIER_STOPS.contains(&l) || is_year(l)
                } else {
                    [".", ",", "by", "in", "("].contains(&l) || is_year(l)
                };
                if stop {
                    break;
                }
                end += 1;
            }
            if end > start {
                qualifier = Some(Span::new(tokens[start].span.start, tokens[end - 1].span.end));
            }
        }

        // --- Emit mapped fields.
        let mut emit = |concept: Concept, span: Option<Span>| {
            if let (Some(name), Some(s)) = (field_name(&self.labels, concept), span) {
                let value = s.slice(&text);
                if !value.is_empty() {
                    out.set(name, value);
                }
            }
        };
        emit(Concept::Action, action);
        emit(Concept::Amount, amount);
        emit(Concept::Qualifier, qualifier);
        emit(Concept::Baseline, baseline.map(|i| tokens[i].span));
        emit(Concept::Deadline, deadline.map(|i| tokens[i].span));
        out
    }
}

/// Zero-shot prompting simulator: generic instructions, no examples.
pub struct ZeroShotExtractor {
    engine: PromptEngine,
    latency: Duration,
}

impl ZeroShotExtractor {
    /// Creates the extractor for a label set.
    pub fn new(labels: &LabelSet) -> Self {
        Self::with_latency(labels, DEFAULT_CALL_LATENCY)
    }

    /// Creates the extractor with a custom simulated per-call latency.
    pub fn with_latency(labels: &LabelSet, latency: Duration) -> Self {
        // The zero-shot model only "knows" a small generic verb list and
        // uses loose phrase boundaries.
        let verbs: HashSet<String> = GENERIC_VERBS.iter().take(12).map(|v| v.to_string()).collect();
        ZeroShotExtractor {
            engine: PromptEngine {
                labels: labels.clone(),
                verbs,
                aux_patterns: false,
                rich_amounts: false,
                bounded_qualifiers: false,
                main_clause_aware: false,
                normalizer: Normalizer::default(),
            },
            latency,
        }
    }
}

impl DetailExtractor for ZeroShotExtractor {
    fn name(&self) -> &str {
        "Zero-Shot Prompting"
    }

    fn extract(&self, text: &str) -> ExtractedDetails {
        self.engine.extract(text)
    }

    fn simulated_latency_per_call(&self) -> Duration {
        self.latency
    }
}

/// Few-shot prompting simulator: three in-context examples (paper §4.1)
/// from which verb lexicon and phrase-boundary knowledge are induced.
pub struct FewShotExtractor {
    engine: PromptEngine,
    latency: Duration,
    num_examples: usize,
}

impl FewShotExtractor {
    /// Creates the extractor, inducing patterns from up to three examples.
    pub fn new(labels: &LabelSet, examples: &[&Objective]) -> Self {
        Self::with_latency(labels, examples, DEFAULT_CALL_LATENCY)
    }

    /// Creates the extractor with a custom simulated per-call latency.
    pub fn with_latency(labels: &LabelSet, examples: &[&Objective], latency: Duration) -> Self {
        let examples = &examples[..examples.len().min(3)];
        let mut verbs: HashSet<String> = GENERIC_VERBS.iter().map(|v| v.to_string()).collect();
        for ex in examples {
            if let Some(ann) = &ex.annotations {
                if let Some(field) = field_name(labels, Concept::Action) {
                    if let Some(action) = ann.get(field) {
                        for word in action.split_whitespace() {
                            let w = word.to_lowercase();
                            if !w.is_empty() && w != "will" && w != "be" {
                                verbs.insert(w);
                            }
                        }
                    }
                }
            }
        }
        FewShotExtractor {
            engine: PromptEngine {
                labels: labels.clone(),
                verbs,
                aux_patterns: true,
                rich_amounts: true,
                bounded_qualifiers: true,
                main_clause_aware: true,
                normalizer: Normalizer::default(),
            },
            latency,
            num_examples: examples.len(),
        }
    }

    /// Number of in-context examples in the prompt.
    pub fn num_examples(&self) -> usize {
        self.num_examples
    }
}

impl DetailExtractor for FewShotExtractor {
    fn name(&self) -> &str {
        "Few-Shot Prompting"
    }

    fn extract(&self, text: &str) -> ExtractedDetails {
        self.engine.extract(text)
    }

    fn simulated_latency_per_call(&self) -> Duration {
        self.latency
    }
}

/// Builds few-shot example objectives in the style of the paper's Table 1.
pub fn canonical_examples() -> Vec<Objective> {
    vec![
        Objective::annotated(
            0,
            "We co-founded The Climate Pledge, a commitment to reach net-zero carbon by 2040.",
            Annotations::new()
                .with("Action", "reach")
                .with("Amount", "net-zero")
                .with("Qualifier", "carbon")
                .with("Deadline", "2040"),
        ),
        Objective::annotated(
            1,
            "Restore 100% of our global water use by 2025.",
            Annotations::new()
                .with("Action", "Restore")
                .with("Amount", "100%")
                .with("Qualifier", "global water use")
                .with("Deadline", "2025"),
        ),
        Objective::annotated(
            2,
            "Reduce energy consumption by 20% by 2025 (baseline 2017).",
            Annotations::new()
                .with("Action", "Reduce")
                .with("Amount", "20%")
                .with("Qualifier", "energy consumption")
                .with("Baseline", "2017")
                .with("Deadline", "2025"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> LabelSet {
        LabelSet::sustainability_goals()
    }

    fn few_shot() -> FewShotExtractor {
        let examples = canonical_examples();
        let refs: Vec<&Objective> = examples.iter().collect();
        FewShotExtractor::with_latency(&labels(), &refs, Duration::ZERO)
    }

    #[test]
    fn zero_shot_finds_percent_and_deadline() {
        let z = ZeroShotExtractor::with_latency(&labels(), Duration::ZERO);
        let d = z.extract("Reduce energy consumption by 20% by 2025 (baseline 2017).");
        assert_eq!(d.get("Amount"), Some("20%"));
        assert_eq!(d.get("Deadline"), Some("2025"));
        assert_eq!(d.get("Action"), Some("Reduce"));
    }

    #[test]
    fn baseline_cues_are_recognized() {
        let f = few_shot();
        let d = f.extract("Cut emissions by 30% by 2030 against a 2015 baseline.");
        assert_eq!(d.get("Baseline"), Some("2015"));
        assert_eq!(d.get("Deadline"), Some("2030"));
    }

    #[test]
    fn net_zero_amount_detected() {
        let f = few_shot();
        let d = f.extract(
            "We co-founded The Climate Pledge, a commitment to reach net-zero carbon by 2040.",
        );
        assert_eq!(d.get("Amount"), Some("net-zero"));
        assert_eq!(d.get("Deadline"), Some("2040"));
        assert_eq!(d.get("Action"), Some("reach"));
    }

    #[test]
    fn few_shot_knows_more_verbs_than_zero_shot() {
        let z = ZeroShotExtractor::with_latency(&labels(), Duration::ZERO);
        let f = few_shot();
        // "Divert" is outside the zero-shot model's small verb list; its
        // fallback still grabs the capitalized first word, but lowercase
        // verbs expose the difference.
        let text = "divert food waste by 50% by 2027.";
        let zd = z.extract(text);
        let fd = f.extract(text);
        assert_eq!(fd.get("Action"), Some("divert"));
        assert_ne!(zd.get("Action"), Some("divert"));
    }

    #[test]
    fn will_aux_pattern_in_few_shot() {
        let f = few_shot();
        let d = f.extract("By 2023, we will install 1 million thermostats in homes.");
        assert_eq!(d.get("Action"), Some("will install"));
        assert_eq!(d.get("Amount"), Some("1 million"));
        assert_eq!(d.get("Deadline"), Some("2023"));
    }

    #[test]
    fn netzerofacts_schema_gets_mapped_fields() {
        let nzf = LabelSet::netzerofacts();
        let z = ZeroShotExtractor::with_latency(&nzf, Duration::ZERO);
        let d = z.extract("Reduce CO2 emissions by 42% by 2035 compared to 2019.");
        assert_eq!(d.get("TargetValue"), Some("42%"));
        assert_eq!(d.get("TargetYear"), Some("2035"));
        assert_eq!(d.get("ReferenceYear"), Some("2019"));
        assert_eq!(d.get("Qualifier"), None, "schema has no qualifier field");
    }

    #[test]
    fn latency_is_charged_per_call() {
        let z = ZeroShotExtractor::new(&labels());
        assert_eq!(z.simulated_latency_per_call(), DEFAULT_CALL_LATENCY);
        let f = few_shot();
        assert_eq!(f.simulated_latency_per_call(), Duration::ZERO);
    }

    #[test]
    fn empty_text_yields_nothing() {
        let f = few_shot();
        assert!(f.extract("").is_empty());
    }

    #[test]
    fn canonical_examples_match_table1() {
        let ex = canonical_examples();
        assert_eq!(ex.len(), 3);
        let ann = ex[2].annotations.as_ref().expect("annotated");
        assert_eq!(ann.get("Baseline"), Some("2017"));
    }
}
