//! # gs-models
//!
//! Every modeling approach the paper evaluates (§4.1), behind one
//! [`DetailExtractor`] interface:
//!
//! - [`transformer`]: trainable transformer encoders (RoBERTa-/BERT-style,
//!   original and distilled) fine-tuned on Algorithm 1's weak labels — the
//!   paper's system.
//! - [`CrfExtractor`] / [`HmmExtractor`]: traditional sequence models on
//!   lexical/orthographic/contextual features, trained on the same weak
//!   labels.
//! - [`ZeroShotExtractor`] / [`FewShotExtractor`]: deterministic simulators
//!   of LLM prompting baselines (see DESIGN.md for the substitution).
//! - [`LinearDetector`]: the objective-vs-noise detection stage.

#![warn(missing_docs)]

mod baseline;
mod crf;
mod detector;
mod features;
mod hmm;
mod keyword;
mod prompting;
mod traits;

/// Transformer encoders and their training pipeline.
pub mod transformer;

pub use baseline::{weak_labeled_sentences, CrfExtractor, HmmExtractor};
pub use crf::{Crf, CrfConfig};
pub use detector::{LinearDetector, LinearDetectorConfig, ObjectiveDetector};
pub use features::{is_numeric, looks_like_year, sentence_features, word_shape, FeatureConfig};
pub use hmm::{Hmm, HmmConfig};
pub use keyword::KeywordSearchExtractor;
pub use prompting::{
    canonical_examples, FewShotExtractor, ZeroShotExtractor, DEFAULT_CALL_LATENCY,
};
pub use traits::DetailExtractor;
